//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the minimal API surface it actually uses: a
//! deterministic [`rngs::StdRng`] seeded through [`SeedableRng`], plus
//! [`Rng::random`] and [`Rng::random_range`] for integer types. The
//! generator is a SplitMix64 — statistically fine for synthetic test
//! inputs, and fully deterministic for a given seed (the only property
//! the workspace's tests rely on).

#![forbid(unsafe_code)]

/// Concrete generators.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Seeding trait (subset of the real crate's).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly over its whole domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// An integer type usable with [`Rng::random_range`].
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive).
    fn uniform(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn uniform(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        T::uniform(rng, self.start, self.end)
    }
}

impl<T: UniformInt + num_bound::One> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::uniform_inclusive(rng, lo, hi)
    }
}

mod num_bound {
    /// Helper so inclusive ranges avoid overflow at the type maximum.
    pub trait One: super::UniformInt {
        fn uniform_inclusive(rng: &mut super::rngs::StdRng, lo: Self, hi: Self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(
            impl One for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn uniform_inclusive(
                    rng: &mut super::rngs::StdRng,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    assert!(lo <= hi, "random_range requires a non-empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = u128::from(rng.next_u64()) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Random-value methods (subset of the real crate's `Rng`).
pub trait Rng {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T;
    /// Draws a value uniformly from the given range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(1..100);
            assert!((1..100).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
