//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal data-parallelism layer with the real crate's
//! spelling: `vec.into_par_iter().map(f).collect()`, a
//! [`ThreadPoolBuilder`] whose pool scopes a thread-count override via
//! [`ThreadPool::install`], and [`current_num_threads`]. Work is farmed
//! over `std::thread::scope` workers pulling indices from a shared
//! atomic counter; results land in their input slot, so collected order
//! is deterministic regardless of which worker ran which item.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count override installed by [`ThreadPool::install`]
/// (0 = no override, use the machine's available parallelism).
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of threads parallel iterators fan out to.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.load(Ordering::Relaxed);
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error building a thread pool (the shim never fails; kept for API
/// compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a fixed thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count (0 = available parallelism).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count setting for parallel iterators.
///
/// Unlike real rayon there are no persistent worker threads; `install`
/// only pins how many scoped workers each parallel iterator spawns
/// while the closure runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.swap(self.num_threads, Ordering::Relaxed);
        let result = f();
        POOL_THREADS.store(previous, Ordering::Relaxed);
        result
    }

    /// The pool's thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// The traits the `use rayon::prelude::*` idiom brings into scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// A parallel iterator: the subset of rayon's `ParallelIterator` this
/// workspace uses (`map` + `collect`).
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Drains into a vector, preserving input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (evaluated in parallel at `collect`).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into a container, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self.drive())
    }
}

/// Collection from an (already-ordered) parallel computation.
pub trait FromParallelIterator<T> {
    /// Builds the container from ordered results.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Parallel iterator over a vector's items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn drive(self) -> Vec<U> {
        par_map(self.base.drive(), &self.f)
    }
}

/// Farms `f` over `items` with scoped workers; results are returned in
/// input order (worker scheduling never reorders them).
fn par_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each slot is taken once");
                let result = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| i * i)
            .collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares
            .iter()
            .enumerate()
            .all(|(i, &s)| s == (i as u64) * (i as u64)));
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let (inside, results) = pool.install(|| {
            let inside = current_num_threads();
            let results: Vec<usize> = (0..10)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| i + 1)
                .collect();
            (inside, results)
        });
        assert_eq!(inside, 3);
        assert_eq!(results, (1..=10).collect::<Vec<_>>());
        assert_ne!(current_num_threads(), 0, "override restored");
    }

    #[test]
    fn result_collection_short_circuits_to_the_first_error() {
        let r: Result<Vec<u32>, String> = (0u32..8)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                if i == 5 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r, Err("bad 5".to_string()));
    }
}
