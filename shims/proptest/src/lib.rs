//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a generate-only property-testing core with the same spelling
//! as the real crate for everything the test suite uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), `prop_assert*`
//! macros, [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, `prop_oneof!`, [`strategy::Just`],
//! [`arbitrary::any`], integer range strategies, tuple strategies,
//! `prop::sample::select`, `prop::collection::vec`,
//! `prop::bits::u8::between`, `prop::option::of` and `prop::bool::ANY`.
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic generator (seeded from the test name) and failures are
//! reported through ordinary `assert!` panics without shrinking. That
//! keeps every existing property test compiling and meaningful offline.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-test configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator used to drive sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, deterministically.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty sampling domain");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real crate this is generate-only: `sample` draws a
    /// value directly and there is no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into a composite one. `_desired` and
        /// `_branch` are accepted for API compatibility; recursion depth
        /// is bounded by `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let composite = f(current).boxed();
                current = Union::new(vec![self.clone().boxed(), composite]).boxed();
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!` backing type).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len());
            self.options[pick].sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = u128::from(rng.next_u64()) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// Uniform choice from `items` (must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating vectors of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bits {
    /// Bit-set strategies over `u8`.
    pub mod u8 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy producing a `u8` whose set bits all lie in a range.
        #[derive(Debug, Clone)]
        pub struct Between {
            mask: u8,
        }

        impl Strategy for Between {
            type Value = u8;
            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> u8 {
                (rng.next_u64() as u8) & self.mask
            }
        }

        /// Bits at positions `[lo, hi)` may be set; all others are clear.
        #[must_use]
        pub fn between(lo: usize, hi: usize) -> Between {
            assert!(lo < hi && hi <= 8, "invalid u8 bit range");
            let width = hi - lo;
            let mask = if width >= 8 {
                0xff
            } else {
                ((1u16 << width) - 1) as u8
            };
            Between { mask: mask << lo }
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<T>` (roughly half `Some`).
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// Wraps a strategy to generate optional values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

#[allow(clippy::module_inception)]
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

/// The API most tests import wholesale (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bits;
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..cfg.cases {
                    let ( $($arg,)+ ) = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_hold(x in 3u32..10, y in -4i64..=4, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            let _ = flag;
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u8..4, 1..6),
            o in prop::option::of(1usize..3),
            s in prop::sample::select(vec!["a", "b"]),
            b in prop::bits::u8::between(0, 5),
            t in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
            if let Some(x) = o { prop_assert!((1..3).contains(&x)); }
            prop_assert!(s == "a" || s == "b");
            prop_assert_eq!(b & 0xe0, 0);
            let _ = t;
        }

        #[test]
        fn oneof_and_maps(x in prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..80).contains(&x));
        }
    }
}
