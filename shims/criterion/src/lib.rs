//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal timing harness with the real crate's spelling:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId::new`] and
//! [`Bencher::iter`]. It runs a small fixed number of timed iterations
//! and prints mean wall-clock time per iteration — enough to compare
//! configurations locally without statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up).
const DEFAULT_ITERS: u32 = 10;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { text: s.clone() }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        let total = start.elapsed();
        let mean = total / self.iters;
        println!("    {:>12.3?} /iter over {} iters", mean, self.iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_ITERS,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            iters: DEFAULT_ITERS,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}", id.into().text);
        f(&mut Bencher {
            iters: self.sample_size,
        });
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    iters: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks (the real
    /// crate's statistical sample size; here, timed iterations, capped
    /// to keep local runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = u32::try_from(n.clamp(1, 50)).unwrap_or(DEFAULT_ITERS);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}", id.into().text);
        f(&mut Bencher { iters: self.iters });
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}", id.text);
        f(&mut Bencher { iters: self.iters }, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }
}
