//! Property tests: the machine-independent optimisation pipeline
//! preserves the reference semantics on random programs, and the
//! scheduler's output stays structurally legal.

use epic_compiler::passes;
use epic_config::Config;
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::{lower, Interpreter};
use proptest::prelude::*;

/// A random expression over three parameters, with depth-bounded nesting.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(Expr::lit),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        (
            prop::sample::select(vec![
                "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "sra", "rotr",
                "min", "max", "lt", "ltu", "eq",
            ]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| match op {
                "add" => l + r,
                "sub" => l - r,
                "mul" => l * r,
                "div" => l.div(r),
                "rem" => l.rem(r),
                "and" => l & r,
                "or" => l | r,
                "xor" => l ^ r,
                "shl" => l << (r & Expr::lit(31)),
                "shr" => l.shr(r & Expr::lit(31)),
                "sra" => l.sra(r & Expr::lit(31)),
                "rotr" => l.rotr(r),
                "min" => l.min(r),
                "max" => l.max(r),
                "lt" => l.lt_s(r),
                "ltu" => l.lt_u(r),
                _ => l.eq(r),
            })
    })
}

fn program_of(exprs: Vec<Expr>) -> Program {
    let mut body: Vec<Stmt> = Vec::new();
    // Accumulate every expression so none is trivially dead.
    body.push(Stmt::let_("acc", Expr::lit(0)));
    for (i, e) in exprs.into_iter().enumerate() {
        body.push(Stmt::let_(format!("t{i}"), e));
        body.push(Stmt::assign(
            "acc",
            (Expr::var("acc").rotr(Expr::lit(5))) ^ Expr::var(format!("t{i}")),
        ));
    }
    body.push(Stmt::ret(Expr::var("acc")));
    Program::new().function(FunctionDef::new("main", ["a", "b", "c"]).body(body))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn optimisation_preserves_semantics(
        exprs in prop::collection::vec(expr_strategy(), 1..6),
        args in prop::collection::vec(-10_000i32..10_000, 3),
    ) {
        let program = program_of(exprs);
        let module = lower::lower(&program).expect("lowers");
        let args: Vec<u32> = args.iter().map(|a| *a as u32).collect();

        let baseline = Interpreter::new(&module)
            .call("main", &args)
            .expect("unoptimised runs");

        let mut optimised = module.clone();
        let stats = passes::optimize(&mut optimised, &[]);
        optimised.validate().expect("optimised module is well-formed");
        let after = Interpreter::new(&optimised)
            .call("main", &args)
            .expect("optimised runs");

        prop_assert_eq!(baseline, after, "optimisation changed the result ({:?})", stats);

        // The pipeline must never grow the program.
        let before_ops: usize = module.functions.iter().map(|f| f.op_count()).sum();
        let after_ops: usize = optimised.functions.iter().map(|f| f.op_count()).sum();
        prop_assert!(after_ops <= before_ops, "{after_ops} > {before_ops}");
    }

    #[test]
    fn compiled_output_always_assembles(
        exprs in prop::collection::vec(expr_strategy(), 1..4),
        alus in 1usize..=4,
    ) {
        // Whatever the optimiser and scheduler do, the emitted text must
        // be legal assembly for the same configuration.
        let program = program_of(exprs);
        let module = lower::lower(&program).expect("lowers");
        let config = Config::builder().num_alus(alus).build().expect("config");
        let compiled = epic_compiler::Compiler::new(config.clone())
            .compile(&module)
            .expect("compiles");
        let assembled = epic_asm::assemble(compiled.assembly(), &config);
        prop_assert!(assembled.is_ok(), "{:?}", assembled.err());
    }

    #[test]
    fn bundle_meta_agrees_with_the_shared_cost_model(
        exprs in prop::collection::vec(expr_strategy(), 1..4),
        alus in 1usize..=4,
    ) {
        // sched.rs prices every emitted bundle through
        // `MachineDescription::bundle_cost`; this pins the promise that
        // its `BundleMeta` never drifts from the shared cost model the
        // simulator decoder and verifier consume.
        let program = program_of(exprs);
        let module = lower::lower(&program).expect("lowers");
        let config = Config::builder().num_alus(alus).build().expect("config");
        let mdes = epic_mdes::MachineDescription::new(&config);
        let abi = epic_compiler::regalloc::Abi::new(&config).expect("abi");
        for func in &module.functions {
            let mut mf = epic_compiler::select::select(func, &config).expect("selects");
            epic_compiler::select::fold_literal_operands(&mut mf, &config);
            epic_compiler::ifconv::if_convert(&mut mf);
            epic_compiler::regalloc::allocate(&mut mf, &abi, &config).expect("allocates");
            let layout = epic_compiler::emit::finalize_control(&mut mf, &abi);
            let (blocks, _) = epic_compiler::sched::schedule_function(&mf, &layout, &mdes);
            for block in &blocks {
                prop_assert_eq!(block.bundles.len(), block.meta.len());
                for (bundle, meta) in block.bundles.iter().zip(&block.meta) {
                    let cost = mdes.bundle_cost(bundle);
                    prop_assert_eq!(
                        meta.port_ops, cost.port_ops,
                        "{}: port_ops drifted from bundle_cost", block.label
                    );
                    prop_assert_eq!(
                        meta.max_latency, cost.max_latency,
                        "{}: max_latency drifted from bundle_cost", block.label
                    );
                }
            }
        }
    }
}
