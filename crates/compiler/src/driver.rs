//! The compiler driver: IR module in, assembly out.

use crate::emit::{emit_program, finalize_control, CALL_BTR};
use crate::error::CompileError;
use crate::fuse::{fuse, FuseStats};
use crate::ifconv::{if_convert, IfConvStats};
use crate::mir::{MBlock, MBlockId, MDest, MFunction, MInst, MOp, MSrc, MTerm};
use crate::passes::{self, PassStats};
use crate::regalloc::{allocate, Abi, RegAllocStats};
use crate::sched::{schedule_function, schedule_function_regions, SchedStats};
use crate::select::{fold_literal_operands, select};
use crate::superblock::{form_superblocks, ProfileData, SuperblockStats};
use crate::trace::{FunctionTrace, PipelineTrace};
use epic_config::Config;
use epic_ir::Module;
use epic_isa::Opcode;
use epic_mdes::MachineDescription;
use std::sync::atomic::{AtomicBool, Ordering};

/// Compilation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Run the IMPACT-style optimisation pipeline (default: on).
    pub optimize: bool,
    /// Run if-conversion (default: on; off is useful for ablation).
    pub if_conversion: bool,
    /// Rewrite matched subgraphs to registered fused custom ops
    /// (default: on; a no-op unless the config registers
    /// [`epic_config::CustomSemantics::Fused`] operations).
    pub fuse_custom: bool,
    /// Form superblocks and schedule them as multi-block regions
    /// (default: on; only takes effect at issue width ≥ 2, where the
    /// freed issue slots exist to be filled).
    pub superblock: bool,
    /// Block execution counts from an instrumented training run; guides
    /// superblock trace selection. `None` falls back to the static
    /// loop-nesting heuristic.
    pub profile: Option<ProfileData>,
    /// Functions the frontend marked for inlining.
    pub inline_hints: Vec<String>,
    /// Entry function called by the start-up stub.
    pub entry: String,
    /// Arguments the stub passes to the entry function.
    pub entry_args: Vec<u32>,
    /// Statically verify the scheduled output with `epic-verify` and
    /// fail compilation on any error diagnostic (default: on, see
    /// [`set_default_verify`]).
    pub verify: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            optimize: true,
            if_conversion: true,
            fuse_custom: true,
            superblock: true,
            profile: None,
            inline_hints: Vec::new(),
            entry: "main".to_owned(),
            entry_args: Vec::new(),
            verify: default_verify(),
        }
    }
}

/// Process-wide default for [`Options::verify`]. On unless
/// [`set_default_verify`] turned it off.
static VERIFY_BY_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for [`Options::verify`].
///
/// The post-schedule verifier run is cheap and on by default in every
/// build profile; batch drivers (`repro --no-verify`) use this escape
/// hatch to time raw compilation or to inspect rejected output. Code
/// that builds its own [`Options`] literal is unaffected.
pub fn set_default_verify(on: bool) {
    VERIFY_BY_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide default for [`Options::verify`].
#[must_use]
pub fn default_verify() -> bool {
    VERIFY_BY_DEFAULT.load(Ordering::Relaxed)
}

/// Accumulates one function's scheduling statistics into the totals.
fn absorb_sched(total: &mut SchedStats, s: &SchedStats) {
    total.ops += s.ops;
    total.bundles += s.bundles;
    total.slots_filled += s.slots_filled;
    total.slots_available += s.slots_available;
}

/// Aggregated per-compilation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompileStats {
    /// Machine-independent pass statistics.
    pub passes: PassStats,
    /// If-conversion statistics (summed over functions).
    pub ifconv: IfConvStats,
    /// Custom-instruction fusion statistics (summed over functions).
    pub fuse: FuseStats,
    /// Superblock-formation statistics (summed over functions).
    pub superblock: SuperblockStats,
    /// Register-allocation statistics (summed over functions).
    pub regalloc: RegAllocStats,
    /// Scheduling statistics (summed over functions).
    pub sched: SchedStats,
}

/// The result of a compilation: assembly text plus statistics.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    assembly: String,
    stats: CompileStats,
    config: Config,
    trace: Option<PipelineTrace>,
}

impl CompiledProgram {
    /// The bundle-structured assembly accepted by `epic-asm`.
    #[must_use]
    pub fn assembly(&self) -> &str {
        &self.assembly
    }

    /// Compilation statistics.
    #[must_use]
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// The configuration the program was compiled for.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Per-stage pipeline snapshots for translation validation.
    ///
    /// Present when the compile ran with [`Options::verify`] on; the
    /// `--no-verify` escape hatch drops trace collection along with the
    /// post-schedule verifier run.
    #[must_use]
    pub fn trace(&self) -> Option<&PipelineTrace> {
        self.trace.as_ref()
    }
}

/// The EPIC compiler for one processor configuration.
///
/// # Examples
///
/// ```
/// use epic_config::Config;
/// use epic_compiler::{Compiler, Options};
/// use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
///
/// let program = Program::new().function(
///     FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret(Expr::lit(7))]),
/// );
/// let module = epic_ir::lower::lower(&program)?;
/// let compiled = Compiler::new(Config::builder().num_alus(2).build()?)
///     .compile_with(&module, &Options::default())?;
/// assert!(compiled.assembly().contains(";;"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    config: Config,
    mdes: MachineDescription,
}

impl Compiler {
    /// Creates a compiler targeting the given configuration.
    #[must_use]
    pub fn new(config: Config) -> Self {
        let mdes = MachineDescription::new(&config);
        Compiler { config, mdes }
    }

    /// The target configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Compiles a module with default options (entry `main`, no
    /// arguments).
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_with`].
    pub fn compile(&self, module: &Module) -> Result<CompiledProgram, CompileError> {
        self.compile_with(module, &Options::default())
    }

    /// Compiles a module.
    ///
    /// The output starts with a `_start` stub that initialises the stack
    /// pointer from the module's layout, loads the entry arguments into
    /// the argument registers, calls the entry function and halts.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedDatapathWidth`] for non-32-bit
    /// configurations and any selection/allocation error.
    pub fn compile_with(
        &self,
        module: &Module,
        options: &Options,
    ) -> Result<CompiledProgram, CompileError> {
        if self.config.datapath_width() != 32 {
            return Err(CompileError::UnsupportedDatapathWidth {
                width: self.config.datapath_width(),
            });
        }
        let abi = Abi::new(&self.config)?;
        let mut module = module.clone();
        let mut stats = CompileStats::default();
        if options.optimize {
            stats.passes = passes::optimize(&mut module, &options.inline_hints);
        }

        let layout = module.layout().map_err(|e| CompileError::Internal {
            message: format!("module layout: {e}"),
        })?;

        let mut scheduled = Vec::with_capacity(module.functions.len() + 1);
        // Stage snapshots for translation validation ride along with the
        // verifier switch: `--no-verify` drops both.
        let mut trace = options.verify.then(PipelineTrace::default);

        // The start-up stub comes first: its first bundle is the entry PC.
        let mut stub = self.start_stub(&abi, options, layout.initial_sp())?;
        let stub_layout = finalize_control(&mut stub, &abi);
        let (blocks, s) = schedule_function(&stub, &stub_layout, &self.mdes);
        absorb_sched(&mut stats.sched, &s);
        if let Some(trace) = &mut trace {
            // The stub is born allocated; only the back-end stages exist.
            trace.functions.push(FunctionTrace {
                name: stub.name.clone(),
                post_select: None,
                post_ifconv: None,
                post_fuse: None,
                post_superblock: None,
                origin: None,
                traces: Vec::new(),
                post_regalloc: None,
                post_finalize: stub.clone(),
                layout: stub_layout.clone(),
                scheduled: blocks.clone(),
            });
        }
        scheduled.push(blocks);

        for func in &module.functions {
            let mut mf = select(func, &self.config)?;
            fold_literal_operands(&mut mf, &self.config);
            let post_select = trace.is_some().then(|| mf.clone());
            let mut post_ifconv = None;
            if options.if_conversion {
                let s = if_convert(&mut mf);
                stats.ifconv.diamonds += s.diamonds;
                stats.ifconv.triangles += s.triangles;
                stats.ifconv.predicated_insts += s.predicated_insts;
                post_ifconv = trace.is_some().then(|| mf.clone());
            }
            let mut post_fuse = None;
            if options.fuse_custom {
                let fs = fuse(&mut mf, &self.config);
                if fs != FuseStats::default() {
                    stats.fuse.fused += fs.fused;
                    stats.fuse.ops_removed += fs.ops_removed;
                    post_fuse = trace.is_some().then(|| mf.clone());
                }
            }
            let ra = allocate(&mut mf, &abi, &self.config)?;
            stats.regalloc.spilled += ra.spilled;
            stats.regalloc.call_saves += ra.call_saves;
            stats.regalloc.frame_bytes += ra.frame_bytes;
            let post_regalloc = trace.is_some().then(|| mf.clone());
            // Superblock formation runs on *allocated* code: cloning a
            // tail of physical registers cannot perturb the allocator,
            // whereas pre-allocation clones at the end of the block list
            // would stretch every cloned vreg's linear-scan interval
            // across the whole function and drown the win in spills.
            let mut post_superblock = None;
            let mut origin = None;
            let mut trace_groups: Vec<Vec<MBlockId>> = Vec::new();
            if options.superblock && self.mdes.issue_width() >= 2 {
                if let Some(f) = form_superblocks(&mut mf, options.profile.as_ref()) {
                    stats.superblock.absorb(f.stats);
                    post_superblock = trace.is_some().then(|| mf.clone());
                    origin = trace.is_some().then(|| f.origin.clone());
                    trace_groups = f.traces;
                }
            }
            let fl = finalize_control(&mut mf, &abi);
            let (blocks, s) = schedule_function_regions(&mf, &fl, &trace_groups, &self.mdes);
            absorb_sched(&mut stats.sched, &s);
            if let Some(trace) = &mut trace {
                trace.functions.push(FunctionTrace {
                    name: mf.name.clone(),
                    post_select,
                    post_ifconv,
                    post_fuse,
                    post_superblock,
                    origin,
                    traces: trace_groups.clone(),
                    post_regalloc,
                    post_finalize: mf.clone(),
                    layout: fl.clone(),
                    scheduled: blocks.clone(),
                });
            }
            scheduled.push(blocks);
        }

        let assembly = emit_program(&scheduled, &self.config);

        // The scheduler claims its output respects the machine contract
        // (port budget, unit occupancy, prepared branches); make the
        // claim load-bearing by running the static verifier over the
        // assembled bundles. Warnings (scoreboard-covered hazards) are
        // expected across block boundaries; errors are compiler bugs.
        if options.verify {
            let program = epic_asm::assemble(&assembly, &self.config).map_err(|e| {
                CompileError::Internal {
                    message: format!("emitted assembly does not assemble: {e}"),
                }
            })?;
            let report = epic_verify::check(&program, &self.config);
            if report.has_errors() {
                let errors: String = report
                    .diagnostics()
                    .iter()
                    .filter(|d| d.severity == epic_asm::Severity::Error)
                    .map(|d| d.render("<scheduled output>", None))
                    .collect();
                return Err(CompileError::Verification { report: errors });
            }
        }

        Ok(CompiledProgram {
            assembly,
            stats,
            config: self.config.clone(),
            trace,
        })
    }

    /// Builds the `_start` function (already in physical registers).
    fn start_stub(
        &self,
        abi: &Abi,
        options: &Options,
        initial_sp: u32,
    ) -> Result<MFunction, CompileError> {
        if options.entry_args.len() > abi.args.len() {
            return Err(CompileError::TooManyArguments {
                function: options.entry.clone(),
                count: options.entry_args.len(),
                limit: abi.args.len(),
            });
        }
        let mut insts: Vec<MInst> = Vec::new();
        let mut movil = MOp::bare(Opcode::Movil);
        movil.dest1 = MDest::Gpr(abi.sp);
        movil.src1 = MSrc::Lit(i64::from(initial_sp));
        insts.push(MInst::Op(movil));
        for (i, arg) in options.entry_args.iter().enumerate() {
            let mut op = MOp::bare(Opcode::Movil);
            op.dest1 = MDest::Gpr(abi.args[i]);
            op.src1 = MSrc::Lit(i64::from(*arg));
            insts.push(MInst::Op(op));
        }
        let mut pbr = MOp::bare(Opcode::Pbr);
        pbr.dest1 = MDest::Btr(CALL_BTR);
        pbr.src1 = MSrc::Label(format!("fn_{}", options.entry));
        insts.push(MInst::Op(pbr));
        let mut brl = MOp::bare(Opcode::Brl);
        brl.dest1 = MDest::Gpr(abi.link);
        brl.src1 = MSrc::Btr(CALL_BTR);
        insts.push(MInst::Op(brl));
        Ok(MFunction {
            name: "_start".to_owned(),
            params: vec![],
            blocks: vec![MBlock {
                id: MBlockId(0),
                insts,
                term: MTerm::Halt,
            }],
            vreg_count: 0,
            vpred_count: 1,
            allocated: true,
            frame_bytes: 0,
            makes_calls: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn compile(program: &Program, config: Config) -> CompiledProgram {
        let module = lower::lower(program).unwrap();
        let options = Options {
            inline_hints: lower::inline_hints(program),
            ..Options::default()
        };
        Compiler::new(config)
            .compile_with(&module, &options)
            .unwrap()
    }

    #[test]
    fn hello_module_compiles_to_bundled_assembly() {
        let p = Program::new().function(
            FunctionDef::new("main", [] as [&str; 0])
                .body([Stmt::ret(Expr::lit(21) * Expr::lit(2))]),
        );
        let out = compile(&p, Config::default());
        let asm = out.assembly();
        assert!(asm.contains(".entry fn__start"));
        assert!(asm.contains("fn_main:"));
        assert!(asm.contains("HALT"));
        assert!(asm.contains(";;"));
        assert!(asm.contains("BRL"));
    }

    #[test]
    fn wide_machines_schedule_denser_code() {
        // A block of independent adds should need fewer bundles on 4 ALUs
        // than on 1.
        let mut body = vec![Stmt::let_("acc", Expr::lit(0))];
        for i in 0..12 {
            body.push(Stmt::let_(format!("t{i}"), Expr::var("x") + Expr::lit(i)));
        }
        let mut total = Expr::var("t0");
        for i in 1..12 {
            total = total + Expr::var(format!("t{i}"));
        }
        body.push(Stmt::ret(total));
        let f = FunctionDef::new("main", ["x"]).body(body);
        let p = Program::new().function(f);

        let wide = compile(&p, Config::builder().num_alus(4).build().unwrap());
        let narrow = compile(&p, Config::builder().num_alus(1).build().unwrap());
        assert!(
            wide.stats().sched.bundles < narrow.stats().sched.bundles,
            "wide {} vs narrow {}",
            wide.stats().sched.bundles,
            narrow.stats().sched.bundles
        );
        assert!(wide.stats().sched.ilp() > narrow.stats().sched.ilp());
    }

    #[test]
    fn non_32_bit_datapath_is_rejected() {
        let p = Program::new()
            .function(FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret_void()]));
        let module = lower::lower(&p).unwrap();
        let config = Config::builder().datapath_width(16).build().unwrap();
        assert!(matches!(
            Compiler::new(config).compile(&module),
            Err(CompileError::UnsupportedDatapathWidth { width: 16 })
        ));
    }

    #[test]
    fn entry_arguments_appear_in_the_stub() {
        let p = Program::new().function(
            FunctionDef::new("main", ["a", "b"]).body([Stmt::ret(Expr::var("a") + Expr::var("b"))]),
        );
        let module = lower::lower(&p).unwrap();
        let options = Options {
            entry_args: vec![11, 31],
            ..Options::default()
        };
        let out = Compiler::new(Config::default())
            .compile_with(&module, &options)
            .unwrap();
        assert!(out.assembly().contains("MOVIL r2, #11"));
        assert!(out.assembly().contains("MOVIL r3, #31"));
    }

    #[test]
    fn if_conversion_option_changes_output() {
        let f = FunctionDef::new("main", ["x"]).body([
            Stmt::let_("r", Expr::lit(0)),
            Stmt::if_else(
                Expr::var("x").gt_s(Expr::lit(0)),
                [Stmt::assign("r", Expr::lit(1))],
                [Stmt::assign("r", Expr::lit(2))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let p = Program::new().function(f);
        let module = lower::lower(&p).unwrap();
        let on = Compiler::new(Config::default())
            .compile_with(&module, &Options::default())
            .unwrap();
        let opt_off = Options {
            if_conversion: false,
            ..Options::default()
        };
        let off = Compiler::new(Config::default())
            .compile_with(&module, &opt_off)
            .unwrap();
        assert!(on.stats().ifconv.diamonds >= 1);
        assert_eq!(off.stats().ifconv.diamonds, 0);
        // Without if-conversion there are more branches in the text.
        let count = |s: &str, pat: &str| s.matches(pat).count();
        assert!(count(off.assembly(), "BRC") > count(on.assembly(), "BRC"));
    }
}
