//! List scheduling into issue bundles.
//!
//! This is the elcor role: "statically schedule the instructions by
//! performing dependence analysis and resource conflict avoidance" (paper
//! §4.1), driven by the machine description. Each block's instructions
//! (by now physical and real) are formed into a dependence DAG and packed
//! greedily by critical-path priority into bundles that respect
//!
//! * the issue width,
//! * per-unit instance counts (N ALUs, one LSU/CMPU/BRU),
//! * multi-cycle unit occupancy (the blocking divider),
//! * operation latencies (a consumer issues `latency` cycles after its
//!   producer), and
//! * the register-file port budget (8 operations per cycle in the
//!   prototype), so the scheduled code never provokes the port stall the
//!   hardware would otherwise insert.
//!
//! Branch operations are constrained to the final cycle of their block.
//! Memory disambiguation is conservative except for the common
//! same-base/different-offset case, which is proven independent.
//!
//! When superblock formation ran (see [`crate::superblock`]), each trace
//! is scheduled as **one region**: the internal conditional branches
//! become *side exits*, and an operation from below a side exit may hoist
//! above it when doing so is speculation-safe — it is not a store or a
//! control transfer, it writes nothing live at the exit target, and, if
//! it is a word load, it can be replaced by the dismissible `LWS` (a
//! fault on the speculated path must not trap). Bundles then straddle the
//! former block boundaries; side-exit paths never get slower because
//! nothing ever moves *down* across an exit.

use crate::mir::{MBlockId, MFunction, MInst, MOp, MSrc, MTerm};
use crate::regalloc::Abi;
use epic_isa::Opcode;
use epic_isa::{Instruction, Unit};
use epic_mdes::MachineDescription;
use std::collections::{HashMap, HashSet};

/// A scheduled basic block: label plus bundles of machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledBlock {
    /// The block's label in the emitted assembly.
    pub label: String,
    /// Issue bundles in execution order. Every bundle is non-empty and
    /// legal for the machine description.
    pub bundles: Vec<Vec<MOp>>,
    /// Per-bundle schedule metadata, aligned with `bundles`. Downstream
    /// verification and reporting read the scheduler's own cost model
    /// from here instead of re-deriving it.
    pub meta: Vec<BundleMeta>,
}

/// Schedule metadata for one bundle, as accounted by the list scheduler
/// while packing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleMeta {
    /// Issue cycle relative to the block start. Gaps between successive
    /// bundles mark cycles where nothing could issue (latency waits or
    /// a divider shadow) — the hardware covers them with interlocks.
    pub cycle: u32,
    /// Register-file port operations the bundle performs (GPR reads
    /// plus writes), always ≤ the configured per-cycle budget.
    pub port_ops: usize,
    /// Largest result latency of the bundle's operations: consumers
    /// scheduled fewer than this many cycles later rely on the
    /// scoreboard.
    pub max_latency: u32,
}

/// Statistics reported by [`schedule_function`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Operations scheduled.
    pub ops: usize,
    /// Bundles emitted.
    pub bundles: usize,
    /// Issue slots actually filled (equals `ops`; kept separate so the
    /// occupancy ratio reads as filled/available).
    pub slots_filled: usize,
    /// Issue slots available across every region's span: issue width ×
    /// scheduled cycles, empty trailing cycles excluded.
    pub slots_available: usize,
}

impl SchedStats {
    /// Average operations per bundle (the static ILP achieved).
    #[must_use]
    pub fn ilp(&self) -> f64 {
        if self.bundles == 0 {
            0.0
        } else {
            self.ops as f64 / self.bundles as f64
        }
    }

    /// Fraction of available issue slots filled across all regions —
    /// unlike [`SchedStats::ilp`], this charges the cycles where nothing
    /// could issue (latency gaps, divider shadows) as empty slots.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.slots_available == 0 {
            0.0
        } else {
            self.slots_filled as f64 / self.slots_available as f64
        }
    }
}

/// Schedules the laid-out blocks of an allocated machine function.
///
/// `layout` comes from [`crate::emit::finalize_control`] and lists the
/// reachable blocks in emission order.
///
/// # Panics
///
/// Panics when handed a function that still contains call pseudos or
/// virtual registers (`allocated` unset) — a pipeline-ordering bug.
pub fn schedule_function(
    mfunc: &MFunction,
    layout: &[crate::mir::MBlockId],
    mdes: &MachineDescription,
) -> (Vec<ScheduledBlock>, SchedStats) {
    schedule_function_regions(mfunc, layout, &[], mdes)
}

/// Schedules a laid-out function with superblock traces as scheduling
/// regions.
///
/// Every trace in `traces` (from [`crate::superblock`]) must appear as a
/// consecutive run in `layout`; its blocks are scheduled as one
/// dependence region whose internal branches are side exits. Blocks
/// outside any trace are scheduled alone, exactly as
/// [`schedule_function`] does. The returned `ScheduledBlock` for a trace
/// carries the *head* block's label; interior blocks disappear from the
/// emitted text (their ops live in the head's bundles), which is safe
/// because single-entry regions have no interior labels to jump to.
///
/// # Panics
///
/// Panics when handed a function that still contains call pseudos or
/// virtual registers (`allocated` unset), or a trace that is not a
/// consecutive run of `layout` — pipeline-ordering bugs either way.
pub fn schedule_function_regions(
    mfunc: &MFunction,
    layout: &[crate::mir::MBlockId],
    traces: &[Vec<MBlockId>],
    mdes: &MachineDescription,
) -> (Vec<ScheduledBlock>, SchedStats) {
    assert!(mfunc.allocated, "schedule_function needs allocated code");
    let live_in = if traces.is_empty() {
        HashMap::new()
    } else {
        let abi = Abi::new(mdes.config()).expect("allocated code implies a valid ABI");
        block_live_in(mfunc, &abi)
    };
    let mut stats = SchedStats::default();
    let mut blocks = Vec::new();
    for group in region_groups(layout, traces) {
        let (ops, exits) = region_ops(mfunc, &group, &live_in);
        let (bundles, meta) = schedule_ops(&ops, &exits, mdes);
        stats.ops += ops.len();
        stats.bundles += bundles.len();
        stats.slots_filled += ops.len();
        stats.slots_available +=
            mdes.issue_width() * meta.last().map_or(0, |m| m.cycle as usize + 1);
        blocks.push(ScheduledBlock {
            label: block_label(&mfunc.name, group[0].0),
            bundles,
            meta,
        });
    }
    (blocks, stats)
}

/// Splits the layout into scheduling regions: each trace becomes one
/// group (asserting it sits consecutively in the layout), every other
/// block a singleton.
fn region_groups(layout: &[MBlockId], traces: &[Vec<MBlockId>]) -> Vec<Vec<MBlockId>> {
    let heads: HashMap<MBlockId, &Vec<MBlockId>> = traces.iter().map(|t| (t[0], t)).collect();
    let interior: HashSet<MBlockId> = traces.iter().flat_map(|t| t[1..].iter().copied()).collect();
    let mut groups = Vec::new();
    let mut i = 0;
    while i < layout.len() {
        let b = layout[i];
        if let Some(trace) = heads.get(&b) {
            assert!(
                layout[i..].starts_with(trace),
                "trace {trace:?} is not consecutive in layout at {i}"
            );
            groups.push((*trace).clone());
            i += trace.len();
        } else {
            assert!(
                !interior.contains(&b),
                "trace interior block {b:?} reached outside its trace"
            );
            groups.push(vec![b]);
            i += 1;
        }
    }
    groups
}

/// A side exit inside a scheduling region: the conditional branch at op
/// index `op` leaves the trace, and anything hoisted above it must not
/// write a register in `live` (the exit target's live-ins) or touch
/// memory non-dismissibly.
struct RegionExit {
    op: usize,
    live: HashSet<Res>,
}

/// Concatenates a region's ops and derives its side exits. Interior
/// blocks must fall through (their lowered terminator is at most one
/// conditional branch, which becomes the side exit).
fn region_ops(
    mfunc: &MFunction,
    group: &[MBlockId],
    live_in: &HashMap<MBlockId, HashSet<Res>>,
) -> (Vec<MOp>, Vec<RegionExit>) {
    let mut ops: Vec<MOp> = Vec::new();
    let mut exits: Vec<RegionExit> = Vec::new();
    for (k, &id) in group.iter().enumerate() {
        let block = mfunc.block(id);
        for inst in &block.insts {
            match inst {
                MInst::Op(op) => ops.push(op.clone()),
                MInst::Call { .. } => panic!("call pseudo reached the scheduler"),
            }
        }
        if k + 1 == group.len() {
            break; // the last block's branches are barriers, not exits
        }
        match &block.term {
            MTerm::Jump(t) => debug_assert_eq!(*t, group[k + 1], "interior must fall through"),
            MTerm::CondJump {
                on_true, on_false, ..
            } => {
                let next = group[k + 1];
                debug_assert!(*on_true == next || *on_false == next);
                let target = if *on_false == next {
                    *on_true
                } else {
                    *on_false
                };
                debug_assert!(
                    matches!(
                        ops.last().map(|o| o.opcode),
                        Some(Opcode::Brct | Opcode::Brcf)
                    ),
                    "interior CondJump must lower to one conditional branch"
                );
                exits.push(RegionExit {
                    op: ops.len() - 1,
                    live: live_in.get(&target).cloned().unwrap_or_default(),
                });
            }
            MTerm::Ret(_) | MTerm::Halt => {
                debug_assert!(false, "interior trace block cannot leave the function")
            }
        }
    }
    (ops, exits)
}

/// A trackable register resource: `(kind, number)` with kind 0 = GPR,
/// 1 = predicate, 2 = BTR.
type Res = (u8, u32);

const GPR: u8 = 0;
const PRED: u8 = 1;
const BTR: u8 = 2;

fn op_reads(op: &MOp) -> Vec<Res> {
    let mut reads: Vec<Res> = op.gpr_uses().into_iter().map(|r| (GPR, r)).collect();
    reads.extend(op.pred_uses().into_iter().map(|p| (PRED, p)));
    if let Some(b) = op.btr_use() {
        reads.push((BTR, u32::from(b)));
    }
    reads
}

fn op_writes(op: &MOp) -> Vec<Res> {
    let mut writes: Vec<Res> = Vec::new();
    if let Some(r) = op.gpr_def() {
        writes.push((GPR, r));
    }
    writes.extend(op.pred_defs().into_iter().map(|p| (PRED, p)));
    if let Some(b) = op.btr_def() {
        writes.push((BTR, u32::from(b)));
    }
    writes
}

/// Per-block live-in sets over physical registers, by backward dataflow
/// on the post-finalize CFG. `BRL` conservatively uses every argument
/// register plus the stack pointer (the callee's interface); `Ret`
/// blocks keep the return value and stack pointer live out of the
/// function. Guarded definitions do not kill (a false guard preserves
/// the old value).
fn block_live_in(mfunc: &MFunction, abi: &Abi) -> HashMap<MBlockId, HashSet<Res>> {
    let mut live_in: HashMap<MBlockId, HashSet<Res>> = mfunc
        .blocks
        .iter()
        .map(|b| (b.id, HashSet::new()))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for block in mfunc.blocks.iter().rev() {
            let mut live: HashSet<Res> = HashSet::new();
            match &block.term {
                MTerm::Ret(_) => {
                    live.insert((GPR, abi.ret));
                    live.insert((GPR, abi.sp));
                }
                MTerm::Halt => {}
                _ => {
                    for s in block.term.successors() {
                        if let Some(succ_in) = live_in.get(&s) {
                            live.extend(succ_in.iter().copied());
                        }
                    }
                }
            }
            for inst in block.insts.iter().rev() {
                let MInst::Op(op) = inst else {
                    panic!("call pseudo reached the scheduler")
                };
                if !op.is_conditional() {
                    for w in op_writes(op) {
                        live.remove(&w);
                    }
                }
                live.extend(op_reads(op));
                if op.opcode == Opcode::Brl {
                    live.extend(abi.args.iter().map(|&a| (GPR, a)));
                    live.insert((GPR, abi.sp));
                }
            }
            let entry = live_in.get_mut(&block.id).expect("all blocks seeded");
            if *entry != live {
                *entry = live;
                changed = true;
            }
        }
    }
    live_in
}

/// Whether `op` may hoist above a side exit whose target's live-ins are
/// `live`: no stores (memory state must be exit-clean), no control, the
/// only speculable load is the word load (rewritten to dismissible
/// `LWS` after placement), and nothing live at the target may be
/// overwritten — not even conditionally, since a true guard on the
/// not-taken path still clobbers.
fn may_speculate(op: &MOp, live: &HashSet<Res>) -> bool {
    if op.opcode.is_store() {
        return false;
    }
    if op.opcode.is_load() && !matches!(op.opcode, Opcode::Lw | Opcode::LwS) {
        return false;
    }
    op_writes(op).iter().all(|w| !live.contains(w))
}

/// The label naming scheme shared with emission.
#[must_use]
pub fn block_label(func: &str, block: u32) -> String {
    if block == 0 {
        format!("fn_{func}")
    } else {
        format!("{func}_bb{block}")
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    latency: u32,
}

/// A memory access already seen while building the dependence DAG:
/// `(index, base register + its SSA-ish version, literal offset, size,
/// store flag)`. Two same-base same-version literal-offset accesses with
/// disjoint ranges are provably independent.
struct MemRef {
    index: usize,
    base: Option<(u32, u32)>,
    offset: Option<i64>,
    size: u32,
    is_store: bool,
}

/// Builds the dependence DAG and list-schedules one block, discarding
/// the per-bundle metadata (test convenience).
#[cfg(test)]
fn schedule_block(ops: &[MOp], mdes: &MachineDescription) -> Vec<Vec<MOp>> {
    schedule_ops(ops, &[], mdes).0
}

/// Builds the dependence DAG and list-schedules one region, returning
/// the bundles plus the scheduler's own per-bundle accounting.
///
/// With an empty `exits` this is exactly single-block scheduling: every
/// branch is a barrier nothing may cross. Each [`RegionExit`] relaxes
/// the barrier for its branch — speculation-safe ops from below may
/// share its cycle or move above it, and any word load that does so is
/// rewritten to the dismissible `LWS` after placement.
fn schedule_ops(
    ops: &[MOp],
    exits: &[RegionExit],
    mdes: &MachineDescription,
) -> (Vec<Vec<MOp>>, Vec<BundleMeta>) {
    let n = ops.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut pred_count = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<Edge>>,
                    pred_count: &mut Vec<usize>,
                    from: usize,
                    to: usize,
                    latency: u32| {
        if from == to {
            return;
        }
        if let Some(e) = succs[from].iter_mut().find(|e| e.to == to) {
            e.latency = e.latency.max(latency);
            return;
        }
        succs[from].push(Edge { to, latency });
        pred_count[to] += 1;
    };

    // Register dependences: last writer / readers per resource.
    #[derive(Default)]
    struct ResTrack {
        last_write: HashMap<(u8, u32), usize>,
        readers: HashMap<(u8, u32), Vec<usize>>,
        write_count: HashMap<(u8, u32), u32>, // versions for mem disambiguation
    }
    let mut track = ResTrack::default();

    let exit_live: HashMap<usize, &HashSet<Res>> = exits.iter().map(|e| (e.op, &e.live)).collect();
    // For each op, the side exits it is *allowed* to cross. Placement
    // uses this to keep speculation fill-only: an op goes above a
    // pending exit only into issue slots no non-speculative ready op
    // wants, so wasted work on the taken path never displaces useful
    // work on the fall-through path.
    let mut spec_across: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut mem: Vec<MemRef> = Vec::new();
    // Branches an op may not cross at all (calls, unconditional
    // branches, the region's final control chain) vs. open side exits
    // it may cross when speculation-safe.
    let mut barrier: Option<usize> = None;
    let mut open_exits: Vec<usize> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        let is_ctl = op.opcode.is_branch() || op.opcode == Opcode::Halt;
        // Nothing moves across a barrier control transfer: `BRL` call
        // sites have register restores *after* them in program order
        // that must stay after (the callee returns to the next bundle).
        // Control ops get their (latency-1) edges from *every* earlier
        // branch in the all-predecessors loop below instead.
        if let Some(b) = barrier {
            add_edge(&mut succs, &mut pred_count, b, i, 1);
        }
        if !is_ctl {
            for &e in &open_exits {
                if may_speculate(op, exit_live[&e]) {
                    spec_across[i].push(e);
                } else {
                    add_edge(&mut succs, &mut pred_count, e, i, 1);
                }
            }
        }
        let latency = mdes.latency(op.opcode);
        let reads: Vec<Res> = op_reads(op);
        let writes: Vec<Res> = op_writes(op);
        // A guarded (conditional) definition merges with the previous
        // value: order it after prior writers *and* treat it as a reader
        // so later writers order after it (handled by WAW/WAR below).
        let conditional = op.is_conditional();

        for r in &reads {
            if let Some(&w) = track.last_write.get(r) {
                let lat = mdes.latency(ops[w].opcode);
                add_edge(&mut succs, &mut pred_count, w, i, lat);
            }
        }
        for wreg in &writes {
            if let Some(&w) = track.last_write.get(wreg) {
                add_edge(&mut succs, &mut pred_count, w, i, 1); // WAW
            }
            if let Some(readers) = track.readers.get(wreg) {
                for &r in readers {
                    add_edge(&mut succs, &mut pred_count, r, i, 0); // WAR
                }
            }
        }
        let _ = latency; // RAW latency is taken from the producer at edge creation

        // Memory dependences.
        let is_mem = op.opcode.is_load() || op.opcode.is_store();
        if is_mem {
            let base = op
                .src1
                .gpr()
                .map(|b| (b, track.write_count.get(&(GPR, b)).copied().unwrap_or(0)));
            let offset = match &op.src2 {
                MSrc::Lit(v) => Some(*v),
                _ => None,
            };
            let size = access_size(op.opcode);
            let is_store = op.opcode.is_store();
            for m in &mem {
                let ordered = if is_store || m.is_store {
                    !provably_disjoint(base, offset, size, m)
                } else {
                    false // load-load never conflicts
                };
                if ordered {
                    add_edge(&mut succs, &mut pred_count, m.index, i, 1);
                }
            }
            mem.push(MemRef {
                index: i,
                base,
                offset,
                size,
                is_store,
            });
        }

        // Branch ordering: every earlier op must not be after the branch;
        // branches chain among themselves and come last. A side exit
        // leaves the door open behind it; anything else slams it.
        if is_ctl {
            for (j, earlier) in ops.iter().enumerate().take(i) {
                let lat = if earlier.opcode.is_branch() || earlier.opcode == Opcode::Halt {
                    1
                } else {
                    0
                };
                add_edge(&mut succs, &mut pred_count, j, i, lat);
            }
            if exit_live.contains_key(&i) {
                open_exits.push(i);
            } else {
                barrier = Some(i);
                open_exits.clear();
            }
        }

        // Update trackers.
        for r in reads {
            track.readers.entry(r).or_default().push(i);
        }
        for w in writes {
            if conditional {
                // Conditional write: also a reader of the old value.
                track.readers.entry(w).or_default().push(i);
            }
            track.last_write.insert(w, i);
            *track.write_count.entry(w).or_insert(0) += 1;
            track.readers.entry(w).or_default().clear();
            if conditional {
                track.readers.entry(w).or_default().push(i);
            }
        }
    }

    // Critical-path priorities.
    let mut priority = vec![0u32; n];
    for i in (0..n).rev() {
        let mut best = 0;
        for e in &succs[i] {
            best = best.max(e.latency.max(1) + priority[e.to]);
        }
        priority[i] = best;
    }

    // List scheduling with event-based readiness. A dependence edge with
    // latency 0 (WAR ordering) is satisfied *within* the producer's cycle,
    // so its consumer may share the bundle — reads see pre-bundle state.
    let issue_width = mdes.issue_width();
    let port_budget = mdes.config().regfile_ops_per_cycle();
    let mut unsat = pred_count;
    let mut events: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> =
        std::collections::BinaryHeap::new();
    let mut scheduled = vec![false; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| unsat[i] == 0).collect();
    let mut bundles: Vec<Vec<MOp>> = Vec::new();
    let mut meta: Vec<BundleMeta> = Vec::new();
    let mut cycle: u32 = 0;
    let mut done = 0usize;
    // Final placement of each op, for the dismissible-load rewrite.
    let mut cycle_of = vec![0u32; n];
    let mut slot_of = vec![(0usize, 0usize); n];
    // Per-ALU-instance busy-until cycles (the blocking divider).
    let mut alu_busy: Vec<u32> = vec![0; mdes.unit_count(Unit::Alu)];

    while done < n {
        // Release dependences satisfied by this cycle.
        while let Some(&std::cmp::Reverse((t, j))) = events.peek() {
            if t > cycle {
                break;
            }
            events.pop();
            unsat[j] -= 1;
            if unsat[j] == 0 {
                ready.push(j);
            }
        }

        let mut bundle: Vec<usize> = Vec::new();
        let mut unit_used: HashMap<Unit, usize> = HashMap::new();
        let mut port_ops = 0usize;
        let mut branch_in_bundle = false;
        // ALU instances free at the start of this cycle; occupancy marked
        // during packing only affects later cycles.
        let alu_free = alu_busy.iter().filter(|&&b| b <= cycle).count();

        // Keep packing until nothing more fits; accepting a node can make
        // its zero-latency successors ready within the same cycle.
        loop {
            // Placing an op now is speculative when any exit it may
            // cross has not issued in a strictly earlier cycle —
            // speculative candidates only fill slots left over once
            // every non-speculative ready op has been considered.
            let spec_now = |i: usize| {
                spec_across[i]
                    .iter()
                    .any(|&e| !scheduled[e] || cycle_of[e] >= cycle)
            };
            let mut candidates: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| !scheduled[i] && !bundle.contains(&i))
                .collect();
            candidates.sort_by_key(|&i| (spec_now(i), std::cmp::Reverse(priority[i]), i));

            let mut accepted = None;
            for &i in &candidates {
                if bundle.len() >= issue_width {
                    break;
                }
                let op = &ops[i];
                let is_ctl = op.opcode.is_branch() || op.opcode == Opcode::Halt;
                if is_ctl && branch_in_bundle {
                    continue;
                }
                if let Some(unit) = op.opcode.unit() {
                    let used = unit_used.get(&unit).copied().unwrap_or(0);
                    let available = match unit {
                        Unit::Alu => alu_free,
                        other => mdes.unit_count(other),
                    };
                    if used >= available {
                        continue;
                    }
                }
                let cost = mdes.op_port_cost(op);
                if port_ops + cost > port_budget {
                    continue;
                }
                accepted = Some(i);
                port_ops += cost;
                if let Some(unit) = op.opcode.unit() {
                    *unit_used.entry(unit).or_insert(0) += 1;
                }
                if is_ctl {
                    branch_in_bundle = true;
                }
                break;
            }

            let Some(i) = accepted else { break };
            bundle.push(i);
            scheduled[i] = true;
            cycle_of[i] = cycle; // final; the bundle-close loop only assigns slots
            done += 1;
            let occupancy = mdes.occupancy(ops[i].opcode);
            if ops[i].opcode.unit() == Some(Unit::Alu) && occupancy > 1 {
                if let Some(slot) = alu_busy.iter_mut().find(|b| **b <= cycle) {
                    *slot = cycle + occupancy;
                }
            }
            for e in &succs[i] {
                if e.latency == 0 {
                    unsat[e.to] -= 1;
                    if unsat[e.to] == 0 {
                        ready.push(e.to);
                    }
                } else {
                    events.push(std::cmp::Reverse((cycle + e.latency, e.to)));
                }
            }
        }

        if !bundle.is_empty() {
            ready.retain(|&i| !scheduled[i]);
            // Control transfers go last in the bundle (stable, so
            // blocks without side exits keep their historical order):
            // the verifier's VER009 treats any op after a branch slot
            // as dead, and a hoisted op sharing a side exit's cycle
            // must sit before it.
            let mut bundle = bundle;
            bundle.sort_by_key(|&i| ops[i].opcode.is_branch() || ops[i].opcode == Opcode::Halt);
            for (slot, &i) in bundle.iter().enumerate() {
                slot_of[i] = (bundles.len(), slot);
            }
            let packed: Vec<MOp> = bundle.iter().map(|&i| ops[i].clone()).collect();
            // The shared static cost model prices the finished bundle;
            // `port_ops` accumulated during packing must agree (the
            // property tests in tests/prop_passes.rs pin this).
            let cost = mdes.bundle_cost(&packed);
            debug_assert_eq!(cost.port_ops, port_ops);
            meta.push(BundleMeta {
                cycle,
                port_ops: cost.port_ops,
                max_latency: cost.max_latency,
            });
            bundles.push(packed);
        }
        cycle += 1;
    }

    // Any word load that crossed a side exit (scheduled at or before the
    // exit's cycle despite following it in program order) executes
    // speculatively on the exit path: rewrite it to the dismissible LWS,
    // which returns 0 instead of faulting (HPL-PD's recovery-free
    // speculation; the paper's ISA carries LWS for exactly this).
    for exit in exits {
        for i in exit.op + 1..n {
            if ops[i].opcode == Opcode::Lw && cycle_of[i] <= cycle_of[exit.op] {
                let (b, s) = slot_of[i];
                bundles[b][s].opcode = Opcode::LwS;
            }
        }
    }
    (bundles, meta)
}

fn access_size(opcode: Opcode) -> u32 {
    match opcode {
        Opcode::Lw | Opcode::LwS | Opcode::Sw => 4,
        Opcode::Lh | Opcode::Lhu | Opcode::Sh => 2,
        _ => 1,
    }
}

fn provably_disjoint(
    base: Option<(u32, u32)>,
    offset: Option<i64>,
    size: u32,
    other: &MemRef,
) -> bool {
    let (Some(b1), Some(o1), Some(b2), Some(o2)) = (base, offset, other.base, other.offset) else {
        return false;
    };
    if b1 != b2 {
        return false; // different bases may alias
    }
    let (a1, a2) = (o1, o1 + i64::from(size));
    let (b_1, b_2) = (o2, o2 + i64::from(other.size));
    a2 <= b_1 || b_2 <= a1
}

/// Converts a scheduled [`MOp`] with physical operands into a real
/// [`Instruction`] — used by tests and by the direct-to-binary path in
/// `epic-core`. Label operands must already be resolved.
///
/// # Panics
///
/// Panics on unresolved labels or virtual operands.
#[must_use]
pub fn to_instruction(op: &MOp) -> Instruction {
    use epic_isa::{Btr, Dest, Gpr, Operand, PredReg};
    let dest1 = match op.dest1 {
        crate::mir::MDest::None => {
            if let Some(v) = op.store_value {
                Dest::Gpr(Gpr(v as u16))
            } else {
                Dest::None
            }
        }
        crate::mir::MDest::Gpr(r) => Dest::Gpr(Gpr(r as u16)),
        crate::mir::MDest::Pred(p) => Dest::Pred(PredReg(p as u16)),
        crate::mir::MDest::Btr(b) => Dest::Btr(Btr(b)),
    };
    let dest2 = match op.dest2 {
        crate::mir::MDest::None => {
            if matches!(op.opcode, Opcode::Cmp(_)) {
                Dest::Pred(PredReg(0))
            } else {
                Dest::None
            }
        }
        crate::mir::MDest::Gpr(r) => Dest::Gpr(Gpr(r as u16)),
        crate::mir::MDest::Pred(p) => Dest::Pred(PredReg(p as u16)),
        crate::mir::MDest::Btr(b) => Dest::Btr(Btr(b)),
    };
    let conv_src = |src: &MSrc| match src {
        MSrc::None => Operand::None,
        MSrc::Gpr(r) => Operand::Gpr(Gpr(*r as u16)),
        MSrc::Lit(v) => Operand::Lit(*v),
        MSrc::Pred(p) => Operand::Pred(PredReg(*p as u16)),
        MSrc::Btr(b) => Operand::Btr(Btr(*b)),
        MSrc::Label(l) => panic!("unresolved label @{l}"),
    };
    Instruction {
        opcode: op.opcode,
        dest1,
        dest2,
        src1: conv_src(&op.src1),
        src2: conv_src(&op.src2),
        pred: PredReg(op.guard as u16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{MDest, MSrc};
    use epic_config::Config;

    fn add(d: u32, a: u32, b: u32) -> MOp {
        let mut op = MOp::bare(Opcode::Add);
        op.dest1 = MDest::Gpr(d);
        op.src1 = MSrc::Gpr(a);
        op.src2 = MSrc::Gpr(b);
        op
    }

    fn mdes(alus: usize) -> MachineDescription {
        MachineDescription::new(&Config::builder().num_alus(alus).build().unwrap())
    }

    #[test]
    fn independent_ops_pack_into_one_bundle() {
        let ops = vec![add(10, 11, 12), add(13, 14, 15)];
        let bundles = schedule_block(&ops, &mdes(4));
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn raw_dependence_serialises() {
        let ops = vec![add(10, 11, 12), add(13, 10, 10)];
        let bundles = schedule_block(&ops, &mdes(4));
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn single_alu_serialises_independent_ops() {
        let ops = vec![add(10, 11, 12), add(13, 14, 15), add(16, 17, 18)];
        let bundles = schedule_block(&ops, &mdes(1));
        assert_eq!(bundles.len(), 3);
    }

    #[test]
    fn port_budget_limits_bundle_width() {
        // Four adds with register-register operands cost 3 ports each;
        // the default budget of 8 admits only two per cycle.
        let ops = vec![
            add(10, 11, 12),
            add(13, 14, 15),
            add(16, 17, 18),
            add(19, 20, 21),
        ];
        let bundles = schedule_block(&ops, &mdes(4));
        assert_eq!(bundles.len(), 2);
        assert!(bundles.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn divider_blocks_one_alu_instance() {
        let config = Config::builder()
            .num_alus(2)
            .div_latency(4)
            .build()
            .unwrap();
        let m = MachineDescription::new(&config);
        let mut div = MOp::bare(Opcode::Div);
        div.dest1 = MDest::Gpr(10);
        div.src1 = MSrc::Gpr(11);
        div.src2 = MSrc::Gpr(12);
        // div occupies one ALU for 4 cycles; the adds must share the
        // other instance, one per cycle.
        let ops = vec![div, add(13, 14, 15), add(16, 17, 18), add(19, 20, 21)];
        let bundles = schedule_block(&ops, &m);
        // cycle0: div+add, cycle1: add, cycle2: add
        assert_eq!(bundles.len(), 3);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn load_latency_gaps_consumer() {
        let config = Config::builder().load_latency(3).build().unwrap();
        let m = MachineDescription::new(&config);
        let mut lw = MOp::bare(Opcode::Lw);
        lw.dest1 = MDest::Gpr(10);
        lw.src1 = MSrc::Gpr(11);
        lw.src2 = MSrc::Lit(0);
        let use_it = add(12, 10, 10);
        let bundles = schedule_block(&[lw, use_it], &m);
        // load at cycle 0, consumer at cycle 3; empty cycles produce no
        // bundles, so exactly two bundles — but separated in the cycle
        // numbering (checked indirectly by count).
        assert_eq!(bundles.len(), 2);
    }

    #[test]
    fn stores_to_distinct_offsets_reorder_loads_do_not_alias() {
        let mut s1 = MOp::bare(Opcode::Sw);
        s1.store_value = Some(10);
        s1.src1 = MSrc::Gpr(20);
        s1.src2 = MSrc::Lit(0);
        let mut s2 = MOp::bare(Opcode::Sw);
        s2.store_value = Some(11);
        s2.src1 = MSrc::Gpr(20);
        s2.src2 = MSrc::Lit(4);
        // Disjoint same-base stores can share a cycle? No — one LSU. But
        // they need no ordering edge, so they still take one cycle each in
        // either order; with an aliasing pair it would ALSO be 2 cycles.
        // Distinguish via a load instead:
        let mut l = MOp::bare(Opcode::Lw);
        l.dest1 = MDest::Gpr(12);
        l.src1 = MSrc::Gpr(20);
        l.src2 = MSrc::Lit(8);
        // store @0, load @8: independent; the load may go first.
        let bundles = schedule_block(&[s1.clone(), l.clone()], &mdes(4));
        assert_eq!(bundles.len(), 2, "one LSU serialises, but no dependence");
        // store @0, load @0: dependent; order preserved.
        let mut l0 = l.clone();
        l0.src2 = MSrc::Lit(0);
        let bundles = schedule_block(&[s1.clone(), l0], &mdes(4));
        assert_eq!(bundles.len(), 2);
        let first = &bundles[0][0];
        assert!(
            first.opcode.is_store(),
            "aliasing load must stay after store"
        );
        let _ = s2;
    }

    fn store(base: u32, offset: i64, value: u32) -> MOp {
        let mut op = MOp::bare(Opcode::Sw);
        op.store_value = Some(value);
        op.src1 = MSrc::Gpr(base);
        op.src2 = MSrc::Lit(offset);
        op
    }

    fn load(dest: u32, base: u32, offset: MSrc) -> MOp {
        let mut op = MOp::bare(Opcode::Lw);
        op.dest1 = MDest::Gpr(dest);
        op.src1 = MSrc::Gpr(base);
        op.src2 = offset;
        op
    }

    #[test]
    fn same_base_disjoint_offset_load_hoists_above_store() {
        // store [r20+0]; load [r20+4] feeding a two-add chain. The
        // accesses are provably disjoint, so the critical-path load
        // issues first — the positive disambiguation case.
        let ops = vec![
            store(20, 0, 10),
            load(12, 20, MSrc::Lit(4)),
            add(13, 12, 12),
            add(14, 13, 13),
        ];
        let bundles = schedule_block(&ops, &mdes(4));
        assert!(
            bundles[0][0].opcode.is_load(),
            "disjoint load should lead: {bundles:?}"
        );
    }

    #[test]
    fn different_bases_stay_conservative_even_when_values_match() {
        // r20 and r21 may well hold the same address at run time; the
        // scheduler cannot prove otherwise from register names, so the
        // load must stay behind the store despite its longer path.
        let ops = vec![
            store(20, 0, 10),
            load(12, 21, MSrc::Lit(0)),
            add(13, 12, 12),
            add(14, 13, 13),
        ];
        let bundles = schedule_block(&ops, &mdes(4));
        assert!(
            bundles[0][0].opcode.is_store(),
            "different-base load must not reorder: {bundles:?}"
        );
    }

    #[test]
    fn partially_overlapping_ranges_stay_ordered() {
        // Word store at [r20+0] covers bytes 0..4; a halfword load at
        // [r20+2] overlaps it, so the interval arithmetic must keep the
        // order even though the offsets differ.
        let mut lh = load(12, 20, MSrc::Lit(2));
        lh.opcode = Opcode::Lh;
        let ops = vec![store(20, 0, 10), lh, add(13, 12, 12), add(14, 13, 13)];
        let bundles = schedule_block(&ops, &mdes(4));
        assert!(
            bundles[0][0].opcode.is_store(),
            "overlapping halfword must not reorder: {bundles:?}"
        );
    }

    #[test]
    fn register_offset_defeats_disambiguation() {
        // A register offset has no compile-time value: even with the
        // same base the pair must stay conservative.
        let ops = vec![
            store(20, 0, 10),
            load(12, 20, MSrc::Gpr(22)),
            add(13, 12, 12),
            add(14, 13, 13),
        ];
        let bundles = schedule_block(&ops, &mdes(4));
        assert!(
            bundles[0][0].opcode.is_store(),
            "register-offset load must not reorder: {bundles:?}"
        );
    }

    #[test]
    fn base_redefinition_between_accesses_stays_conservative() {
        // store [r20+0]; r20 changes; load [r20+0]. The equal literal
        // offsets are against *different* base values, so the version
        // tag must block the disjointness proof and keep the order.
        let ops = vec![
            store(20, 0, 10),
            add(20, 20, 20),
            load(12, 20, MSrc::Lit(4)),
            add(13, 12, 12),
            add(14, 13, 13),
        ];
        let bundles = schedule_block(&ops, &mdes(4));
        let store_cycle = bundles
            .iter()
            .position(|b| b.iter().any(|o| o.opcode.is_store()))
            .expect("store scheduled");
        let load_cycle = bundles
            .iter()
            .position(|b| b.iter().any(|o| o.opcode.is_load()))
            .expect("load scheduled");
        assert!(
            store_cycle < load_cycle,
            "redefined-base load must stay after the store: {bundles:?}"
        );
    }

    #[test]
    fn branch_goes_last() {
        let mut br = MOp::bare(Opcode::Br);
        br.src1 = MSrc::Btr(1);
        let ops = vec![add(10, 11, 12), add(13, 14, 15), br];
        let bundles = schedule_block(&ops, &mdes(4));
        let last_bundle = bundles.last().unwrap();
        assert!(last_bundle.iter().any(|o| o.opcode.is_branch()));
        // Nothing may be scheduled after the branch's bundle.
        assert!(bundles
            .iter()
            .take(bundles.len() - 1)
            .all(|b| b.iter().all(|o| !o.opcode.is_branch())));
    }

    #[test]
    fn nothing_floats_above_a_call_boundary() {
        // A BRL followed by restores (the call-expansion shape): the
        // restores must stay after the call in later cycles.
        let mut pbr = MOp::bare(Opcode::Pbr);
        pbr.dest1 = crate::mir::MDest::Btr(0);
        pbr.src1 = MSrc::Lit(5);
        let mut brl = MOp::bare(Opcode::Brl);
        brl.dest1 = crate::mir::MDest::Gpr(61);
        brl.src1 = MSrc::Btr(0);
        let mut restore = MOp::bare(Opcode::Lw);
        restore.dest1 = crate::mir::MDest::Gpr(20);
        restore.src1 = MSrc::Gpr(62);
        restore.src2 = MSrc::Lit(0);
        let bundles = schedule_block(&[pbr, brl, restore.clone()], &mdes(4));
        // Find the bundle containing the BRL and the one containing the LW.
        let brl_at = bundles
            .iter()
            .position(|b| b.iter().any(|o| o.opcode == Opcode::Brl))
            .unwrap();
        let lw_at = bundles
            .iter()
            .position(|b| b.iter().any(|o| o.opcode == Opcode::Lw))
            .unwrap();
        assert!(lw_at > brl_at, "restore must follow the call");
    }

    #[test]
    fn war_allows_same_cycle() {
        // w reads r10; x writes r10 — they may share a bundle (reads see
        // pre-bundle state).
        let reader = add(20, 10, 11);
        let writer = add(10, 12, 13);
        let bundles = schedule_block(&[reader, writer], &mdes(4));
        assert_eq!(bundles.len(), 1);
        assert_eq!(bundles[0].len(), 2);
    }

    #[test]
    fn waw_requires_separate_cycles() {
        let first = add(10, 11, 12);
        let second = add(10, 13, 14);
        let bundles = schedule_block(&[first, second], &mdes(4));
        assert_eq!(bundles.len(), 2);
        // Program order of the writes is preserved.
        assert!(matches!(bundles[0][0].src1, MSrc::Gpr(11)));
    }
}
