//! If-conversion: control dependence → data dependence.
//!
//! "One of the most significant architectural innovations of EPIC is the
//! inclusion of predicated instructions. … Only those instructions
//! associated with a predicate register showing a true condition will be
//! committed; others will be discarded" (paper §2). This pass finds small
//! diamonds and triangles in the machine CFG and replaces their branches
//! with predicated straight-line code, the transformation that lets the
//! scheduler fill the replicated ALUs with both arms at once.
//!
//! A hammock converts when each arm (i) has the branch block as its only
//! predecessor, (ii) contains only unguarded, call-free instructions, and
//! (iii) is no larger than the conversion threshold.

use crate::mir::{MBlockId, MDest, MFunction, MInst, MTerm};
use epic_isa::Opcode;

/// Largest arm size (instructions) that will be if-converted. Beyond this
/// the dual-issue cost of executing both arms outweighs the removed
/// branches.
pub const MAX_ARM_INSTS: usize = 16;

/// Statistics reported by [`if_convert`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfConvStats {
    /// Full diamonds converted.
    pub diamonds: usize,
    /// Triangles (one-armed ifs) converted.
    pub triangles: usize,
    /// Instructions that received a guard.
    pub predicated_insts: usize,
}

/// Runs if-conversion on a (pre-allocation) machine function.
pub fn if_convert(mfunc: &mut MFunction) -> IfConvStats {
    let mut stats = IfConvStats::default();
    // Iterate: converting one hammock can expose an enclosing triangle,
    // but only while inner instructions stay unguarded; one extra round
    // is enough in practice and keeps compile time linear.
    for _ in 0..2 {
        let mut changed = false;
        for bi in 0..mfunc.blocks.len() {
            if try_convert(mfunc, MBlockId(bi as u32), &mut stats) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stats
}

fn try_convert(mfunc: &mut MFunction, id: MBlockId, stats: &mut IfConvStats) -> bool {
    let MTerm::CondJump {
        pred,
        on_true,
        on_false,
    } = mfunc.block(id).term.clone()
    else {
        return false;
    };
    if on_true == on_false || on_true == id || on_false == id {
        return false;
    }
    let preds = mfunc.predecessors();
    let single_pred = |b: MBlockId| preds[b.0 as usize] == vec![id];

    let true_pred = pred;
    // The complement predicate: reuse the defining CMP's dest2 when it is
    // a live predicate, otherwise rewrite the CMP to produce one.
    let false_pred = match complement_of(mfunc, id, true_pred) {
        Some(p) => p,
        None => return false,
    };

    let arm_ok = |mfunc: &MFunction, b: MBlockId| {
        let block = mfunc.block(b);
        block.insts.len() <= MAX_ARM_INSTS
            && block.insts.iter().all(|inst| match inst {
                MInst::Op(op) => op.guard == 0 && !op.opcode.is_branch(),
                MInst::Call { .. } => false,
            })
    };

    // Diamond: A -> T, F; T -> J; F -> J.
    if single_pred(on_true)
        && single_pred(on_false)
        && arm_ok(mfunc, on_true)
        && arm_ok(mfunc, on_false)
    {
        let t_exit = mfunc.block(on_true).term.clone();
        let f_exit = mfunc.block(on_false).term.clone();
        if let (MTerm::Jump(jt), MTerm::Jump(jf)) = (t_exit, f_exit) {
            if jt == jf && jt != on_true && jt != on_false {
                let t_insts = std::mem::take(&mut mfunc.blocks[on_true.0 as usize].insts);
                let f_insts = std::mem::take(&mut mfunc.blocks[on_false.0 as usize].insts);
                stats.predicated_insts += t_insts.len() + f_insts.len();
                let block = &mut mfunc.blocks[id.0 as usize];
                for mut inst in t_insts {
                    if let MInst::Op(op) = &mut inst {
                        op.guard = true_pred;
                    }
                    block.insts.push(inst);
                }
                for mut inst in f_insts {
                    if let MInst::Op(op) = &mut inst {
                        op.guard = false_pred;
                    }
                    block.insts.push(inst);
                }
                block.term = MTerm::Jump(jt);
                stats.diamonds += 1;
                return true;
            }
        }
        // fall through to triangle checks
    }

    // Triangle: A -> T -> J with F == J (arm on the true side).
    if single_pred(on_true) && arm_ok(mfunc, on_true) {
        if let MTerm::Jump(jt) = mfunc.block(on_true).term.clone() {
            if jt == on_false && jt != on_true {
                let t_insts = std::mem::take(&mut mfunc.blocks[on_true.0 as usize].insts);
                stats.predicated_insts += t_insts.len();
                let block = &mut mfunc.blocks[id.0 as usize];
                for mut inst in t_insts {
                    if let MInst::Op(op) = &mut inst {
                        op.guard = true_pred;
                    }
                    block.insts.push(inst);
                }
                block.term = MTerm::Jump(jt);
                stats.triangles += 1;
                return true;
            }
        }
    }

    // Mirrored triangle: A -> F -> J with T == J (arm on the false side).
    if single_pred(on_false) && arm_ok(mfunc, on_false) {
        if let MTerm::Jump(jf) = mfunc.block(on_false).term.clone() {
            if jf == on_true && jf != on_false {
                let f_insts = std::mem::take(&mut mfunc.blocks[on_false.0 as usize].insts);
                stats.predicated_insts += f_insts.len();
                let block = &mut mfunc.blocks[id.0 as usize];
                for mut inst in f_insts {
                    if let MInst::Op(op) = &mut inst {
                        op.guard = false_pred;
                    }
                    block.insts.push(inst);
                }
                block.term = MTerm::Jump(jf);
                stats.triangles += 1;
                return true;
            }
        }
    }

    false
}

/// Finds (or creates) the complement predicate of `pred` in block `id`.
///
/// The defining compare is located by scanning backwards; its `dest2`
/// (written with the negated outcome by the CMPU) is reused when present,
/// or a fresh virtual predicate is patched in.
fn complement_of(mfunc: &mut MFunction, id: MBlockId, pred: u32) -> Option<u32> {
    // Locate the last write of `pred` in the block.
    let block_index = id.0 as usize;
    let mut def_index = None;
    for (i, inst) in mfunc.blocks[block_index].insts.iter().enumerate() {
        if inst.pred_defs().contains(&pred) {
            def_index = Some(i);
        }
    }
    let i = def_index?;
    let MInst::Op(op) = &mfunc.blocks[block_index].insts[i] else {
        return None;
    };
    if !matches!(op.opcode, Opcode::Cmp(_)) || op.guard != 0 {
        return None;
    }
    match op.dest2 {
        MDest::Pred(p) if p != 0 => Some(p),
        _ => {
            let fresh = mfunc.new_vpred();
            if let MInst::Op(op) = &mut mfunc.blocks[block_index].insts[i] {
                op.dest2 = MDest::Pred(fresh);
            }
            Some(fresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select;
    use epic_config::Config;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn mir_for(f: FunctionDef) -> MFunction {
        let m = lower::lower(&Program::new().function(f)).unwrap();
        select(&m.functions[0], &Config::default()).unwrap()
    }

    #[test]
    fn diamond_converts_to_predicated_block() {
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::let_("r", Expr::lit(0)),
            Stmt::if_else(
                Expr::var("x").gt_s(Expr::lit(0)),
                [Stmt::assign("r", Expr::lit(1))],
                [Stmt::assign("r", Expr::lit(2))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let mut mf = mir_for(f);
        let stats = if_convert(&mut mf);
        assert_eq!(stats.diamonds, 1);
        assert!(stats.predicated_insts >= 2);
        // The entry block now jumps straight to the join.
        assert!(matches!(mf.blocks[0].term, MTerm::Jump(_)));
        // Both guards appear, and they differ.
        let guards: Vec<u32> = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .map(|op| op.guard)
            .filter(|g| *g != 0)
            .collect();
        assert!(guards.len() >= 2);
        assert!(guards.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn triangle_converts() {
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::let_("r", Expr::var("x")),
            Stmt::if_(
                Expr::var("x").lt_s(Expr::lit(0)),
                [Stmt::assign("r", -Expr::var("x"))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let mut mf = mir_for(f);
        let stats = if_convert(&mut mf);
        assert_eq!(stats.diamonds + stats.triangles, 1);
    }

    #[test]
    fn loops_are_not_converted() {
        let f = FunctionDef::new("f", ["n"]).body([
            Stmt::let_("i", Expr::lit(0)),
            Stmt::while_(
                Expr::var("i").lt_s(Expr::var("n")),
                [Stmt::assign("i", Expr::var("i") + Expr::lit(1))],
            ),
            Stmt::ret(Expr::var("i")),
        ]);
        let mut mf = mir_for(f);
        let stats = if_convert(&mut mf);
        assert_eq!(stats.diamonds, 0);
        // The loop back-edge must survive.
        let cond_jumps = mf
            .blocks
            .iter()
            .filter(|b| matches!(b.term, MTerm::CondJump { .. }))
            .count();
        assert!(cond_jumps >= 1);
    }

    #[test]
    fn arms_with_calls_are_not_converted() {
        let g = FunctionDef::new("g", [] as [&str; 0]).body([Stmt::ret_void()]);
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::if_(Expr::var("x").gt_s(Expr::lit(0)), [Stmt::call("g", [])]),
            Stmt::ret_void(),
        ]);
        let m = lower::lower(&Program::new().function(g).function(f)).unwrap();
        let mut mf = select(m.function("f").unwrap(), &Config::default()).unwrap();
        let stats = if_convert(&mut mf);
        assert_eq!(stats.diamonds + stats.triangles, 0);
    }

    #[test]
    fn oversized_arms_are_left_alone() {
        let mut then_body = Vec::new();
        for i in 0..(MAX_ARM_INSTS as i64 + 8) {
            then_body.push(Stmt::assign("r", Expr::var("r") + Expr::lit(i)));
        }
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::let_("r", Expr::lit(0)),
            Stmt::if_(Expr::var("x").gt_s(Expr::lit(0)), then_body),
            Stmt::ret(Expr::var("r")),
        ]);
        let mut mf = mir_for(f);
        let stats = if_convert(&mut mf);
        assert_eq!(stats.diamonds + stats.triangles, 0);
    }
}
