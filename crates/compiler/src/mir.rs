//! Machine IR: EPIC operations over virtual registers.
//!
//! Between instruction selection and emission the program lives in this
//! form — [`epic_isa::Opcode`]s whose operands are *virtual* GPRs and
//! *virtual* predicates, organised in the original CFG. If-conversion
//! attaches guards, the register allocator replaces virtual registers with
//! physical indices (reusing the same types: after allocation a "virtual"
//! number simply *is* the physical index and
//! [`MFunction::allocated`] is set), and the scheduler finally reorders
//! instructions into bundles.

use epic_isa::Opcode;
use std::fmt;

/// Identifier of a machine basic block (index into [`MFunction::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MBlockId(pub u32);

impl fmt::Display for MBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mb{}", self.0)
    }
}

/// A destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MDest {
    /// Unused field.
    None,
    /// A (virtual, later physical) general-purpose register.
    Gpr(u32),
    /// A (virtual, later physical) predicate register.
    Pred(u32),
    /// A physical branch target register (`PBR`; never virtualised — the
    /// backend uses a fixed BTR discipline).
    Btr(u16),
}

impl MDest {
    /// The GPR number, if this is a GPR destination.
    #[must_use]
    pub fn gpr(self) -> Option<u32> {
        match self {
            MDest::Gpr(r) => Some(r),
            _ => None,
        }
    }
}

/// A source operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MSrc {
    /// Unused field.
    None,
    /// A (virtual, later physical) general-purpose register.
    Gpr(u32),
    /// A literal (short or, for `MOVIL`, datapath-width).
    Lit(i64),
    /// A (virtual, later physical) predicate register (`MOVPG`).
    Pred(u32),
    /// A physical branch target register (branches).
    Btr(u16),
    /// A symbolic code label (`PBR` targets), resolved by the assembler.
    Label(String),
}

impl MSrc {
    /// The GPR number, if this is a register source.
    #[must_use]
    pub fn gpr(&self) -> Option<u32> {
        match self {
            MSrc::Gpr(r) => Some(*r),
            _ => None,
        }
    }
}

/// One machine operation (real ISA semantics, virtual operands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MOp {
    /// The ISA opcode.
    pub opcode: Opcode,
    /// First destination (GPR result, store data is *not* here — see
    /// `store_value`).
    pub dest1: MDest,
    /// Second destination (compare complement predicate).
    pub dest2: MDest,
    /// First source.
    pub src1: MSrc,
    /// Second source.
    pub src2: MSrc,
    /// For stores only: the GPR whose value is written to memory
    /// (occupies the ISA's `DEST1` field but is a read).
    pub store_value: Option<u32>,
    /// Guard predicate (0 = always execute).
    pub guard: u32,
}

impl MOp {
    /// An unguarded operation with no operands.
    #[must_use]
    pub fn bare(opcode: Opcode) -> Self {
        MOp {
            opcode,
            dest1: MDest::None,
            dest2: MDest::None,
            src1: MSrc::None,
            src2: MSrc::None,
            store_value: None,
            guard: 0,
        }
    }

    /// GPRs read by this operation.
    #[must_use]
    pub fn gpr_uses(&self) -> Vec<u32> {
        let mut uses = Vec::with_capacity(3);
        if let MSrc::Gpr(r) = &self.src1 {
            uses.push(*r);
        }
        if let MSrc::Gpr(r) = &self.src2 {
            uses.push(*r);
        }
        if let Some(r) = self.store_value {
            uses.push(r);
        }
        uses
    }

    /// The BTR written (`PBR`), if any.
    #[must_use]
    pub fn btr_def(&self) -> Option<u16> {
        match self.dest1 {
            MDest::Btr(b) => Some(b),
            _ => None,
        }
    }

    /// The BTR read (branches), if any.
    #[must_use]
    pub fn btr_use(&self) -> Option<u16> {
        match &self.src1 {
            MSrc::Btr(b) => Some(*b),
            _ => None,
        }
    }

    /// The GPR defined, if any.
    #[must_use]
    pub fn gpr_def(&self) -> Option<u32> {
        self.dest1.gpr()
    }

    /// Predicates read: the guard (if not 0) plus any predicate source.
    #[must_use]
    pub fn pred_uses(&self) -> Vec<u32> {
        let mut uses = Vec::with_capacity(2);
        if self.guard != 0 {
            uses.push(self.guard);
        }
        if let MSrc::Pred(p) = &self.src1 {
            uses.push(*p);
        }
        uses
    }

    /// Predicates written (excluding the discarding predicate 0).
    #[must_use]
    pub fn pred_defs(&self) -> Vec<u32> {
        let mut defs = Vec::with_capacity(2);
        if let MDest::Pred(p) = self.dest1 {
            if p != 0 {
                defs.push(p);
            }
        }
        if let MDest::Pred(p) = self.dest2 {
            if p != 0 {
                defs.push(p);
            }
        }
        defs
    }

    /// Whether the definition is conditional (guarded), i.e. does not
    /// fully kill the previous value of its destination.
    #[must_use]
    pub fn is_conditional(&self) -> bool {
        self.guard != 0
    }
}

/// Lets the machine description price pre-encoding operations with the
/// same [`epic_mdes::StaticBundleCost`] arithmetic the verifier and the
/// simulator's decoder apply to encoded instructions.
impl epic_mdes::CostedOp for MOp {
    fn cost_opcode(&self) -> Opcode {
        self.opcode
    }
    fn gpr_read_count(&self) -> usize {
        self.gpr_uses().len()
    }
    fn writes_gpr(&self) -> bool {
        self.gpr_def().is_some()
    }
}

impl fmt::Display for MOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode.mnemonic())?;
        let mut wrote = false;
        let mut field = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if wrote {
                write!(f, ", {s}")
            } else {
                wrote = true;
                write!(f, " {s}")
            }
        };
        if let Some(v) = self.store_value {
            field(f, format!("v{v}"))?;
        }
        match self.dest1 {
            MDest::Gpr(r) => field(f, format!("v{r}"))?,
            MDest::Pred(p) => field(f, format!("q{p}"))?,
            MDest::Btr(b) => field(f, format!("b{b}"))?,
            MDest::None => {}
        }
        if let MDest::Pred(p) = self.dest2 {
            field(f, format!("q{p}"))?;
        }
        for src in [&self.src1, &self.src2] {
            match src {
                MSrc::Gpr(r) => field(f, format!("v{r}"))?,
                MSrc::Lit(v) => field(f, format!("#{v}"))?,
                MSrc::Pred(p) => field(f, format!("q{p}"))?,
                MSrc::Btr(b) => field(f, format!("b{b}"))?,
                MSrc::Label(l) => field(f, format!("@{l}"))?,
                MSrc::None => {}
            }
        }
        if self.guard != 0 {
            write!(f, " (q{})", self.guard)?;
        }
        Ok(())
    }
}

/// One machine instruction: a real operation or a call pseudo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MInst {
    /// A real ISA operation.
    Op(MOp),
    /// A direct call, expanded after register allocation into argument
    /// moves, `PBR`/`BRL` and a result move.
    Call {
        /// Callee name.
        callee: String,
        /// Argument virtual GPRs, in order.
        args: Vec<u32>,
        /// Virtual GPR receiving the return value, if used.
        dest: Option<u32>,
    },
}

impl MInst {
    /// GPRs read.
    #[must_use]
    pub fn gpr_uses(&self) -> Vec<u32> {
        match self {
            MInst::Op(op) => op.gpr_uses(),
            MInst::Call { args, .. } => args.clone(),
        }
    }

    /// The GPR defined, if any.
    #[must_use]
    pub fn gpr_def(&self) -> Option<u32> {
        match self {
            MInst::Op(op) => op.gpr_def(),
            MInst::Call { dest, .. } => *dest,
        }
    }

    /// Whether the GPR definition is conditional (guarded).
    #[must_use]
    pub fn def_is_conditional(&self) -> bool {
        match self {
            MInst::Op(op) => op.is_conditional(),
            MInst::Call { .. } => false,
        }
    }

    /// Predicates read.
    #[must_use]
    pub fn pred_uses(&self) -> Vec<u32> {
        match self {
            MInst::Op(op) => op.pred_uses(),
            MInst::Call { .. } => vec![],
        }
    }

    /// Predicates written.
    #[must_use]
    pub fn pred_defs(&self) -> Vec<u32> {
        match self {
            MInst::Op(op) => op.pred_defs(),
            MInst::Call { .. } => vec![],
        }
    }

    /// The inner [`MOp`], if this is a real operation.
    #[must_use]
    pub fn as_op(&self) -> Option<&MOp> {
        match self {
            MInst::Op(op) => Some(op),
            MInst::Call { .. } => None,
        }
    }
}

impl fmt::Display for MInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MInst::Op(op) => op.fmt(f),
            MInst::Call { callee, args, dest } => {
                if let Some(d) = dest {
                    write!(f, "call v{d} = {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "v{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// How a machine block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MTerm {
    /// Unconditional jump.
    Jump(MBlockId),
    /// Branch to `on_true` when the (virtual) predicate is set, else fall
    /// through to `on_false`.
    CondJump {
        /// The tested predicate.
        pred: u32,
        /// Taken successor.
        on_true: MBlockId,
        /// Fall-through successor.
        on_false: MBlockId,
    },
    /// Return, with the value (if any) in the given virtual GPR.
    Ret(Option<u32>),
    /// Stop the machine (`HALT`, used by the start-up stub).
    Halt,
}

impl MTerm {
    /// Successor blocks.
    #[must_use]
    pub fn successors(&self) -> Vec<MBlockId> {
        match self {
            MTerm::Jump(b) => vec![*b],
            MTerm::CondJump {
                on_true, on_false, ..
            } => vec![*on_true, *on_false],
            MTerm::Ret(_) | MTerm::Halt => vec![],
        }
    }
}

/// A machine basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MBlock {
    /// Block id (`blocks[i].id == MBlockId(i)`).
    pub id: MBlockId,
    /// Instructions in program order.
    pub insts: Vec<MInst>,
    /// The terminator.
    pub term: MTerm,
}

/// A machine function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MFunction {
    /// Function name.
    pub name: String,
    /// Virtual GPRs holding the parameters on entry.
    pub params: Vec<u32>,
    /// The blocks.
    pub blocks: Vec<MBlock>,
    /// Number of virtual GPRs.
    pub vreg_count: u32,
    /// Number of virtual predicates (vpred 0 is "always").
    pub vpred_count: u32,
    /// Set once registers are physical (post-allocation).
    pub allocated: bool,
    /// Stack-frame bytes (post-allocation: spills + call saves + link).
    pub frame_bytes: u32,
    /// Whether the function contains calls (needs the link saved).
    pub makes_calls: bool,
}

impl MFunction {
    /// Looks up a block.
    #[must_use]
    pub fn block(&self, id: MBlockId) -> &MBlock {
        &self.blocks[id.0 as usize]
    }

    /// Allocates a fresh virtual GPR.
    pub fn new_vreg(&mut self) -> u32 {
        let r = self.vreg_count;
        self.vreg_count += 1;
        r
    }

    /// Allocates a fresh virtual predicate.
    pub fn new_vpred(&mut self) -> u32 {
        let p = self.vpred_count;
        self.vpred_count += 1;
        p
    }

    /// Predecessor lists indexed by block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<MBlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for block in &self.blocks {
            for succ in block.term.successors() {
                preds[succ.0 as usize].push(block.id);
            }
        }
        preds
    }

    /// Total instruction count.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for MFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mfn {} (vregs {}, vpreds {}):",
            self.name, self.vreg_count, self.vpred_count
        )?;
        for b in &self.blocks {
            writeln!(f, "{}:", b.id)?;
            for i in &b.insts {
                writeln!(f, "  {i}")?;
            }
            match &b.term {
                MTerm::Jump(t) => writeln!(f, "  jump {t}")?,
                MTerm::CondJump {
                    pred,
                    on_true,
                    on_false,
                } => writeln!(f, "  if q{pred} -> {on_true} else {on_false}")?,
                MTerm::Ret(Some(v)) => writeln!(f, "  ret v{v}")?,
                MTerm::Ret(None) => writeln!(f, "  ret")?,
                MTerm::Halt => writeln!(f, "  halt")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_def_accounting() {
        let mut op = MOp::bare(Opcode::Add);
        op.dest1 = MDest::Gpr(5);
        op.src1 = MSrc::Gpr(1);
        op.src2 = MSrc::Lit(3);
        assert_eq!(op.gpr_uses(), vec![1]);
        assert_eq!(op.gpr_def(), Some(5));
        assert!(op.pred_uses().is_empty());

        let mut store = MOp::bare(Opcode::Sw);
        store.store_value = Some(7);
        store.src1 = MSrc::Gpr(8);
        store.src2 = MSrc::Lit(0);
        store.guard = 2;
        assert_eq!(store.gpr_uses(), vec![8, 7]);
        assert_eq!(store.gpr_def(), None);
        assert_eq!(store.pred_uses(), vec![2]);
        assert!(store.is_conditional());
    }

    #[test]
    fn pred_defs_skip_the_discard_register() {
        let mut cmp = MOp::bare(Opcode::Cmp(epic_isa::CmpCond::Lt));
        cmp.dest1 = MDest::Pred(3);
        cmp.dest2 = MDest::Pred(0);
        cmp.src1 = MSrc::Gpr(1);
        cmp.src2 = MSrc::Gpr(2);
        assert_eq!(cmp.pred_defs(), vec![3]);
    }

    #[test]
    fn call_pseudo_uses_args_and_defs_dest() {
        let call = MInst::Call {
            callee: "f".into(),
            args: vec![4, 5],
            dest: Some(6),
        };
        assert_eq!(call.gpr_uses(), vec![4, 5]);
        assert_eq!(call.gpr_def(), Some(6));
    }

    #[test]
    fn display_is_readable() {
        let mut op = MOp::bare(Opcode::Add);
        op.dest1 = MDest::Gpr(5);
        op.src1 = MSrc::Gpr(1);
        op.src2 = MSrc::Lit(3);
        op.guard = 1;
        assert_eq!(op.to_string(), "ADD v5, v1, #3 (q1)");
    }
}
