//! Custom-instruction fusion: rewrite matched dataflow subgraphs to
//! registered fused ops.
//!
//! When the target [`Config`] registers a
//! [`CustomSemantics::Fused`](epic_config::CustomSemantics) op (typically
//! discovered by `epic-isx`), this pass pattern-matches the op's
//! [`ExprTree`] against each block's machine IR and collapses matching
//! convex single-output chains into one `Custom` operation. It runs on
//! virtual registers, after if-conversion and before allocation, so the
//! deleted temporaries never reach the allocator.
//!
//! A rewrite fires only when it is provably safe on vregs:
//!
//! * every interior producer is an ALU op with exactly one definition and
//!   one use in the whole function (its value is invisible elsewhere);
//! * every member carries the root's guard, and the guard predicate is
//!   not redefined between the first member and the root;
//! * every live-in register reaches the root unchanged (the reaching
//!   definition at each interior read equals the one at the root);
//! * literals in the tree match the folded literal operands exactly.
//!
//! The pass is validated by `epic-tv`'s TV013 obligation: per-block
//! symbolic evaluation proves the rewritten block computes the same
//! expressions, with fused trees expanded back to their node semantics.

use crate::mir::{MBlock, MDest, MFunction, MInst, MOp, MSrc};
use epic_config::{Config, CustomSemantics, ExprTree, FusedOp};
use epic_isa::Opcode;
use std::collections::BTreeMap;

/// Fusion statistics (summed over functions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Subgraphs rewritten to custom ops.
    pub fused: usize,
    /// Interior operations deleted by those rewrites.
    pub ops_removed: usize,
}

/// The ALU node a MIR opcode computes, if it is fusable.
#[must_use]
pub fn fused_op_of(opcode: Opcode) -> Option<FusedOp> {
    Some(match opcode {
        Opcode::Add => FusedOp::Add,
        Opcode::Sub => FusedOp::Sub,
        Opcode::Mull => FusedOp::Mull,
        Opcode::And => FusedOp::And,
        Opcode::Or => FusedOp::Or,
        Opcode::Xor => FusedOp::Xor,
        Opcode::Shl => FusedOp::Shl,
        Opcode::Shr => FusedOp::Shr,
        Opcode::Shra => FusedOp::Shra,
        Opcode::Min => FusedOp::Min,
        Opcode::Max => FusedOp::Max,
        Opcode::Abs => FusedOp::Abs,
        Opcode::Sxtb => FusedOp::Sxtb,
        Opcode::Sxth => FusedOp::Sxth,
        Opcode::Zxtb => FusedOp::Zxtb,
        Opcode::Zxth => FusedOp::Zxth,
        _ => return None,
    })
}

/// Rewrites matches of every registered fused custom op in `mf`.
pub fn fuse(mf: &mut MFunction, config: &Config) -> FuseStats {
    // Larger trees first: a greedy biggest-match wins when candidates
    // overlap, and the index tiebreak keeps the order deterministic.
    let mut candidates: Vec<(u16, &ExprTree)> = config
        .custom_ops()
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match op.semantics() {
            CustomSemantics::Fused(tree) => Some((i as u16, tree)),
            _ => None,
        })
        .collect();
    candidates.sort_by(|a, b| b.1.node_count().cmp(&a.1.node_count()).then(a.0.cmp(&b.0)));

    let mut stats = FuseStats::default();
    if candidates.is_empty() {
        return stats;
    }

    loop {
        let counts = vreg_counts(mf);
        let mut rewrote = false;
        'blocks: for block in &mut mf.blocks {
            for root in 0..block.insts.len() {
                for &(index, tree) in &candidates {
                    if let Some(m) = match_root(block, root, tree, &counts) {
                        apply(block, root, index, &m);
                        stats.fused += 1;
                        stats.ops_removed += m.interior.len();
                        rewrote = true;
                        // Counts are stale after a rewrite; restart from
                        // a fresh census.
                        break 'blocks;
                    }
                }
            }
        }
        if !rewrote {
            return stats;
        }
    }
}

/// Global definition/use counts per vreg, terminators included.
struct VregCounts {
    defs: BTreeMap<u32, usize>,
    uses: BTreeMap<u32, usize>,
}

fn vreg_counts(mf: &MFunction) -> VregCounts {
    let mut defs = BTreeMap::new();
    let mut uses = BTreeMap::new();
    for block in &mf.blocks {
        for inst in &block.insts {
            for r in inst.gpr_uses() {
                *uses.entry(r).or_insert(0) += 1;
            }
            if let Some(r) = inst.gpr_def() {
                *defs.entry(r).or_insert(0) += 1;
            }
        }
        if let crate::mir::MTerm::Ret(Some(r)) = block.term {
            *uses.entry(r).or_insert(0) += 1;
        }
    }
    VregCounts { defs, uses }
}

/// A successful match: interior producer indices (deleted by the
/// rewrite) and the vregs bound to the tree's argument slots.
struct Match {
    interior: Vec<usize>,
    args: [Option<u32>; 2],
}

/// The reaching in-block definition of `vreg` before `pos`, if any.
fn reaching_def(block: &MBlock, pos: usize, vreg: u32) -> Option<usize> {
    block.insts[..pos]
        .iter()
        .rposition(|inst| inst.gpr_def() == Some(vreg))
}

fn match_root(block: &MBlock, root: usize, tree: &ExprTree, counts: &VregCounts) -> Option<Match> {
    let MInst::Op(op) = &block.insts[root] else {
        return None;
    };
    if plain_alu(op).is_none() || op.dest1.gpr().is_none() {
        return None;
    }
    let mut m = Match {
        interior: Vec::new(),
        args: [None, None],
    };
    if !match_op(block, root, root, op.guard, tree, counts, &mut m) {
        return None;
    }
    // The guard must hold the same value for every member as it does at
    // the root: reject if any instruction between the first member and
    // the root redefines it.
    if op.guard != 0 {
        let first = m.interior.iter().copied().min().unwrap_or(root);
        for inst in &block.insts[first..root] {
            if inst.pred_defs().contains(&op.guard) {
                return None;
            }
        }
    }
    Some(m)
}

/// Matches `tree`'s top node against the op at `at` (reads happening at
/// position `at`, value required at position `root`).
fn match_op(
    block: &MBlock,
    at: usize,
    root: usize,
    guard: u32,
    tree: &ExprTree,
    counts: &VregCounts,
    m: &mut Match,
) -> bool {
    let MInst::Op(op) = &block.insts[at] else {
        return false;
    };
    let Some(node_op) = plain_alu(op) else {
        return false;
    };
    if op.guard != guard {
        return false;
    }
    match tree {
        ExprTree::Unary(want, child) => {
            node_op == *want
                && want.is_unary()
                && match_src(block, at, root, guard, child, &op.src1, counts, m)
        }
        ExprTree::Binary(want, lhs, rhs) => {
            node_op == *want
                && !want.is_unary()
                && match_src(block, at, root, guard, lhs, &op.src1, counts, m)
                && match_src(block, at, root, guard, rhs, &op.src2, counts, m)
        }
        ExprTree::Arg(_) | ExprTree::Lit(_) => false,
    }
}

/// Matches a tree node against one source operand read at position `at`.
#[allow(clippy::too_many_arguments)]
fn match_src(
    block: &MBlock,
    at: usize,
    root: usize,
    guard: u32,
    node: &ExprTree,
    src: &MSrc,
    counts: &VregCounts,
    m: &mut Match,
) -> bool {
    match node {
        ExprTree::Lit(value) => {
            // The datapath truncates literals to 32 bits, and the miner
            // recorded the truncated pattern — compare the same way.
            let MSrc::Lit(lit) = src else { return false };
            *lit as u32 == *value
        }
        ExprTree::Arg(index) => {
            let MSrc::Gpr(reg) = src else { return false };
            // The live-in must carry the same value at this read as at
            // the root, and every occurrence of the same argument slot
            // must name the same vreg.
            if reaching_def(block, at, *reg) != reaching_def(block, root, *reg) {
                return false;
            }
            let slot = &mut m.args[usize::from(*index)];
            match slot {
                Some(bound) => *bound == *reg,
                None => {
                    *slot = Some(*reg);
                    true
                }
            }
        }
        ExprTree::Unary(..) | ExprTree::Binary(..) => {
            let MSrc::Gpr(temp) = src else { return false };
            let Some(producer) = reaching_def(block, at, *temp) else {
                return false;
            };
            // The temporary must be born and die inside this cone: one
            // definition, one use, anywhere in the function.
            if counts.defs.get(temp) != Some(&1) || counts.uses.get(temp) != Some(&1) {
                return false;
            }
            if m.interior.contains(&producer) {
                return false;
            }
            m.interior.push(producer);
            match_op(block, producer, root, guard, node, counts, m)
        }
    }
}

/// An ALU op with no second destination and no store side: the only
/// shape a fused node may absorb.
fn plain_alu(op: &MOp) -> Option<FusedOp> {
    if op.dest2 != MDest::None || op.store_value.is_some() {
        return None;
    }
    fused_op_of(op.opcode)
}

/// Replaces the root with the custom op and deletes the interior.
fn apply(block: &mut MBlock, root: usize, index: u16, m: &Match) {
    let MInst::Op(op) = &mut block.insts[root] else {
        unreachable!("matched root is an op");
    };
    op.opcode = Opcode::Custom(index);
    op.src1 = m.args[0].map_or(MSrc::Lit(0), MSrc::Gpr);
    op.src2 = m.args[1].map_or(MSrc::Lit(0), MSrc::Gpr);
    let mut dead = m.interior.clone();
    dead.sort_unstable();
    for i in dead.into_iter().rev() {
        block.insts.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{MBlockId, MTerm};
    use epic_config::CustomOp;

    fn alu(opcode: Opcode, dest: u32, src1: MSrc, src2: MSrc) -> MInst {
        let mut op = MOp::bare(opcode);
        op.dest1 = MDest::Gpr(dest);
        op.src1 = src1;
        op.src2 = src2;
        MInst::Op(op)
    }

    fn one_block(insts: Vec<MInst>, term: MTerm) -> MFunction {
        MFunction {
            name: "f".to_owned(),
            params: vec![0],
            blocks: vec![MBlock {
                id: MBlockId(0),
                insts,
                term,
            }],
            vreg_count: 16,
            vpred_count: 1,
            allocated: false,
            frame_bytes: 0,
            makes_calls: false,
        }
    }

    fn rot7_config() -> Config {
        Config::builder()
            .custom_op(
                CustomOp::new(
                    "isx_rot7",
                    CustomSemantics::Fused(ExprTree::parse("or(shr(a0,7),shl(a0,25))").unwrap()),
                )
                .with_latency(2),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn rotate_chain_fuses_to_custom_op() {
        let config = rot7_config();
        let mut mf = one_block(
            vec![
                alu(Opcode::Shr, 1, MSrc::Gpr(0), MSrc::Lit(7)),
                alu(Opcode::Shl, 2, MSrc::Gpr(0), MSrc::Lit(25)),
                alu(Opcode::Or, 3, MSrc::Gpr(1), MSrc::Gpr(2)),
            ],
            MTerm::Ret(Some(3)),
        );
        let stats = fuse(&mut mf, &config);
        assert_eq!(
            stats,
            FuseStats {
                fused: 1,
                ops_removed: 2,
            }
        );
        assert_eq!(mf.blocks[0].insts.len(), 1);
        let MInst::Op(op) = &mf.blocks[0].insts[0] else {
            panic!("op expected");
        };
        assert_eq!(op.opcode, Opcode::Custom(0));
        assert_eq!(op.dest1, MDest::Gpr(3));
        assert_eq!(op.src1, MSrc::Gpr(0));
        assert_eq!(op.src2, MSrc::Lit(0), "unary tree pads with zero");
    }

    #[test]
    fn escaping_temporary_is_not_fused() {
        let config = rot7_config();
        let mut mf = one_block(
            vec![
                alu(Opcode::Shr, 1, MSrc::Gpr(0), MSrc::Lit(7)),
                alu(Opcode::Shl, 2, MSrc::Gpr(0), MSrc::Lit(25)),
                alu(Opcode::Or, 3, MSrc::Gpr(1), MSrc::Gpr(2)),
                // The right-shift temporary is read again: two uses.
                alu(Opcode::Add, 4, MSrc::Gpr(3), MSrc::Gpr(1)),
            ],
            MTerm::Ret(Some(4)),
        );
        let stats = fuse(&mut mf, &config);
        assert_eq!(stats, FuseStats::default());
        assert_eq!(mf.blocks[0].insts.len(), 4);
    }

    #[test]
    fn redefined_live_in_is_not_fused() {
        let config = rot7_config();
        let mut mf = one_block(
            vec![
                alu(Opcode::Shr, 1, MSrc::Gpr(0), MSrc::Lit(7)),
                // v0 changes between the reads and the root: the cone
                // would read two different values of its live-in.
                alu(Opcode::Add, 0, MSrc::Gpr(0), MSrc::Lit(1)),
                alu(Opcode::Shl, 2, MSrc::Gpr(0), MSrc::Lit(25)),
                alu(Opcode::Or, 3, MSrc::Gpr(1), MSrc::Gpr(2)),
            ],
            MTerm::Ret(Some(3)),
        );
        let stats = fuse(&mut mf, &config);
        assert_eq!(stats, FuseStats::default());
    }

    #[test]
    fn guard_mismatch_is_not_fused() {
        let config = rot7_config();
        let mut guarded = MOp::bare(Opcode::Shl);
        guarded.dest1 = MDest::Gpr(2);
        guarded.src1 = MSrc::Gpr(0);
        guarded.src2 = MSrc::Lit(25);
        guarded.guard = 1;
        let mut mf = one_block(
            vec![
                alu(Opcode::Shr, 1, MSrc::Gpr(0), MSrc::Lit(7)),
                MInst::Op(guarded),
                alu(Opcode::Or, 3, MSrc::Gpr(1), MSrc::Gpr(2)),
            ],
            MTerm::Ret(Some(3)),
        );
        let stats = fuse(&mut mf, &config);
        assert_eq!(stats, FuseStats::default());
    }

    #[test]
    fn two_live_in_tree_binds_both_sources() {
        let config = Config::builder()
            .custom_op(CustomOp::new(
                "isx_xsr",
                CustomSemantics::Fused(ExprTree::parse("xor(shr(a0,3),a1)").unwrap()),
            ))
            .build()
            .unwrap();
        let mut mf = one_block(
            vec![
                alu(Opcode::Shr, 2, MSrc::Gpr(0), MSrc::Lit(3)),
                alu(Opcode::Xor, 3, MSrc::Gpr(2), MSrc::Gpr(1)),
            ],
            MTerm::Ret(Some(3)),
        );
        mf.params = vec![0, 1];
        let stats = fuse(&mut mf, &config);
        assert_eq!(stats.fused, 1);
        let MInst::Op(op) = &mf.blocks[0].insts[0] else {
            panic!("op expected");
        };
        assert_eq!(op.opcode, Opcode::Custom(0));
        assert_eq!(op.src1, MSrc::Gpr(0));
        assert_eq!(op.src2, MSrc::Gpr(1));
    }
}
