//! Profile-guided superblock formation (the IMPACT-signature pass).
//!
//! A *superblock* is a single-entry multiple-exit trace of basic blocks:
//! control enters only at the head, may leave early through the internal
//! conditional branches (now *side exits*), and otherwise falls through
//! block to block. The scheduler treats the whole trace as one
//! dependence region (see [`crate::sched::schedule_function_regions`]),
//! so bundles straddle the former block boundaries and issue slots
//! around branches stop going empty — the region-ILP move Trimaran's
//! IMPACT/elcor pipeline performs for the paper's toolchain.
//!
//! Formation runs after register allocation, before control
//! finalisation — cloning allocated code cannot perturb the allocator's
//! linear-scan intervals (clones land at the end of the block list,
//! which would otherwise stretch every cloned virtual register's
//! interval across the whole function and drown the win in spills):
//!
//! 1. **Weights.** Each block gets an execution weight, either from a
//!    [`ProfileData`] (per-block issue counts of an instrumented
//!    training run, keyed by the emitted block label) or, when no
//!    profile is available, from a static loop-nesting heuristic
//!    (depth *d* weighs `10^d`).
//! 2. **Trace selection.** Hot traces grow along *existing layout
//!    adjacency*: a block joins the trace only if it is the next
//!    reachable block by id — i.e. already the fall-through — and the
//!    profile says the fall-through edge dominates its sibling. Loop
//!    headers may only start a trace (back edges never extend one), the
//!    entry block never joins mid-trace, and no trace member may branch
//!    back into the trace's interior. Restricting growth to layout
//!    order means formation never reorders existing blocks, so every
//!    fall-through the old layout enjoyed survives and cold paths pay
//!    no new branches.
//! 3. **Loop unrolling.** A trace whose tail branches back to its head
//!    is a hot loop body. When the profile says the loop iterates (the
//!    header's weight dominates its external entries), the whole trace
//!    is cloned [`MAX_UNROLL_FACTOR`] times into one chain appended
//!    after the original blocks: copy *c*'s back edge is retargeted to
//!    copy *c*+1's head, the last copy loops to the first, and every
//!    external predecessor of the header enters the chain instead. The
//!    chain schedules as a single region, so iterations overlap in the
//!    issue slots and the taken back edge (one pipeline flush each
//!    trip) is paid once per *K* iterations instead of every one. The
//!    original loop body goes unreachable and drops out of the layout.
//! 4. **Tail duplication.** A side *entry* into the trace interior
//!    would break the single-entry property, so the tail from the first
//!    side-entered block on is cloned and the off-trace predecessors
//!    retargeted to the clone (placed after all original blocks). When
//!    the tail is too big ([`MAX_DUPLICATED_OPS`]) or a side
//!    predecessor reaches the trace by falling through (retargeting it
//!    would materialise a branch), the trace is truncated instead.
//!
//! The pass returns an *origin witness*: for every post-formation block
//! the id of the pre-formation block it copies. `epic-tv`'s TV010 check
//! replays the witness to prove the transformed CFG is a refinement —
//! block bodies are bit-identical to their origins and every terminator
//! edge maps back through the witness.

use crate::mir::{MBlockId, MFunction, MTerm};
use std::collections::{HashMap, HashSet};

/// Block execution weights from an instrumented training run.
///
/// Keys are emitted block labels (`fn_<name>` / `<name>_bb<id>`, see
/// [`crate::sched::block_label`]); values are execution counts — how
/// often the block's first bundle issued. `epic-core` builds one from a
/// [`ProfileSink`](../../epic_sim/struct.ProfileSink.html) run plus the
/// assembler's label table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileData {
    weights: HashMap<String, u64>,
}

impl ProfileData {
    /// An empty profile (formation falls back to the static heuristic).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the execution count of one block label.
    pub fn record(&mut self, label: impl Into<String>, count: u64) {
        self.weights.insert(label.into(), count);
    }

    /// The recorded count for a label, if any.
    #[must_use]
    pub fn weight(&self, label: &str) -> Option<u64> {
        self.weights.get(label).copied()
    }

    /// Whether any counts were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Per-function formation statistics, summed into
/// [`crate::CompileStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Superblocks formed (traces of ≥ 2 blocks).
    pub traces: usize,
    /// Blocks merged into those traces (heads included).
    pub trace_blocks: usize,
    /// Blocks cloned by tail duplication.
    pub duplicated_blocks: usize,
    /// Instructions in those clones.
    pub duplicated_ops: usize,
    /// Hot loops unrolled into a single chained region.
    pub unrolled_loops: usize,
    /// Blocks cloned by unrolling (every copy of the loop body).
    pub unrolled_blocks: usize,
}

impl SuperblockStats {
    /// Accumulates another function's counts.
    pub fn absorb(&mut self, other: SuperblockStats) {
        self.traces += other.traces;
        self.trace_blocks += other.trace_blocks;
        self.duplicated_blocks += other.duplicated_blocks;
        self.duplicated_ops += other.duplicated_ops;
        self.unrolled_loops += other.unrolled_loops;
        self.unrolled_blocks += other.unrolled_blocks;
    }
}

/// The result of [`form_superblocks`] on one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formation {
    /// Each formed trace as consecutive block ids, head first.
    pub traces: Vec<Vec<MBlockId>>,
    /// For every post-formation block, the pre-formation block it
    /// copies (identity for original blocks, the cloned id for tail
    /// duplicates). TV010 replays this witness.
    pub origin: Vec<u32>,
    /// Formation statistics.
    pub stats: SuperblockStats,
}

/// Longest trace formation will grow.
pub const MAX_TRACE_BLOCKS: usize = 8;
/// Most instructions tail duplication may clone per trace; larger tails
/// truncate the trace instead.
pub const MAX_DUPLICATED_OPS: usize = 24;
/// Most copies of a loop body unrolling will chain.
pub const MAX_UNROLL_FACTOR: usize = 8;
/// Budget for the whole unrolled chain: the factor shrinks until
/// `factor * body_ops` fits, and bodies too big for even two copies are
/// left rolled.
pub const MAX_UNROLL_OPS: usize = 256;
/// A loop unrolls only when the header's weight is at least this many
/// times the combined weight of its external predecessors — a crude
/// trip-count floor that keeps cold or once-through loops rolled (the
/// retargeted entry edge costs a taken branch, so low-trip loops would
/// lose).
pub const UNROLL_MIN_TRIPS: u64 = 4;

/// Forms superblocks in `mfunc`, mutating it in place.
///
/// Returns `None` — and leaves the function untouched — when no trace
/// of at least two blocks forms. `profile` weights win over the static
/// heuristic whenever they cover at least one of the function's blocks.
pub fn form_superblocks(mfunc: &mut MFunction, profile: Option<&ProfileData>) -> Option<Formation> {
    let plan = trace_plan(mfunc, profile);
    let reachable = reachable_blocks(mfunc);
    let (_, static_weights) = loop_analysis(mfunc, &reachable);
    let weights = profile
        .and_then(|p| profile_weights(mfunc, p))
        .unwrap_or(static_weights);
    apply_plan(mfunc, &plan, &weights)
}

/// Reachability over terminator successors from the entry block.
fn reachable_blocks(mfunc: &MFunction) -> Vec<bool> {
    let n = mfunc.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in mfunc.blocks[b].term.successors() {
            let s = s.0 as usize;
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Back-edge targets (natural-loop headers) and a static block weight:
/// `10^depth`, where depth counts the natural loops containing the
/// block. Used when no profile covers the function.
fn loop_analysis(mfunc: &MFunction, reachable: &[bool]) -> (HashSet<usize>, Vec<u64>) {
    let n = mfunc.blocks.len();
    // Iterative DFS with an explicit on-stack marker to find back edges.
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = mfunc.blocks[b].term.successors();
        if *next < succs.len() {
            let s = succs[*next].0 as usize;
            *next += 1;
            match state[s] {
                0 => {
                    state[s] = 1;
                    stack.push((s, 0));
                }
                1 => back_edges.push((b, s)),
                _ => {}
            }
        } else {
            state[b] = 2;
            stack.pop();
        }
    }

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in mfunc.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for s in block.term.successors() {
            preds[s.0 as usize].push(b);
        }
    }

    // Natural loop of header h = union over back edges (t, h) of blocks
    // reaching t without passing h.
    let headers: HashSet<usize> = back_edges.iter().map(|&(_, h)| h).collect();
    let mut depth = vec![0u32; n];
    for &h in &headers {
        let mut members: HashSet<usize> = HashSet::from([h]);
        let mut work: Vec<usize> = back_edges
            .iter()
            .filter(|&&(_, hdr)| hdr == h)
            .map(|&(t, _)| t)
            .collect();
        while let Some(x) = work.pop() {
            if members.insert(x) {
                work.extend(preds[x].iter().copied());
            }
        }
        for &m in &members {
            depth[m] += 1;
        }
    }

    let weights = depth
        .iter()
        .map(|&d| 10u64.saturating_pow(d.min(9)))
        .collect();
    (headers, weights)
}

/// Per-block weights from a profile, if it covers this function at all.
fn profile_weights(mfunc: &MFunction, profile: &ProfileData) -> Option<Vec<u64>> {
    let weights: Vec<u64> = (0..mfunc.blocks.len())
        .map(|b| {
            profile
                .weight(&crate::sched::block_label(&mfunc.name, b as u32))
                .unwrap_or(0)
        })
        .collect();
    weights.iter().any(|&w| w > 0).then_some(weights)
}

/// Selects hot traces without mutating the function. Public so that
/// `epic-prof`'s PRF001 diagnostic can name the trace a hot block would
/// join (see [`crate::suggest::superblock_hint`]). A single-block
/// entry in the plan is a hot self-loop: it only becomes a superblock
/// if unrolling chains copies of it.
#[must_use]
pub fn trace_plan(mfunc: &MFunction, profile: Option<&ProfileData>) -> Vec<Vec<MBlockId>> {
    let n = mfunc.blocks.len();
    if n < 2 {
        return Vec::new();
    }
    let reachable = reachable_blocks(mfunc);
    let (headers, static_weights) = loop_analysis(mfunc, &reachable);
    let weights = profile
        .and_then(|p| profile_weights(mfunc, p))
        .unwrap_or(static_weights);

    // The next reachable block by id: the block that will sit directly
    // below `b` in the final layout (finalize_control lays reachable
    // blocks out in id order).
    let layout_next = |b: usize| -> Option<usize> { (b + 1..n).find(|&x| reachable[x]) };

    let mut claimed = vec![false; n];
    let mut seeds: Vec<usize> = (0..n).filter(|&b| reachable[b] && weights[b] > 0).collect();
    seeds.sort_by_key(|&b| (std::cmp::Reverse(weights[b]), b));

    let mut traces: Vec<Vec<MBlockId>> = Vec::new();
    for seed in seeds {
        if claimed[seed] {
            continue;
        }
        let mut trace = vec![seed];
        claimed[seed] = true;
        while trace.len() < MAX_TRACE_BLOCKS {
            let cur = *trace.last().expect("trace is non-empty");
            let Some(next) = layout_next(cur) else { break };
            // Only the existing fall-through may extend the trace, and
            // only when the terminator actually reaches it and the
            // weights say the fall-through edge dominates.
            let eligible = match &mfunc.blocks[cur].term {
                MTerm::Jump(t) => t.0 as usize == next,
                MTerm::CondJump {
                    on_true, on_false, ..
                } => {
                    let (t, f) = (on_true.0 as usize, on_false.0 as usize);
                    let other = if t == next {
                        f
                    } else if f == next {
                        t
                    } else {
                        // Neither arm falls through; the trace ends.
                        break;
                    };
                    other == next || weights[next] > weights[other]
                }
                MTerm::Ret(_) | MTerm::Halt => false,
            };
            if !eligible
                || next == 0
                || claimed[next]
                || headers.contains(&next)
                || 2 * weights[next] < weights[cur]
            {
                break;
            }
            // No trace member may branch into the interior (the head is
            // fine: that is the superblock's entry), and no earlier
            // member may already target `next` — both would recreate a
            // side entry from inside the trace.
            let next_succs = mfunc.blocks[next].term.successors();
            if next_succs
                .iter()
                .any(|s| trace[1..].contains(&(s.0 as usize)))
            {
                break;
            }
            if trace[..trace.len() - 1].iter().any(|&t| {
                mfunc.blocks[t]
                    .term
                    .successors()
                    .contains(&MBlockId(next as u32))
            }) {
                break;
            }
            trace.push(next);
            claimed[next] = true;
        }
        if trace.len() >= 2 {
            traces.push(trace.into_iter().map(|b| MBlockId(b as u32)).collect());
        } else if mfunc.blocks[seed]
            .term
            .successors()
            .contains(&MBlockId(seed as u32))
        {
            // A single-block self-loop cannot grow, but unrolling can
            // still chain copies of it into a superblock.
            traces.push(vec![MBlockId(seed as u32)]);
        } else {
            claimed[seed] = false; // a failed head may still join a later trace
        }
    }
    traces
}

/// Replaces every successor equal to `old` with `new`.
fn retarget(term: &mut MTerm, old: MBlockId, new: MBlockId) {
    match term {
        MTerm::Jump(t) => {
            if *t == old {
                *t = new;
            }
        }
        MTerm::CondJump {
            on_true, on_false, ..
        } => {
            if *on_true == old {
                *on_true = new;
            }
            if *on_false == old {
                *on_false = new;
            }
        }
        MTerm::Ret(_) | MTerm::Halt => {}
    }
}

/// Unrolls a loop trace (tail branches back to the head) into a chain
/// of `K` cloned copies appended after all existing blocks, retargeting
/// the external predecessors of the head into the chain. Returns the
/// chain (the new superblock) or `None` when the trace is not an
/// unrollable hot loop. Original blocks are never modified except for
/// the retargeted entry edges, so the origin witness stays a
/// refinement.
fn try_unroll(
    mfunc: &mut MFunction,
    trace: &[MBlockId],
    weights: &[u64],
    origin: &mut Vec<u32>,
    stats: &mut SuperblockStats,
) -> Option<Vec<MBlockId>> {
    let head = trace[0];
    if head.0 == 0 {
        return None; // execution enters at block 0; it cannot relocate
    }
    let tail = *trace.last().expect("trace is non-empty");
    if !mfunc.block(tail).term.successors().contains(&head) {
        return None; // not a loop
    }
    // Only the tail may take the back edge: a mid-trace branch to the
    // head would give interior copies a second predecessor.
    if trace[..trace.len() - 1]
        .iter()
        .any(|&b| mfunc.block(b).term.successors().contains(&head))
    {
        return None;
    }
    let weight_of = |b: MBlockId| weights.get(b.0 as usize).copied().unwrap_or(0);
    let reachable = reachable_blocks(mfunc);
    let entry_preds: Vec<MBlockId> = mfunc
        .blocks
        .iter()
        .filter(|b| reachable[b.id.0 as usize] && !trace.contains(&b.id))
        .filter(|b| b.term.successors().contains(&head))
        .map(|b| b.id)
        .collect();
    if entry_preds.is_empty() {
        return None; // head is only side-entered; the chain would be dead
    }
    let entry_weight: u64 = entry_preds.iter().map(|&p| weight_of(p)).sum();
    if weight_of(head) < UNROLL_MIN_TRIPS * entry_weight.max(1) {
        return None; // too few trips to amortise the entry branch
    }
    let body_ops: usize = trace.iter().map(|&b| mfunc.block(b).insts.len()).sum();
    let factor = MAX_UNROLL_FACTOR.min(MAX_UNROLL_OPS / body_ops.max(1));
    if factor < 2 {
        return None;
    }

    let first_clone = mfunc.blocks.len() as u32;
    let mut chain: Vec<MBlockId> = Vec::with_capacity(factor * trace.len());
    for copy in 0..factor {
        for &b in trace {
            let new_id = MBlockId(mfunc.blocks.len() as u32);
            let mut clone = mfunc.block(b).clone();
            clone.id = new_id;
            stats.unrolled_blocks += 1;
            mfunc.blocks.push(clone);
            origin.push(b.0);
            chain.push(new_id);
        }
        // Interior fall-throughs stay within this copy.
        let base = copy * trace.len();
        for (j, w) in trace.windows(2).enumerate() {
            let this = chain[base + j];
            retarget(
                &mut mfunc.blocks[this.0 as usize].term,
                w[1],
                chain[base + j + 1],
            );
        }
    }
    // Chain the back edges: copy c falls into copy c+1's head, and the
    // last copy loops to the first — one taken branch per `factor`
    // iterations.
    for copy in 0..factor {
        let copy_tail = chain[copy * trace.len() + trace.len() - 1];
        let next_head = chain[((copy + 1) % factor) * trace.len()];
        retarget(
            &mut mfunc.blocks[copy_tail.0 as usize].term,
            head,
            next_head,
        );
    }
    // Every pre-existing block outside the trace now enters the chain
    // instead of the original head, which goes unreachable (along with
    // the rest of the original body when it has no side entries).
    for p in 0..first_clone as usize {
        if !trace.contains(&MBlockId(p as u32)) {
            retarget(&mut mfunc.blocks[p].term, head, chain[0]);
        }
    }
    stats.unrolled_loops += 1;
    Some(chain)
}

/// Applies a trace plan: unrolls hot loops, tail-duplicates
/// side-entered interiors (or truncates when duplication is not worth
/// it) and appends the clones after all original blocks. Original block
/// ids never change.
fn apply_plan(mfunc: &mut MFunction, plan: &[Vec<MBlockId>], weights: &[u64]) -> Option<Formation> {
    let orig_n = mfunc.blocks.len();
    let mut origin: Vec<u32> = (0..orig_n as u32).collect();
    let mut stats = SuperblockStats::default();
    let mut final_traces: Vec<Vec<MBlockId>> = Vec::new();

    for trace in plan {
        if let Some(chain) = try_unroll(mfunc, trace, weights, &mut origin, &mut stats) {
            stats.traces += 1;
            stats.trace_blocks += chain.len();
            final_traces.push(chain);
            continue;
        }
        if trace.len() < 2 {
            continue; // a self-loop that did not unroll stays as-is
        }
        let mut trace = trace.clone();
        // Fresh predecessor sets over *reachable* blocks: earlier traces
        // may have retargeted edges (including edges originating in
        // duplicate blocks), and unreachable predecessors are neither
        // side entries nor worth duplicating for.
        let reachable = reachable_blocks(mfunc);
        let mut preds: Vec<HashSet<MBlockId>> = vec![HashSet::new(); mfunc.blocks.len()];
        for block in &mfunc.blocks {
            if !reachable[block.id.0 as usize] {
                continue;
            }
            for s in block.term.successors() {
                preds[s.0 as usize].insert(block.id);
            }
        }
        // First interior block with an off-trace predecessor. (A side
        // predecessor can never reach the interior by falling through:
        // growth follows layout adjacency, so the block directly above
        // any interior block is its on-trace predecessor.)
        let side_entered = (1..trace.len()).find(|&j| {
            preds[trace[j].0 as usize]
                .iter()
                .any(|&p| p != trace[j - 1])
        });
        if let Some(j0) = side_entered {
            let tail_ops: usize = trace[j0..]
                .iter()
                .map(|&b| mfunc.block(b).insts.len())
                .sum();
            if tail_ops > MAX_DUPLICATED_OPS {
                trace.truncate(j0);
            } else {
                // Clone the tail and retarget the side entries into it.
                let mut clone_of: HashMap<MBlockId, MBlockId> = HashMap::new();
                for &b in &trace[j0..] {
                    let new_id = MBlockId(mfunc.blocks.len() as u32);
                    let mut clone = mfunc.block(b).clone();
                    clone.id = new_id;
                    stats.duplicated_blocks += 1;
                    stats.duplicated_ops += clone.insts.len();
                    mfunc.blocks.push(clone);
                    origin.push(b.0);
                    clone_of.insert(b, new_id);
                }
                // Chain the clones: each clone falls to the next clone
                // instead of back into the trace.
                for w in trace[j0..].windows(2) {
                    let (this, next) = (clone_of[&w[0]], clone_of[&w[1]]);
                    retarget(&mut mfunc.blocks[this.0 as usize].term, w[1], next);
                }
                // Side predecessors enter the clone chain.
                for j in j0..trace.len() {
                    let b = trace[j];
                    for &p in &preds[b.0 as usize] {
                        if p != trace[j - 1] {
                            retarget(&mut mfunc.blocks[p.0 as usize].term, b, clone_of[&b]);
                        }
                    }
                }
            }
        }
        if trace.len() >= 2 {
            stats.traces += 1;
            stats.trace_blocks += trace.len();
            final_traces.push(trace);
        }
    }

    if final_traces.is_empty() {
        debug_assert_eq!(mfunc.blocks.len(), orig_n, "no trace must mean no change");
        return None;
    }
    Some(Formation {
        traces: final_traces,
        origin,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{MBlock, MDest, MInst, MOp, MSrc};
    use epic_isa::Opcode;

    fn op(dest: u32) -> MInst {
        let mut o = MOp::bare(Opcode::Add);
        o.dest1 = MDest::Gpr(dest);
        o.src1 = MSrc::Gpr(dest);
        o.src2 = MSrc::Lit(1);
        MInst::Op(o)
    }

    fn func(blocks: Vec<(Vec<MInst>, MTerm)>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: vec![],
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, (insts, term))| MBlock {
                    id: MBlockId(i as u32),
                    insts,
                    term,
                })
                .collect(),
            vreg_count: 32,
            vpred_count: 4,
            allocated: false,
            frame_bytes: 0,
            makes_calls: false,
        }
    }

    fn cond(pred: u32, on_true: u32, on_false: u32) -> MTerm {
        MTerm::CondJump {
            pred,
            on_true: MBlockId(on_true),
            on_false: MBlockId(on_false),
        }
    }

    #[test]
    fn while_loop_header_and_body_form_a_trace() {
        // 0: entry -> 1; 1: header cond(body=2, exit=3); 2: body -> 1;
        // 3: exit. Header 1 heads the trace; the back edge never
        // extends it; body joins as the fall-through.
        let f = func(vec![
            (vec![op(1)], MTerm::Jump(MBlockId(1))),
            (vec![op(2)], cond(1, 2, 3)),
            (vec![op(3)], MTerm::Jump(MBlockId(1))),
            (vec![op(4)], MTerm::Ret(None)),
        ]);
        let plan = trace_plan(&f, None);
        assert!(
            plan.contains(&vec![MBlockId(1), MBlockId(2)]),
            "plan: {plan:?}"
        );
        // Block 1 is a loop header: nothing may extend *into* it.
        assert!(plan
            .iter()
            .all(|t| t[1..].iter().all(|&b| b != MBlockId(1))));
    }

    #[test]
    fn straight_jump_chain_merges_without_duplication() {
        let f = func(vec![
            (vec![op(1)], MTerm::Jump(MBlockId(1))),
            (vec![op(2)], MTerm::Jump(MBlockId(2))),
            (vec![op(3)], MTerm::Ret(None)),
        ]);
        let mut g = f.clone();
        let formation = form_superblocks(&mut g, None).expect("chain forms a trace");
        assert_eq!(
            formation.traces,
            vec![vec![MBlockId(0), MBlockId(1), MBlockId(2)]]
        );
        assert_eq!(formation.stats.duplicated_blocks, 0);
        assert_eq!(g.blocks.len(), 3, "no clones needed");
        assert_eq!(formation.origin, vec![0, 1, 2]);
    }

    #[test]
    fn side_entry_is_tail_duplicated_and_retargeted() {
        // 0 -> 1 -> 2 (trace), but 3 also branches into 2 (side entry)
        // and 2 returns. Block 3 is reachable off the cold arm of 0.
        let f = func(vec![
            (vec![op(1)], cond(1, 3, 1)), // fall-through 1, cold arm 3
            (vec![op(2)], MTerm::Jump(MBlockId(2))),
            (vec![op(3), op(4)], MTerm::Ret(None)),
            (vec![op(5)], MTerm::Jump(MBlockId(2))), // side entry into 2
        ]);
        let mut g = f.clone();
        // Make the fall-through arm hot so 0 -> 1 extends.
        let mut profile = ProfileData::new();
        profile.record("fn_t", 100);
        profile.record("t_bb1", 90);
        profile.record("t_bb2", 95);
        profile.record("t_bb3", 10);
        let formation = form_superblocks(&mut g, Some(&profile)).expect("trace forms");
        assert_eq!(
            formation.traces,
            vec![vec![MBlockId(0), MBlockId(1), MBlockId(2)]]
        );
        // Block 2 was cloned; 3 now targets the clone.
        assert_eq!(g.blocks.len(), 5);
        assert_eq!(formation.origin, vec![0, 1, 2, 3, 2]);
        assert_eq!(g.blocks[3].term, MTerm::Jump(MBlockId(4)));
        assert_eq!(g.blocks[4].insts, f.blocks[2].insts);
        assert_eq!(formation.stats.duplicated_blocks, 1);
        assert_eq!(formation.stats.duplicated_ops, 2);
        // The original trace blocks are untouched.
        assert_eq!(g.blocks[0].insts, f.blocks[0].insts);
        assert_eq!(g.blocks[2].term, MTerm::Ret(None));
    }

    #[test]
    fn oversized_side_entered_tail_truncates_instead_of_duplicating() {
        // Same shape as the duplication test, but the side-entered block
        // is too big to clone: the trace is truncated before it.
        let big: Vec<MInst> = (0..=MAX_DUPLICATED_OPS as u32).map(op).collect();
        let f = func(vec![
            (vec![op(1)], cond(1, 3, 1)),
            (vec![op(2)], MTerm::Jump(MBlockId(2))),
            (big, MTerm::Ret(None)),
            (vec![op(5)], MTerm::Jump(MBlockId(2))), // side entry into 2
        ]);
        let mut g = f.clone();
        let mut profile = ProfileData::new();
        profile.record("fn_t", 100);
        profile.record("t_bb1", 90);
        profile.record("t_bb2", 95);
        profile.record("t_bb3", 10);
        let formation = form_superblocks(&mut g, Some(&profile)).expect("trace forms");
        assert_eq!(formation.traces, vec![vec![MBlockId(0), MBlockId(1)]]);
        assert_eq!(g.blocks.len(), 4, "nothing cloned");
        assert_eq!(formation.stats.duplicated_blocks, 0);
        assert_eq!(g.blocks[3].term, MTerm::Jump(MBlockId(2)), "edge kept");
    }

    #[test]
    fn hot_while_loop_unrolls_into_a_chain() {
        // 0: entry -> 1; 1: header cond(body=2, exit=3); 2: body -> 1;
        // 3: exit. The profile says the loop iterates ~100 times per
        // entry, so the [1, 2] trace unrolls into a 4-copy chain.
        let f = func(vec![
            (vec![op(1)], MTerm::Jump(MBlockId(1))),
            (vec![op(2)], cond(1, 2, 3)),
            (vec![op(3)], MTerm::Jump(MBlockId(1))),
            (vec![op(4)], MTerm::Ret(None)),
        ]);
        let mut g = f.clone();
        let mut profile = ProfileData::new();
        profile.record("fn_t", 1);
        profile.record("t_bb1", 100);
        profile.record("t_bb2", 99);
        profile.record("t_bb3", 1);
        let formation = form_superblocks(&mut g, Some(&profile)).expect("loop unrolls");
        let k = MAX_UNROLL_FACTOR as u32;
        let chain: Vec<MBlockId> = (4..4 + 2 * k).map(MBlockId).collect();
        assert_eq!(formation.traces, vec![chain]);
        assert_eq!(formation.stats.unrolled_loops, 1);
        assert_eq!(formation.stats.unrolled_blocks, 2 * MAX_UNROLL_FACTOR);
        let mut expected_origin = vec![0, 1, 2, 3];
        expected_origin.extend([1, 2].repeat(MAX_UNROLL_FACTOR));
        assert_eq!(formation.origin, expected_origin);
        // The entry now jumps straight into the chain, each copy's back
        // edge falls into the next copy, and the last loops to the
        // first.
        assert_eq!(g.blocks[0].term, MTerm::Jump(MBlockId(4)));
        assert_eq!(g.blocks[5].term, MTerm::Jump(MBlockId(6)));
        assert_eq!(g.blocks[3 + 2 * k as usize].term, MTerm::Jump(MBlockId(4)));
        // Every copy keeps the original side exit to block 3.
        for copy in 0..k {
            let head = 4 + 2 * copy;
            assert_eq!(g.blocks[head as usize].term, cond(1, head + 1, 3));
            assert_eq!(g.blocks[head as usize].insts, f.blocks[1].insts);
        }
        // The original loop body is untouched (now unreachable).
        assert_eq!(g.blocks[1], f.blocks[1]);
        assert_eq!(g.blocks[2], f.blocks[2]);
    }

    #[test]
    fn hot_self_loop_unrolls() {
        // 1 is a single-block loop: cond(stay=1, exit=2). The static
        // heuristic weighs it 10 vs the entry's 1, which clears the
        // trip gate.
        let f = func(vec![
            (vec![op(1)], MTerm::Jump(MBlockId(1))),
            (vec![op(2)], cond(1, 1, 2)),
            (vec![op(3)], MTerm::Ret(None)),
        ]);
        let mut g = f.clone();
        let formation = form_superblocks(&mut g, None).expect("self-loop unrolls");
        let k = MAX_UNROLL_FACTOR as u32;
        let chain: Vec<MBlockId> = (3..3 + k).map(MBlockId).collect();
        assert_eq!(formation.traces, vec![chain]);
        assert_eq!(g.blocks[0].term, MTerm::Jump(MBlockId(3)));
        assert_eq!(g.blocks[3].term, cond(1, 4, 2));
        assert_eq!(g.blocks[2 + k as usize].term, cond(1, 3, 2));
        let mut expected_origin = vec![0, 1, 2];
        expected_origin.extend(std::iter::repeat_n(1, MAX_UNROLL_FACTOR));
        assert_eq!(formation.origin, expected_origin);
    }

    #[test]
    fn cold_loop_stays_rolled() {
        // Same shape as the unroll test, but the profile says the loop
        // runs ~2 trips per entry: below UNROLL_MIN_TRIPS, so the trace
        // schedules as a plain two-block superblock.
        let f = func(vec![
            (vec![op(1)], MTerm::Jump(MBlockId(1))),
            (vec![op(2)], cond(1, 2, 3)),
            (vec![op(3)], MTerm::Jump(MBlockId(1))),
            (vec![op(4)], MTerm::Ret(None)),
        ]);
        let mut g = f.clone();
        let mut profile = ProfileData::new();
        profile.record("fn_t", 10);
        profile.record("t_bb1", 20);
        profile.record("t_bb2", 15);
        profile.record("t_bb3", 10);
        let formation = form_superblocks(&mut g, Some(&profile)).expect("trace forms");
        assert_eq!(formation.traces, vec![vec![MBlockId(1), MBlockId(2)]]);
        assert_eq!(formation.stats.unrolled_loops, 0);
        assert_eq!(g.blocks.len(), 4, "nothing cloned");
    }

    #[test]
    fn no_trace_leaves_function_untouched() {
        let f = func(vec![(vec![op(1)], MTerm::Ret(None))]);
        let mut g = f.clone();
        assert!(form_superblocks(&mut g, None).is_none());
        assert_eq!(f, g);
    }

    #[test]
    fn profile_beats_static_heuristic_on_arm_choice() {
        // Diamond where static weights are flat; profile says the
        // fall-through arm is cold, so no trace grows past the split.
        let f = func(vec![
            (vec![op(1)], cond(1, 2, 1)),
            (vec![op(2)], MTerm::Jump(MBlockId(3))),
            (vec![op(3)], MTerm::Jump(MBlockId(3))),
            (vec![op(4)], MTerm::Ret(None)),
        ]);
        let mut profile = ProfileData::new();
        profile.record("fn_t", 100);
        profile.record("t_bb1", 1);
        profile.record("t_bb2", 99);
        profile.record("t_bb3", 100);
        let plan = trace_plan(&f, Some(&profile));
        assert!(
            plan.iter().all(|t| t[0] != MBlockId(0)),
            "cold fall-through must not extend the entry: {plan:?}"
        );
    }
}
