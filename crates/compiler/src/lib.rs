//! The optimising EPIC compiler (Trimaran stand-in).
//!
//! The paper adapts the Trimaran framework: "the IMPACT module is employed
//! to perform machine independent optimisations. The elcor module will
//! then statically schedule the instructions by performing dependence
//! analysis and resource conflict avoidance", driven by an HMDES machine
//! description (§4.1). This crate rebuilds that pipeline from scratch:
//!
//! 1. **IMPACT-style IR passes** ([`passes`]): function inlining, constant
//!    folding and propagation, algebraic simplification and strength
//!    reduction, copy propagation, local common-subexpression elimination
//!    and global dead-code elimination.
//! 2. **Instruction selection** ([`select`]): IR → machine IR over virtual
//!    registers and virtual predicates, fusing comparisons into
//!    compare-to-predicate + branch-on-condition pairs and matching
//!    configured custom instructions (e.g. a rotate).
//! 3. **If-conversion** ([`ifconv`]): small diamonds and triangles become
//!    straight-line predicated code — the hallmark EPIC transformation
//!    ("predicated instructions transform control dependence to data
//!    dependence", paper §2).
//! 4. **Register allocation** ([`regalloc`]): linear scan over the
//!    configured GPR and predicate files, spilling to the stack frame, with
//!    call-crossing values saved around call sites.
//! 5. **List scheduling** ([`sched`]): dependence-DAG scheduling into issue
//!    bundles against the [`epic_mdes::MachineDescription`] — unit counts,
//!    latencies, divider occupancy and the register-file port budget.
//! 6. **Emission** ([`emit`]): bundle-structured assembly text for
//!    `epic-asm`, labels and all.
//!
//! # Examples
//!
//! ```
//! use epic_config::Config;
//! use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
//! use epic_compiler::Compiler;
//!
//! let program = Program::new().function(
//!     FunctionDef::new("main", [] as [&str; 0])
//!         .body([Stmt::ret(Expr::lit(21) + Expr::lit(21))]),
//! );
//! let module = epic_ir::lower::lower(&program)?;
//! let compiled = Compiler::new(Config::default()).compile(&module)?;
//! assert!(compiled.assembly().contains("_start"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod emit;
mod error;
pub mod fuse;
pub mod ifconv;
pub mod mir;
pub mod passes;
pub mod regalloc;
pub mod sched;
pub mod select;
pub mod suggest;
pub mod superblock;
pub mod trace;

pub use driver::{
    default_verify, set_default_verify, CompileStats, CompiledProgram, Compiler, Options,
};
pub use error::CompileError;
