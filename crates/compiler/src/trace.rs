//! Per-stage pipeline snapshots consumed by the translation validator.
//!
//! When [`crate::Options::verify`] is on, [`crate::Compiler::compile_with`]
//! records the machine IR after each lowering stage so `epic-tv` can
//! statically prove every stage refines the previous one (guard
//! inheritance for if-conversion, a virtual→physical location map for
//! register allocation, dependence preservation for scheduling, and a
//! bundle-exact emission check). The snapshots are plain clones of the
//! MIR the driver already holds, so collection is cheap and the trace is
//! self-contained: a validator needs nothing but the trace, the emitted
//! assembly and the target [`epic_config::Config`].

use crate::mir::{MBlockId, MFunction};
use crate::sched::ScheduledBlock;

/// Snapshots of one function as it moves through the pipeline.
///
/// The pre-allocation stages are optional: the `_start` stub is born
/// allocated (only `post_finalize` onwards exists for it), and
/// `post_ifconv` is absent when if-conversion is disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionTrace {
    /// Function name as it appears in labels (`fn_<name>`).
    pub name: String,
    /// After instruction selection and literal-operand folding, still on
    /// virtual registers and predicates.
    pub post_select: Option<MFunction>,
    /// After if-conversion (present only when the pass ran).
    pub post_ifconv: Option<MFunction>,
    /// After custom-instruction fusion (present only when the pass ran,
    /// i.e. the config registers at least one fused custom op).
    pub post_fuse: Option<MFunction>,
    /// After register allocation: physical registers, spill code,
    /// expanded call sequences.
    pub post_regalloc: Option<MFunction>,
    /// After superblock formation, which runs on the allocated code
    /// (present only when the pass ran *and* formed at least one trace).
    pub post_superblock: Option<MFunction>,
    /// Origin witness for superblock formation: for every
    /// `post_superblock` block, the id of the `post_regalloc` block it
    /// copies (see [`crate::superblock::Formation::origin`]). Present
    /// exactly when `post_superblock` is.
    pub origin: Option<Vec<u32>>,
    /// Superblock traces as consecutive block ids (empty when formation
    /// did not run or formed nothing). The scheduler packed each as one
    /// region.
    pub traces: Vec<Vec<MBlockId>>,
    /// After control-flow finalisation: branch/PBR ops materialised,
    /// blocks laid out.
    pub post_finalize: MFunction,
    /// Block layout chosen by `finalize_control` (parallel to
    /// `scheduled`).
    pub layout: Vec<MBlockId>,
    /// The scheduled bundles, one entry per laid-out block.
    pub scheduled: Vec<ScheduledBlock>,
}

/// The whole program's pipeline trace, stub first, then the module's
/// functions in definition order (matching emission order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineTrace {
    /// Per-function stage snapshots.
    pub functions: Vec<FunctionTrace>,
}
