//! Control finalisation and assembly emission.
//!
//! After register allocation the CFG still ends in abstract terminators.
//! [`finalize_control`] lowers them onto the BTR-based branch model of the
//! datapath — "BTR stands for branch target register, which stores
//! destination addresses which are calculated in advance" (paper §3.2):
//! every transfer becomes a `PBR` that loads a branch target register and
//! a branch through it, with fall-throughs elided. The scheduler may then
//! float the `PBR` early in the block while the branch anchors the end.
//!
//! [`emit_program`] renders scheduled functions as the bundle-structured
//! assembly accepted by `epic-asm`: one instruction per line, bundles
//! terminated by `;;`, labels on their own lines, `@label` operands for
//! `PBR` targets.

use crate::mir::{MBlockId, MDest, MFunction, MInst, MOp, MSrc, MTerm};
use crate::regalloc::Abi;
use crate::sched::{block_label, ScheduledBlock};
use epic_config::Config;
use epic_isa::Opcode;

/// BTR used for taken-branch targets within a function.
pub const BRANCH_BTR: u16 = 1;
/// BTR used for the second target of a two-way transfer.
pub const BRANCH_BTR_ALT: u16 = 2;
/// BTR used for calls and returns (loaded from the link register).
pub const CALL_BTR: u16 = 0;

/// Replaces abstract terminators with real `PBR`/branch operations and
/// returns the reachable-block layout (in emission order).
///
/// Fall-through transfers emit no instructions; conditional branches pick
/// `BRCT`/`BRCF` so the fall-through successor is next in layout whenever
/// possible.
pub fn finalize_control(mfunc: &mut MFunction, abi: &Abi) -> Vec<MBlockId> {
    // Reachable blocks in layout (creation) order.
    let mut reachable = vec![false; mfunc.blocks.len()];
    let mut stack = vec![MBlockId(0)];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in mfunc.block(b).term.successors() {
            if !reachable[s.0 as usize] {
                reachable[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    let layout: Vec<MBlockId> = (0..mfunc.blocks.len() as u32)
        .map(MBlockId)
        .filter(|b| reachable[b.0 as usize])
        .collect();

    let next_of = |b: MBlockId| -> Option<MBlockId> {
        layout
            .iter()
            .position(|x| *x == b)
            .and_then(|i| layout.get(i + 1))
            .copied()
    };

    let name = mfunc.name.clone();
    let label = |b: MBlockId| block_label(&name, b.0);

    for &bi in &layout {
        let term = mfunc.blocks[bi.0 as usize].term.clone();
        let next = next_of(bi);
        let insts = &mut mfunc.blocks[bi.0 as usize].insts;
        match term {
            MTerm::Jump(t) => {
                if next != Some(t) {
                    insts.push(pbr_label(BRANCH_BTR, &label(t)));
                    insts.push(branch(Opcode::Br, BRANCH_BTR, 0));
                }
            }
            MTerm::CondJump {
                pred,
                on_true,
                on_false,
            } => {
                if next == Some(on_false) {
                    insts.push(pbr_label(BRANCH_BTR, &label(on_true)));
                    insts.push(branch(Opcode::Brct, BRANCH_BTR, pred));
                } else if next == Some(on_true) {
                    insts.push(pbr_label(BRANCH_BTR, &label(on_false)));
                    insts.push(branch(Opcode::Brcf, BRANCH_BTR, pred));
                } else {
                    insts.push(pbr_label(BRANCH_BTR, &label(on_true)));
                    insts.push(branch(Opcode::Brct, BRANCH_BTR, pred));
                    insts.push(pbr_label(BRANCH_BTR_ALT, &label(on_false)));
                    insts.push(branch(Opcode::Br, BRANCH_BTR_ALT, 0));
                }
            }
            MTerm::Ret(value) => {
                debug_assert!(
                    value.is_none(),
                    "regalloc moves return values to the ABI register"
                );
                let mut pbr = MOp::bare(Opcode::Pbr);
                pbr.dest1 = MDest::Btr(CALL_BTR);
                pbr.src1 = MSrc::Gpr(abi.link);
                insts.push(MInst::Op(pbr));
                insts.push(branch(Opcode::Br, CALL_BTR, 0));
            }
            MTerm::Halt => {
                insts.push(MInst::Op(MOp::bare(Opcode::Halt)));
            }
        }
    }
    layout
}

fn pbr_label(btr: u16, target: &str) -> MInst {
    let mut op = MOp::bare(Opcode::Pbr);
    op.dest1 = MDest::Btr(btr);
    op.src1 = MSrc::Label(target.to_owned());
    MInst::Op(op)
}

fn branch(opcode: Opcode, btr: u16, guard: u32) -> MInst {
    let mut op = MOp::bare(opcode);
    op.src1 = MSrc::Btr(btr);
    op.guard = guard;
    MInst::Op(op)
}

/// Renders one operation in assembler syntax (labels kept symbolic).
#[must_use]
pub fn format_op(op: &MOp, config: &Config) -> String {
    if let MSrc::Label(l) = &op.src1 {
        // Only PBR carries labels.
        let MDest::Btr(b) = op.dest1 else {
            unreachable!("label source outside PBR")
        };
        return format!("PBR b{b}, @{l}");
    }
    let instr = crate::sched::to_instruction(op);
    epic_isa::disassemble(&instr, config)
}

/// Renders scheduled functions into the complete assembly module.
///
/// `functions` are emitted in order; the first block of the first entry
/// is the program's entry point, also named by the `.entry` directive.
#[must_use]
pub fn emit_program(functions: &[Vec<ScheduledBlock>], config: &Config) -> String {
    let mut out = String::new();
    out.push_str("; EPIC assembly (generated)\n");
    if let Some(first) = functions.first().and_then(|f| f.first()) {
        out.push_str(&format!(".entry {}\n", first.label));
    }
    for function in functions {
        for block in function {
            out.push('\n');
            out.push_str(&block.label);
            out.push_str(":\n");
            for bundle in &block.bundles {
                for op in bundle {
                    out.push_str("    ");
                    out.push_str(&format_op(op, config));
                    out.push('\n');
                }
                out.push_str(";;\n");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::MBlock;

    fn abi() -> Abi {
        Abi::new(&Config::default()).unwrap()
    }

    fn mfunc_with(terms: Vec<MTerm>) -> MFunction {
        MFunction {
            name: "t".into(),
            params: vec![],
            blocks: terms
                .into_iter()
                .enumerate()
                .map(|(i, term)| MBlock {
                    id: MBlockId(i as u32),
                    insts: vec![],
                    term,
                })
                .collect(),
            vreg_count: 0,
            vpred_count: 1,
            allocated: true,
            frame_bytes: 0,
            makes_calls: false,
        }
    }

    #[test]
    fn fallthrough_jump_emits_nothing() {
        let mut f = mfunc_with(vec![MTerm::Jump(MBlockId(1)), MTerm::Halt]);
        let layout = finalize_control(&mut f, &abi());
        assert_eq!(layout.len(), 2);
        assert!(f.blocks[0].insts.is_empty());
        assert_eq!(f.blocks[1].insts.len(), 1); // HALT
    }

    #[test]
    fn backward_jump_emits_pbr_and_br() {
        let mut f = mfunc_with(vec![MTerm::Jump(MBlockId(0))]);
        finalize_control(&mut f, &abi());
        let ops: Vec<Opcode> = f.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .map(|o| o.opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::Pbr, Opcode::Br]);
    }

    #[test]
    fn cond_jump_prefers_fallthrough_false_arm() {
        let mut f = mfunc_with(vec![
            MTerm::CondJump {
                pred: 1,
                on_true: MBlockId(2),
                on_false: MBlockId(1),
            },
            MTerm::Halt,
            MTerm::Halt,
        ]);
        finalize_control(&mut f, &abi());
        let ops: Vec<Opcode> = f.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .map(|o| o.opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::Pbr, Opcode::Brct]);
    }

    #[test]
    fn cond_jump_inverts_for_true_fallthrough() {
        let mut f = mfunc_with(vec![
            MTerm::CondJump {
                pred: 1,
                on_true: MBlockId(1),
                on_false: MBlockId(2),
            },
            MTerm::Halt,
            MTerm::Halt,
        ]);
        finalize_control(&mut f, &abi());
        let ops: Vec<Opcode> = f.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .map(|o| o.opcode)
            .collect();
        assert_eq!(ops, vec![Opcode::Pbr, Opcode::Brcf]);
    }

    #[test]
    fn unreachable_blocks_are_dropped_from_layout() {
        let mut f = mfunc_with(vec![MTerm::Halt, MTerm::Halt]);
        let layout = finalize_control(&mut f, &abi());
        assert_eq!(layout, vec![MBlockId(0)]);
    }

    #[test]
    fn ret_branches_through_the_link_register() {
        let mut f = mfunc_with(vec![MTerm::Ret(None)]);
        finalize_control(&mut f, &abi());
        let pbr = f.blocks[0].insts[0].as_op().unwrap();
        assert_eq!(pbr.opcode, Opcode::Pbr);
        assert_eq!(pbr.src1, MSrc::Gpr(abi().link));
    }
}
