//! Compiler error type.

use std::error::Error;
use std::fmt;

/// Error raised during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The compiler targets 32-bit datapaths only.
    UnsupportedDatapathWidth {
        /// The configured width.
        width: u32,
    },
    /// A function needs more arguments than the calling convention passes
    /// in registers.
    TooManyArguments {
        /// The offending function.
        function: String,
        /// Its parameter count.
        count: usize,
        /// Registers available for arguments.
        limit: usize,
    },
    /// The predicate register file is too small for the function's
    /// control structure (predicates cannot be spilled).
    OutOfPredicates {
        /// The function being allocated.
        function: String,
        /// Predicate registers needed simultaneously.
        needed: usize,
        /// Predicate registers available.
        available: usize,
    },
    /// The configured GPR file is too small to carry the calling
    /// convention and scratch registers.
    RegisterFileTooSmall {
        /// Configured number of GPRs.
        num_gprs: usize,
        /// Minimum the backend needs.
        minimum: usize,
    },
    /// An operation requires an ALU feature the configuration excludes and
    /// no expansion exists.
    MissingFeature {
        /// A description of the operation.
        operation: String,
        /// The missing feature's name.
        feature: String,
    },
    /// Internal invariant violation — a compiler bug, reported rather than
    /// panicking so batch exploration keeps running.
    Internal {
        /// What went wrong.
        message: String,
    },
    /// The static verifier (`epic-verify`) rejected the scheduled
    /// output — the emitted program would stall or misbehave on the
    /// configured machine. Always a compiler bug; disable with
    /// [`Options::verify`](crate::Options) only to inspect the bad code.
    Verification {
        /// Error diagnostics in the verifier's rendered form.
        report: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedDatapathWidth { width } => {
                write!(f, "the compiler targets 32-bit datapaths, configuration has {width}")
            }
            CompileError::TooManyArguments {
                function,
                count,
                limit,
            } => write!(
                f,
                "function `{function}` has {count} parameters; the calling convention passes at most {limit} in registers"
            ),
            CompileError::OutOfPredicates {
                function,
                needed,
                available,
            } => write!(
                f,
                "function `{function}` needs {needed} live predicates but only {available} exist"
            ),
            CompileError::RegisterFileTooSmall { num_gprs, minimum } => write!(
                f,
                "configuration has {num_gprs} GPRs; the backend needs at least {minimum}"
            ),
            CompileError::MissingFeature { operation, feature } => {
                write!(f, "{operation} requires the {feature} ALU feature")
            }
            CompileError::Internal { message } => write!(f, "internal compiler error: {message}"),
            CompileError::Verification { report } => {
                write!(f, "static verification of the scheduled output failed:\n{report}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
