//! Register allocation: virtual registers → the configured register files.
//!
//! A linear-scan allocator maps virtual GPRs onto the allocatable portion
//! of the configured general-purpose register file, spilling to the stack
//! frame when pressure exceeds supply, and maps virtual predicates onto
//! the predicate file (predicates cannot be spilled; exceeding the file is
//! a configuration error the caller surfaces). The pass also expands call
//! pseudo-instructions into the calling convention and inserts prologue
//! and epilogue code, leaving a function containing only real, physical
//! operations ready for scheduling.
//!
//! # Calling convention
//!
//! * `r1` — return value (`Abi::ret`)
//! * `r2..r9` — arguments (`Abi::args`)
//! * `rN-3` — link register written by `BRL`
//! * `rN-2` — stack pointer (grows down, word-aligned)
//! * `rN-1` — reserved scratch
//! * `rN-6..rN-4` — spill temporaries
//! * everything else (minus `r0`, kept free as a conventional zero-ish
//!   anchor for debugging) — allocatable
//!
//! All registers are caller-saved: live values are saved around each call
//! site by this pass. BTR discipline: `b0` is used for calls, `b1`/`b2`
//! for intra-function branches (assigned at control finalisation).

use crate::error::CompileError;
use crate::mir::{MDest, MFunction, MInst, MOp, MSrc, MTerm};
use epic_config::Config;
use epic_isa::Opcode;
use std::collections::{HashMap, HashSet, VecDeque};

/// The register-usage convention derived from a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abi {
    /// Return-value register.
    pub ret: u32,
    /// Argument registers, in order.
    pub args: Vec<u32>,
    /// Link register (`BRL` destination).
    pub link: u32,
    /// Stack pointer.
    pub sp: u32,
    /// Reserved scratch register.
    pub scratch: u32,
    /// Spill temporaries.
    pub spill_temps: [u32; 3],
    /// Registers the allocator may hand out.
    pub allocatable: Vec<u32>,
}

impl Abi {
    /// Minimum GPR count the backend supports.
    pub const MIN_GPRS: usize = 24;

    /// Derives the convention from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::RegisterFileTooSmall`] below
    /// [`Abi::MIN_GPRS`] registers.
    pub fn new(config: &Config) -> Result<Self, CompileError> {
        let n = config.num_gprs() as u32;
        if (n as usize) < Self::MIN_GPRS {
            return Err(CompileError::RegisterFileTooSmall {
                num_gprs: config.num_gprs(),
                minimum: Self::MIN_GPRS,
            });
        }
        let ret = 1;
        let args: Vec<u32> = (2..10).collect();
        let scratch = n - 1;
        let sp = n - 2;
        let link = n - 3;
        let spill_temps = [n - 6, n - 5, n - 4];
        let reserved: HashSet<u32> = [0, ret, scratch, sp, link]
            .into_iter()
            .chain(args.iter().copied())
            .chain(spill_temps)
            .collect();
        let allocatable: Vec<u32> = (1..n).filter(|r| !reserved.contains(r)).collect();
        Ok(Abi {
            ret,
            args,
            link,
            sp,
            scratch,
            spill_temps,
            allocatable,
        })
    }
}

/// Statistics reported by [`allocate`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegAllocStats {
    /// Virtual GPRs spilled to the frame.
    pub spilled: usize,
    /// Registers saved across call sites (total across sites).
    pub call_saves: usize,
    /// Final frame size in bytes.
    pub frame_bytes: u32,
}

/// Runs register allocation, call expansion and prologue/epilogue
/// insertion on one machine function.
///
/// # Errors
///
/// Returns [`CompileError::OutOfPredicates`] when the predicate file is
/// too small, [`CompileError::TooManyArguments`] for oversized signatures.
pub fn allocate(
    mfunc: &mut MFunction,
    abi: &Abi,
    config: &Config,
) -> Result<RegAllocStats, CompileError> {
    if mfunc.params.len() > abi.args.len() {
        return Err(CompileError::TooManyArguments {
            function: mfunc.name.clone(),
            count: mfunc.params.len(),
            limit: abi.args.len(),
        });
    }

    let positions = Positions::new(mfunc);
    let gpr_live = Liveness::compute(mfunc, Space::Gpr);
    let pred_live = Liveness::compute(mfunc, Space::Pred);
    let gpr_intervals = intervals(mfunc, &positions, &gpr_live, Space::Gpr);
    let pred_intervals = intervals(mfunc, &positions, &pred_live, Space::Pred);

    // --- predicate assignment (no spilling) ---------------------------
    let pred_phys = config.num_pred_regs() as u32 - 1;
    let pred_assignment = linear_scan(&pred_intervals, pred_phys, |_| true).map_err(|needed| {
        CompileError::OutOfPredicates {
            function: mfunc.name.clone(),
            needed,
            available: pred_phys as usize,
        }
    })?;
    let pred_map: HashMap<u32, u32> = pred_assignment
        .assigned
        .iter()
        .map(|(v, idx)| (*v, idx + 1)) // physical predicates start at p1
        .collect();

    // --- GPR assignment with spilling ---------------------------------
    let mut spill_slots: HashMap<u32, u32> = HashMap::new();
    let phys_count = abi.allocatable.len() as u32;
    let gpr_assignment = linear_scan_with_spill(&gpr_intervals, phys_count);
    let mut next_slot: u32 = u32::from(mfunc.makes_calls); // slot 0 = link
    for v in &gpr_assignment.spilled {
        spill_slots.insert(*v, next_slot);
        next_slot += 1;
    }
    let gpr_map: HashMap<u32, u32> = gpr_assignment
        .assigned
        .iter()
        .map(|(v, idx)| (*v, abi.allocatable[*idx as usize]))
        .collect();

    // Call-save slots: one per physical register, allocated lazily.
    let mut save_slots: HashMap<u32, u32> = HashMap::new();

    let stats_spilled = gpr_assignment.spilled.len();
    let mut call_saves = 0;

    // --- rewrite -------------------------------------------------------
    let loc = |v: u32| -> Loc {
        if let Some(p) = gpr_map.get(&v) {
            Loc::Phys(*p)
        } else if let Some(s) = spill_slots.get(&v) {
            Loc::Slot(*s)
        } else {
            // Never-used register (dead def removed earlier); park it in a
            // spill temp so the write is harmless.
            Loc::Phys(abi.spill_temps[0])
        }
    };

    for bi in 0..mfunc.blocks.len() {
        let insts = std::mem::take(&mut mfunc.blocks[bi].insts);
        let mut out: Vec<MInst> = Vec::with_capacity(insts.len() + 4);
        for (ii, inst) in insts.into_iter().enumerate() {
            let pos = positions.of(bi, ii);
            match inst {
                MInst::Op(mut op) => {
                    let mut temp_cursor = 0usize;
                    let mut post_store: Option<(u32, u32, u32)> = None; // (phys, slot, guard)

                    // Reloads for spilled sources.
                    let mut fix_src = |src: &mut MSrc, out: &mut Vec<MInst>| {
                        if let MSrc::Gpr(v) = src {
                            match loc(*v) {
                                Loc::Phys(p) => *src = MSrc::Gpr(p),
                                Loc::Slot(s) => {
                                    let t = abi.spill_temps[temp_cursor];
                                    temp_cursor += 1;
                                    out.push(reload(t, abi.sp, s));
                                    *src = MSrc::Gpr(t);
                                }
                            }
                        }
                    };
                    fix_src(&mut op.src1, &mut out);
                    fix_src(&mut op.src2, &mut out);
                    if let Some(v) = op.store_value {
                        match loc(v) {
                            Loc::Phys(p) => op.store_value = Some(p),
                            Loc::Slot(s) => {
                                let t = abi.spill_temps[temp_cursor];
                                out.push(reload(t, abi.sp, s));
                                op.store_value = Some(t);
                            }
                        }
                    }
                    // Destination.
                    if let MDest::Gpr(v) = op.dest1 {
                        match loc(v) {
                            Loc::Phys(p) => op.dest1 = MDest::Gpr(p),
                            Loc::Slot(s) => {
                                let t = abi.spill_temps[2];
                                op.dest1 = MDest::Gpr(t);
                                post_store = Some((t, s, op.guard));
                            }
                        }
                    }
                    // Predicates.
                    let map_pred = |p: u32| -> u32 {
                        if p == 0 {
                            0
                        } else {
                            *pred_map.get(&p).expect("assigned predicate")
                        }
                    };
                    if let MDest::Pred(p) = op.dest1 {
                        op.dest1 = MDest::Pred(map_pred(p));
                    }
                    if let MDest::Pred(p) = op.dest2 {
                        op.dest2 = MDest::Pred(map_pred(p));
                    }
                    if let MSrc::Pred(p) = op.src1 {
                        op.src1 = MSrc::Pred(map_pred(p));
                    }
                    op.guard = map_pred(op.guard);
                    let guard_after = op.guard;
                    out.push(MInst::Op(op));
                    if let Some((t, s, _)) = post_store {
                        let mut sw = spill(t, abi.sp, s);
                        if let MInst::Op(op) = &mut sw {
                            op.guard = guard_after;
                        }
                        out.push(sw);
                    }
                }
                MInst::Call { callee, args, dest } => {
                    call_saves += expand_call(
                        &mut out,
                        abi,
                        &callee,
                        &args,
                        dest,
                        pos,
                        &gpr_intervals,
                        &gpr_map,
                        &mut save_slots,
                        &mut next_slot,
                        &loc,
                    );
                }
            }
        }
        mfunc.blocks[bi].insts = out;

        // Terminator predicates.
        if let MTerm::CondJump { pred, .. } = &mut mfunc.blocks[bi].term {
            *pred = *pred_map.get(pred).expect("assigned branch predicate");
        }
    }

    // --- frame, prologue, epilogue -------------------------------------
    let frame_bytes = next_slot * 4;
    let frame_bytes = frame_bytes.div_ceil(8) * 8;
    mfunc.frame_bytes = frame_bytes;

    // Prologue (entry block front): move SP, save link, bind parameters.
    let mut prologue: Vec<MInst> = Vec::new();
    if frame_bytes > 0 {
        prologue.push(add_imm(abi.sp, abi.sp, -i64::from(frame_bytes)));
    }
    if mfunc.makes_calls {
        prologue.push(spill(abi.link, abi.sp, 0));
    }
    let params = mfunc.params.clone();
    for (i, p) in params.iter().enumerate() {
        match loc(*p) {
            Loc::Phys(phys) => {
                if phys != abi.args[i] {
                    prologue.push(move_reg(phys, abi.args[i]));
                }
            }
            Loc::Slot(s) => prologue.push(spill(abi.args[i], abi.sp, s)),
        }
    }
    let entry = &mut mfunc.blocks[0].insts;
    for inst in prologue.into_iter().rev() {
        entry.insert(0, inst);
    }

    // Epilogues: return value into `ret`, restore link, pop frame.
    for block in &mut mfunc.blocks {
        if let MTerm::Ret(value) = block.term.clone() {
            if let Some(v) = value {
                match loc(v) {
                    Loc::Phys(p) => {
                        if p != abi.ret {
                            block.insts.push(move_reg(abi.ret, p));
                        }
                    }
                    Loc::Slot(s) => block.insts.push(reload(abi.ret, abi.sp, s)),
                }
            }
            if mfunc.makes_calls {
                block.insts.push(reload(abi.link, abi.sp, 0));
            }
            if frame_bytes > 0 {
                block
                    .insts
                    .push(add_imm(abi.sp, abi.sp, i64::from(frame_bytes)));
            }
            block.term = MTerm::Ret(None);
        }
    }

    mfunc.allocated = true;
    Ok(RegAllocStats {
        spilled: stats_spilled,
        call_saves,
        frame_bytes,
    })
}

#[allow(clippy::too_many_arguments)]
fn expand_call(
    out: &mut Vec<MInst>,
    abi: &Abi,
    callee: &str,
    args: &[u32],
    dest: Option<u32>,
    pos: u32,
    intervals: &[Interval],
    gpr_map: &HashMap<u32, u32>,
    save_slots: &mut HashMap<u32, u32>,
    next_slot: &mut u32,
    loc: &dyn Fn(u32) -> Loc,
) -> usize {
    // Physical registers holding values live beyond the call.
    let mut to_save: Vec<u32> = intervals
        .iter()
        .filter(|iv| iv.start < pos && iv.end > pos + 1)
        .filter_map(|iv| gpr_map.get(&iv.vreg).copied())
        .collect();
    to_save.sort_unstable();
    to_save.dedup();
    let saves = to_save.len();

    for phys in &to_save {
        let slot = *save_slots.entry(*phys).or_insert_with(|| {
            let s = *next_slot;
            *next_slot += 1;
            s
        });
        out.push(spill(*phys, abi.sp, slot));
    }
    // Argument moves (arg registers are never allocatable, so sources
    // cannot be clobbered by earlier argument moves).
    for (i, a) in args.iter().enumerate() {
        match loc(*a) {
            Loc::Phys(p) => out.push(move_reg(abi.args[i], p)),
            Loc::Slot(s) => out.push(reload(abi.args[i], abi.sp, s)),
        }
    }
    // PBR b0, @callee ; BRL link, b0
    let mut pbr = MOp::bare(Opcode::Pbr);
    pbr.dest1 = MDest::Btr(0);
    pbr.src1 = MSrc::Label(format!("fn_{callee}"));
    out.push(MInst::Op(pbr));
    let mut brl = MOp::bare(Opcode::Brl);
    brl.dest1 = MDest::Gpr(abi.link);
    brl.src1 = MSrc::Btr(0);
    out.push(MInst::Op(brl));
    // Return value.
    if let Some(d) = dest {
        match loc(d) {
            Loc::Phys(p) => {
                if p != abi.ret {
                    out.push(move_reg(p, abi.ret));
                }
            }
            Loc::Slot(s) => out.push(spill(abi.ret, abi.sp, s)),
        }
    }
    // Restores.
    for phys in &to_save {
        out.push(reload(*phys, abi.sp, save_slots[phys]));
    }
    saves
}

fn reload(dest: u32, sp: u32, slot: u32) -> MInst {
    let mut op = MOp::bare(Opcode::Lw);
    op.dest1 = MDest::Gpr(dest);
    op.src1 = MSrc::Gpr(sp);
    op.src2 = MSrc::Lit(i64::from(slot * 4));
    MInst::Op(op)
}

fn spill(src: u32, sp: u32, slot: u32) -> MInst {
    let mut op = MOp::bare(Opcode::Sw);
    op.store_value = Some(src);
    op.src1 = MSrc::Gpr(sp);
    op.src2 = MSrc::Lit(i64::from(slot * 4));
    MInst::Op(op)
}

fn move_reg(dest: u32, src: u32) -> MInst {
    let mut op = MOp::bare(Opcode::Move);
    op.dest1 = MDest::Gpr(dest);
    op.src1 = MSrc::Gpr(src);
    MInst::Op(op)
}

fn add_imm(dest: u32, src: u32, imm: i64) -> MInst {
    let mut op = MOp::bare(Opcode::Add);
    op.dest1 = MDest::Gpr(dest);
    op.src1 = MSrc::Gpr(src);
    op.src2 = MSrc::Lit(imm);
    MInst::Op(op)
}

#[derive(Debug, Clone, Copy)]
enum Loc {
    Phys(u32),
    Slot(u32),
}

// -----------------------------------------------------------------------
// Liveness and intervals
// -----------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    Gpr,
    Pred,
}

fn inst_uses(inst: &MInst, space: Space) -> Vec<u32> {
    match space {
        Space::Gpr => inst.gpr_uses(),
        Space::Pred => inst.pred_uses(),
    }
}

fn inst_defs(inst: &MInst, space: Space) -> Vec<u32> {
    match space {
        Space::Gpr => inst.gpr_def().into_iter().collect(),
        Space::Pred => inst.pred_defs(),
    }
}

fn term_uses(term: &MTerm, space: Space) -> Vec<u32> {
    match (space, term) {
        (Space::Gpr, MTerm::Ret(Some(v))) => vec![*v],
        (Space::Pred, MTerm::CondJump { pred, .. }) => vec![*pred],
        _ => vec![],
    }
}

struct Liveness {
    live_in: Vec<HashSet<u32>>,
    live_out: Vec<HashSet<u32>>,
}

impl Liveness {
    fn compute(mfunc: &MFunction, space: Space) -> Liveness {
        let n = mfunc.blocks.len();
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        loop {
            let mut changed = false;
            for bi in (0..n).rev() {
                let block = &mfunc.blocks[bi];
                let mut out_set: HashSet<u32> = HashSet::new();
                for succ in block.term.successors() {
                    out_set.extend(live_in[succ.0 as usize].iter().copied());
                }
                let mut live = out_set.clone();
                for u in term_uses(&block.term, space) {
                    live.insert(u);
                }
                for inst in block.insts.iter().rev() {
                    // Unconditional defs kill; conditional defs keep the
                    // old value alive (the write may be squashed).
                    for d in inst_defs(inst, space) {
                        if !inst.def_is_conditional() {
                            live.remove(&d);
                        }
                    }
                    for u in inst_uses(inst, space) {
                        live.insert(u);
                    }
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
                if out_set != live_out[bi] {
                    live_out[bi] = out_set;
                    changed = true;
                }
            }
            if !changed {
                return Liveness { live_in, live_out };
            }
        }
    }
}

/// Maps (block, inst) to linear positions; each instruction spans two
/// position units (use point, def point), and each block has entry/exit
/// sentinels so live-in/out extend intervals across the whole block.
struct Positions {
    block_start: Vec<u32>,
    block_end: Vec<u32>,
}

impl Positions {
    fn new(mfunc: &MFunction) -> Positions {
        let mut block_start = Vec::with_capacity(mfunc.blocks.len());
        let mut block_end = Vec::with_capacity(mfunc.blocks.len());
        let mut cursor = 0u32;
        for block in &mfunc.blocks {
            block_start.push(cursor);
            cursor += 2 * block.insts.len() as u32 + 2; // +2 for the terminator
            block_end.push(cursor);
        }
        Positions {
            block_start,
            block_end,
        }
    }

    fn of(&self, block: usize, inst: usize) -> u32 {
        self.block_start[block] + 2 * inst as u32
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    vreg: u32,
    start: u32,
    end: u32,
}

fn intervals(
    mfunc: &MFunction,
    positions: &Positions,
    live: &Liveness,
    space: Space,
) -> Vec<Interval> {
    let mut map: HashMap<u32, (u32, u32)> = HashMap::new();
    let mut extend = |v: u32, p: u32| {
        let entry = map.entry(v).or_insert((p, p));
        entry.0 = entry.0.min(p);
        entry.1 = entry.1.max(p);
    };
    // Parameters are defined at function entry.
    if space == Space::Gpr {
        for p in &mfunc.params {
            extend(*p, 0);
        }
    }
    for (bi, block) in mfunc.blocks.iter().enumerate() {
        for v in &live.live_in[bi] {
            extend(*v, positions.block_start[bi]);
        }
        for v in &live.live_out[bi] {
            extend(*v, positions.block_end[bi]);
        }
        for (ii, inst) in block.insts.iter().enumerate() {
            let pos = positions.of(bi, ii);
            for u in inst_uses(inst, space) {
                extend(u, pos);
            }
            for d in inst_defs(inst, space) {
                extend(d, pos + 1);
            }
        }
        let term_pos = positions.block_end[bi] - 1;
        for u in term_uses(&block.term, space) {
            extend(u, term_pos);
        }
    }
    let mut out: Vec<Interval> = map
        .into_iter()
        .map(|(vreg, (start, end))| Interval { vreg, start, end })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.vreg));
    out
}

// -----------------------------------------------------------------------
// Linear scan
// -----------------------------------------------------------------------

struct Assignment {
    assigned: HashMap<u32, u32>, // vreg -> pool index
    spilled: Vec<u32>,
}

/// Scan without spilling; `Err(peak)` when the pool is exceeded.
fn linear_scan(
    intervals: &[Interval],
    pool_size: u32,
    _filter: impl Fn(u32) -> bool,
) -> Result<Assignment, usize> {
    let mut free: VecDeque<u32> = (0..pool_size).collect();
    let mut active: Vec<(u32, u32, u32)> = Vec::new(); // (end, pool idx, vreg)
    let mut assigned = HashMap::new();
    let mut peak = 0usize;
    for iv in intervals {
        active.retain(|(end, idx, _)| {
            if *end < iv.start {
                free.push_back(*idx);
                false
            } else {
                true
            }
        });
        let Some(idx) = free.pop_front() else {
            return Err(peak.max(active.len() + 1));
        };
        assigned.insert(iv.vreg, idx);
        active.push((iv.end, idx, iv.vreg));
        peak = peak.max(active.len());
    }
    Ok(Assignment {
        assigned,
        spilled: Vec::new(),
    })
}

/// Scan with furthest-end spilling.
fn linear_scan_with_spill(intervals: &[Interval], pool_size: u32) -> Assignment {
    let mut free: VecDeque<u32> = (0..pool_size).collect();
    let mut active: Vec<(u32, u32, u32)> = Vec::new(); // (end, pool idx, vreg)
    let mut assigned: HashMap<u32, u32> = HashMap::new();
    let mut spilled: Vec<u32> = Vec::new();
    for iv in intervals {
        active.retain(|(end, idx, _)| {
            if *end < iv.start {
                free.push_back(*idx);
                false
            } else {
                true
            }
        });
        if let Some(idx) = free.pop_front() {
            assigned.insert(iv.vreg, idx);
            active.push((iv.end, idx, iv.vreg));
        } else {
            // Spill the interval that ends furthest away.
            let (victim_pos, &(v_end, v_idx, v_vreg)) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (end, _, _))| *end)
                .expect("active is nonempty when the pool is full");
            if v_end > iv.end {
                assigned.remove(&v_vreg);
                spilled.push(v_vreg);
                active.swap_remove(victim_pos);
                assigned.insert(iv.vreg, v_idx);
                active.push((iv.end, v_idx, iv.vreg));
            } else {
                spilled.push(iv.vreg);
            }
        }
    }
    Assignment { assigned, spilled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifconv::if_convert;
    use crate::select::{fold_literal_operands, select};
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn alloc_one(f: FunctionDef, config: &Config) -> (MFunction, RegAllocStats) {
        let m = lower::lower(&Program::new().function(f)).unwrap();
        let mut mf = select(&m.functions[0], config).unwrap();
        fold_literal_operands(&mut mf, config);
        if_convert(&mut mf);
        let abi = Abi::new(config).unwrap();
        let stats = allocate(&mut mf, &abi, config).unwrap();
        (mf, stats)
    }

    fn all_phys_in_range(mf: &MFunction, config: &Config) {
        let n = config.num_gprs() as u32;
        for block in &mf.blocks {
            for inst in &block.insts {
                if let MInst::Op(op) = inst {
                    for r in op.gpr_uses() {
                        assert!(r < n, "{op}: r{r} out of range");
                    }
                    if let Some(r) = op.gpr_def() {
                        assert!(r < n);
                    }
                    for p in op.pred_uses().into_iter().chain(op.pred_defs()) {
                        assert!((p as usize) < config.num_pred_regs());
                    }
                } else {
                    panic!("call pseudo survived allocation");
                }
            }
        }
    }

    #[test]
    fn simple_function_allocates_without_spills() {
        let config = Config::default();
        let f = FunctionDef::new("f", ["a", "b"])
            .body([Stmt::ret(Expr::var("a") * Expr::var("b") + Expr::lit(1))]);
        let (mf, stats) = alloc_one(f, &config);
        assert!(mf.allocated);
        assert_eq!(stats.spilled, 0);
        all_phys_in_range(&mf, &config);
    }

    #[test]
    fn high_pressure_spills_and_stays_in_range() {
        // Sum of 60 distinct live values forces spilling on a 24-GPR file.
        let config = Config::builder().num_gprs(24).build().unwrap();
        let mut body = Vec::new();
        for i in 0..60 {
            body.push(Stmt::let_(format!("x{i}"), Expr::var("a") + Expr::lit(i)));
        }
        let mut sum = Expr::var("x0");
        for i in 1..60 {
            sum = sum + Expr::var(format!("x{i}"));
        }
        body.push(Stmt::ret(sum));
        let f = FunctionDef::new("f", ["a"]).body(body);
        let (mf, stats) = alloc_one(f, &config);
        assert!(stats.spilled > 0, "expected spills under pressure");
        assert!(stats.frame_bytes > 0);
        all_phys_in_range(&mf, &config);
    }

    #[test]
    fn calls_are_expanded_into_the_convention() {
        let config = Config::default();
        let g = FunctionDef::new("g", ["x"]).body([Stmt::ret(Expr::var("x") + Expr::lit(1))]);
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::let_("k", Expr::var("x") * Expr::lit(3)),
            Stmt::let_("r", Expr::call("g", [Expr::var("k")])),
            Stmt::ret(Expr::var("r") + Expr::var("k")),
        ]);
        let m = lower::lower(&Program::new().function(g).function(f)).unwrap();
        let mut mf = select(m.function("f").unwrap(), &config).unwrap();
        let abi = Abi::new(&config).unwrap();
        let stats = allocate(&mut mf, &abi, &config).unwrap();
        // k is live across the call and must be saved.
        assert!(stats.call_saves >= 1);
        let ops: Vec<&MOp> = mf
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(MInst::as_op)
            .collect();
        assert!(ops.iter().any(|o| o.opcode == Opcode::Brl));
        assert!(ops
            .iter()
            .any(|o| matches!(&o.src1, MSrc::Label(l) if l == "fn_g")));
        // Prologue saves the link register because f makes calls.
        assert!(mf.frame_bytes >= 4);
        all_phys_in_range(&mf, &config);
    }

    #[test]
    fn too_many_parameters_is_an_error() {
        let config = Config::default();
        let names: Vec<String> = (0..9).map(|i| format!("p{i}")).collect();
        let f = FunctionDef::new("f", names).body([Stmt::ret(Expr::var("p0"))]);
        let m = lower::lower(&Program::new().function(f)).unwrap();
        let mut mf = select(&m.functions[0], &config).unwrap();
        let abi = Abi::new(&config).unwrap();
        assert!(matches!(
            allocate(&mut mf, &abi, &config),
            Err(CompileError::TooManyArguments { .. })
        ));
    }

    #[test]
    fn tiny_register_file_is_rejected() {
        let config = Config::builder().num_gprs(16).build().unwrap();
        assert!(matches!(
            Abi::new(&config),
            Err(CompileError::RegisterFileTooSmall { .. })
        ));
    }

    #[test]
    fn predicated_code_keeps_both_writes() {
        // After if-conversion both arms write r; allocation must keep the
        // conditional defs and their guards.
        let config = Config::default();
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::let_("r", Expr::lit(0)),
            Stmt::if_else(
                Expr::var("x").gt_s(Expr::lit(0)),
                [Stmt::assign("r", Expr::lit(1))],
                [Stmt::assign("r", Expr::lit(2))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let (mf, _) = alloc_one(f, &config);
        let guarded: Vec<&MOp> = mf
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(MInst::as_op)
            .filter(|o| o.guard != 0)
            .collect();
        assert!(guarded.len() >= 2);
        all_phys_in_range(&mf, &config);
    }
}
