//! Automatic custom-instruction candidate discovery.
//!
//! §6 of the paper lists "supporting automatic generation of custom
//! instructions" as future work. This module implements the analysis half
//! of that loop: it scans a module's IR for operation patterns that a
//! single customised ALU operation could replace, counts their static
//! occurrences and reports the base-ISA operations each would save. The
//! rotate suggestion is directly actionable — registering a
//! [`CustomSemantics::RotateRight`] op makes instruction selection use it
//! (see [`crate::select`]); the others quantify the opportunity for a
//! designer extending the matcher.

use crate::mir::MBlockId;
use crate::superblock::{trace_plan, ProfileData};
use crate::trace::FunctionTrace;
use epic_config::CustomSemantics;
use epic_ir::{BinOp, IrOp, Module, UnOp, VReg};
use std::collections::HashMap;

/// One custom-instruction candidate found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// The semantics a customised ALU would need.
    pub semantics: CustomSemantics,
    /// Static occurrences of the pattern across the module.
    pub occurrences: usize,
    /// Base-ISA operations replaced per occurrence.
    pub ops_saved_per_use: usize,
}

impl Suggestion {
    /// Total static operations saved if the custom op is adopted.
    #[must_use]
    pub fn total_ops_saved(&self) -> usize {
        self.occurrences * self.ops_saved_per_use
    }
}

/// A superblock-scheduling hint for one emitted block: the hot trace
/// the formation planner grows through it. `epic-prof` attaches this to
/// its PRF001 diagnostic so a branch/latency-shaped hot block names the
/// region that absorbs (or would absorb) its stalls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperblockHint {
    /// Emitted labels of the trace members, head first (pre-formation
    /// blocks; an unrolled chain reports each origin block once).
    pub trace: Vec<String>,
    /// Whether this compile already scheduled the trace as one region.
    /// `false` means the trace is a *candidate* — e.g. the machine is
    /// single-issue, where formation is off.
    pub applied: bool,
}

impl SuperblockHint {
    /// The trace as a printable `a -> b -> c` path.
    #[must_use]
    pub fn path(&self) -> String {
        self.trace.join(" -> ")
    }
}

/// The superblock trace containing the emitted block `label`, from one
/// function's pipeline snapshots.
///
/// The label names a *post-finalise* block (the ids emission uses);
/// when formation cloned it, the origin witness maps it back to the
/// pre-formation block the planner reasons about. If the compile formed
/// a trace through that block the actual trace is reported
/// (`applied = true`); otherwise the planner re-runs on the
/// pre-formation MIR — with `profile` weights when given, the static
/// loop heuristic when not — and reports what formation *would* select
/// (`applied = false`). Returns `None` when the block joins no trace or
/// the compile recorded no snapshots.
#[must_use]
pub fn superblock_hint(
    func: &FunctionTrace,
    label: &str,
    profile: Option<&ProfileData>,
) -> Option<SuperblockHint> {
    let pre = func.post_regalloc.as_ref().or(func.post_select.as_ref())?;
    // Match the label against this function's emitted block names and
    // map clones back through the origin witness.
    let block = (0..func.post_finalize.blocks.len() as u32)
        .find(|&b| crate::sched::block_label(&func.name, b) == label)?;
    let origin_of = |b: MBlockId| -> MBlockId {
        func.origin
            .as_ref()
            .and_then(|o| o.get(b.0 as usize).copied())
            .map_or(b, MBlockId)
    };
    let target = origin_of(MBlockId(block));

    // Prefer the trace the compile actually formed.
    for trace in &func.traces {
        if trace.iter().any(|&b| origin_of(b) == target) {
            let mut labels = Vec::new();
            for &b in trace {
                let l = crate::sched::block_label(&func.name, origin_of(b).0);
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
            return Some(SuperblockHint {
                trace: labels,
                applied: true,
            });
        }
    }
    // Otherwise name what the planner would select.
    let plan = trace_plan(pre, profile);
    let trace = plan.iter().find(|t| t.contains(&target))?;
    Some(SuperblockHint {
        trace: trace
            .iter()
            .map(|b| crate::sched::block_label(&func.name, b.0))
            .collect(),
        applied: false,
    })
}

/// Scans a module for custom-instruction candidates, most valuable first.
///
/// Patterns recognised:
///
/// * **rotate right** — an IR `rotr`, which the base ISA expands into a
///   4-operation shift/or sequence (3 ops saved per use);
/// * **and-complement** — `a & !b` through a single-use `not`
///   (1 op saved, HPL-PD's `ANDCM`);
/// * **rounded average** — `(a + b + 1) >> 1` (2 ops saved).
#[must_use]
pub fn suggest_custom_ops(module: &Module) -> Vec<Suggestion> {
    let mut counts: HashMap<CustomSemantics, usize> = HashMap::new();

    for func in &module.functions {
        let uses = epic_ir::analysis::use_counts(func);
        for block in &func.blocks {
            // Block-local last definition of each vreg.
            let mut def_of: HashMap<VReg, &IrOp> = HashMap::new();
            for op in &block.ops {
                match op {
                    IrOp::Bin {
                        op: BinOp::Rotr, ..
                    } => {
                        *counts.entry(CustomSemantics::RotateRight).or_insert(0) += 1;
                    }
                    IrOp::Bin {
                        op: BinOp::And,
                        rhs,
                        ..
                    } => {
                        if let Some(IrOp::Un { op: UnOp::Not, .. }) = def_of.get(rhs) {
                            if uses.get(rhs).copied().unwrap_or(0) == 1 {
                                *counts.entry(CustomSemantics::AndComplement).or_insert(0) += 1;
                            }
                        }
                    }
                    IrOp::Bin {
                        op: BinOp::Shr | BinOp::Sra,
                        lhs,
                        rhs,
                        ..
                    } => {
                        // (a + b + 1) >> 1 with both intermediates single-use.
                        let shift_is_one =
                            matches!(def_of.get(rhs), Some(IrOp::Const { value: 1, .. }));
                        if shift_is_one && uses.get(lhs).copied().unwrap_or(0) == 1 {
                            if let Some(IrOp::Bin {
                                op: BinOp::Add,
                                lhs: sum_l,
                                rhs: sum_r,
                                ..
                            }) = def_of.get(lhs)
                            {
                                let plus_one = |v: &VReg| {
                                    matches!(def_of.get(v), Some(IrOp::Const { value: 1, .. }))
                                };
                                let inner_add = |v: &VReg| {
                                    matches!(def_of.get(v), Some(IrOp::Bin { op: BinOp::Add, .. }))
                                };
                                if (plus_one(sum_r) && inner_add(sum_l))
                                    || (plus_one(sum_l) && inner_add(sum_r))
                                {
                                    *counts.entry(CustomSemantics::AverageRound).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                    _ => {}
                }
                if let Some(d) = op.def() {
                    def_of.insert(d, op);
                }
            }
        }
    }

    let saved = |s: &CustomSemantics| match s {
        CustomSemantics::RotateRight => 3,
        CustomSemantics::AverageRound => 2,
        _ => 1,
    };
    let mut suggestions: Vec<Suggestion> = counts
        .into_iter()
        .filter(|(_, occurrences)| *occurrences > 0)
        .map(|(semantics, occurrences)| Suggestion {
            ops_saved_per_use: saved(&semantics),
            semantics,
            occurrences,
        })
        .collect();
    suggestions.sort_by_key(|s| std::cmp::Reverse((s.total_ops_saved(), s.occurrences)));
    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn module_of(f: FunctionDef) -> Module {
        lower::lower(&Program::new().function(f)).unwrap()
    }

    #[test]
    fn rotates_are_found_and_ranked_first() {
        let f = FunctionDef::new("f", ["x", "y"]).body([Stmt::ret(
            Expr::var("x").rotr(Expr::lit(7))
                ^ Expr::var("x").rotr(Expr::lit(11))
                ^ (Expr::var("y") & !Expr::var("x")),
        )]);
        let suggestions = suggest_custom_ops(&module_of(f));
        assert_eq!(suggestions[0].semantics, CustomSemantics::RotateRight);
        assert_eq!(suggestions[0].occurrences, 2);
        assert_eq!(suggestions[0].total_ops_saved(), 6);
        assert!(suggestions
            .iter()
            .any(|s| s.semantics == CustomSemantics::AndComplement));
    }

    #[test]
    fn rounded_average_pattern_is_found() {
        let f = FunctionDef::new("f", ["a", "b"]).body([Stmt::ret(
            (Expr::var("a") + Expr::var("b") + Expr::lit(1)).shr(Expr::lit(1)),
        )]);
        let suggestions = suggest_custom_ops(&module_of(f));
        assert!(suggestions
            .iter()
            .any(|s| s.semantics == CustomSemantics::AverageRound));
    }

    #[test]
    fn superblock_hint_names_planned_and_applied_traces() {
        use crate::mir::{MBlock, MBlockId, MFunction, MTerm};

        let blocks = vec![
            (vec![], MTerm::Jump(MBlockId(1))),
            (
                vec![],
                MTerm::CondJump {
                    pred: 1,
                    on_true: MBlockId(2),
                    on_false: MBlockId(3),
                },
            ),
            (vec![], MTerm::Jump(MBlockId(1))),
            (vec![], MTerm::Ret(None)),
        ];
        let f = MFunction {
            name: "t".into(),
            params: vec![],
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, (insts, term))| MBlock {
                    id: MBlockId(i as u32),
                    insts,
                    term,
                })
                .collect(),
            vreg_count: 0,
            vpred_count: 0,
            allocated: true,
            frame_bytes: 0,
            makes_calls: false,
        };
        let mut func = crate::trace::FunctionTrace {
            name: "t".into(),
            post_select: None,
            post_ifconv: None,
            post_fuse: None,
            post_regalloc: Some(f.clone()),
            post_superblock: None,
            origin: None,
            traces: vec![],
            post_finalize: f,
            layout: vec![],
            scheduled: vec![],
        };
        // No formed trace: the planner names the loop as a candidate.
        let hint = superblock_hint(&func, "t_bb1", None).expect("loop is a candidate");
        assert!(!hint.applied);
        assert!(hint.trace[0] == "t_bb1", "head first: {:?}", hint.trace);
        // A formed trace through the block reports as applied.
        func.traces = vec![vec![MBlockId(1), MBlockId(2)]];
        let hint = superblock_hint(&func, "t_bb2", None).expect("member of formed trace");
        assert!(hint.applied);
        assert_eq!(hint.path(), "t_bb1 -> t_bb2");
        // A block outside every trace gets no hint.
        assert!(superblock_hint(&func, "t_bb3", None).is_none());
    }

    #[test]
    fn plain_arithmetic_suggests_nothing() {
        let f = FunctionDef::new("f", ["a", "b"])
            .body([Stmt::ret(Expr::var("a") * Expr::var("b") + Expr::lit(3))]);
        assert!(suggest_custom_ops(&module_of(f)).is_empty());
    }

    #[test]
    fn sha_suggests_its_rotate() {
        // The real workload: SHA-256 is rotate-dominated.
        let w = epic_workloads_shim();
        let suggestions = suggest_custom_ops(&w);
        assert_eq!(suggestions[0].semantics, CustomSemantics::RotateRight);
        assert!(suggestions[0].occurrences >= 10);
    }

    // epic-workloads depends on epic-ir only, so building its module here
    // would create a dev-dependency cycle with epic-compiler; synthesise
    // a rotate-heavy kernel in the same shape instead.
    fn epic_workloads_shim() -> Module {
        let mut body = vec![Stmt::let_("acc", Expr::lit(0))];
        for r in [2i64, 6, 7, 11, 13, 17, 18, 19, 22, 25] {
            body.push(Stmt::assign(
                "acc",
                Expr::var("acc") ^ Expr::var("x").rotr(Expr::lit(r)),
            ));
        }
        body.push(Stmt::ret(Expr::var("acc")));
        module_of(FunctionDef::new("rounds", ["x"]).body(body))
    }
}
