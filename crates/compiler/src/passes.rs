//! IMPACT-style machine-independent IR optimisations.
//!
//! "Given an application program written in C, the IMPACT module is
//! employed to perform machine independent optimisations" (paper §4.1).
//! The pass pipeline here plays that role over `epic-ir`:
//!
//! * [`inline`] — function inlining of frontend-hinted callees, the main
//!   ILP-exposing transformation for kernels split into helpers;
//! * [`local_optimize`] — block-local constant folding and propagation,
//!   copy propagation, algebraic simplification and strength reduction
//!   (multiplication by powers of two becomes a shift);
//! * [`cse`] — block-local common-subexpression elimination;
//! * [`dce`] — function-wide dead-code elimination;
//! * [`optimize`] — the driver iterating these to a fixed point.
//!
//! All passes preserve the reference semantics defined by
//! [`epic_ir::Interpreter`]; property tests in this crate check exactly
//! that on random programs.

use epic_ir::{BinOp, Block, Function, IrOp, Module, Terminator, VReg};
use std::collections::HashMap;

/// Upper bound on rounds of the fixed-point driver (safety backstop; real
/// programs converge in a few rounds).
const MAX_ROUNDS: usize = 12;

/// Statistics reported by [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Call sites inlined.
    pub inlined_calls: usize,
    /// Operations folded to constants.
    pub folded: usize,
    /// Operations simplified algebraically (including strength reduction).
    pub simplified: usize,
    /// Operations removed by CSE.
    pub cse_hits: usize,
    /// Dead operations removed.
    pub dead_removed: usize,
    /// Optimisation rounds executed.
    pub rounds: usize,
}

/// Runs the full machine-independent pipeline on a module.
///
/// `inline_hints` names functions the frontend marked for inlining (see
/// [`epic_ir::lower::inline_hints`]).
pub fn optimize(module: &mut Module, inline_hints: &[String]) -> PassStats {
    let mut stats = PassStats {
        inlined_calls: inline(module, inline_hints),
        ..PassStats::default()
    };
    for round in 0..MAX_ROUNDS {
        stats.rounds = round + 1;
        let mut changed = false;
        for func in &mut module.functions {
            let (folded, simplified) = local_optimize(func);
            let cse_hits = cse(func);
            let dead = dce(func);
            stats.folded += folded;
            stats.simplified += simplified;
            stats.cse_hits += cse_hits;
            stats.dead_removed += dead;
            changed |= folded + simplified + cse_hits + dead > 0;
        }
        if !changed {
            break;
        }
    }
    stats
}

// ---------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------

/// Inlines calls to the hinted functions. Returns the number of call
/// sites expanded. Directly self-recursive hints are ignored.
pub fn inline(module: &mut Module, hints: &[String]) -> usize {
    let mut expanded = 0;
    // Bounded rounds so chains of hinted calls (a -> b -> c) flatten.
    for _ in 0..4 {
        let snapshot: HashMap<String, Function> = module
            .functions
            .iter()
            .filter(|f| hints.contains(&f.name) && !calls_any_of(f, std::slice::from_ref(&f.name)))
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        if snapshot.is_empty() {
            break;
        }
        let mut any = false;
        for func in &mut module.functions {
            while let Some((block, index, callee)) = find_inlinable(func, &snapshot) {
                inline_site(func, block, index, &snapshot[&callee]);
                expanded += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    expanded
}

fn calls_any_of(f: &Function, names: &[String]) -> bool {
    f.blocks
        .iter()
        .flat_map(|b| &b.ops)
        .any(|op| matches!(op, IrOp::Call { callee, .. } if names.contains(callee)))
}

fn find_inlinable(
    func: &Function,
    snapshot: &HashMap<String, Function>,
) -> Option<(usize, usize, String)> {
    for (bi, block) in func.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            if let IrOp::Call { callee, .. } = op {
                if snapshot.contains_key(callee) && *callee != func.name {
                    return Some((bi, oi, callee.clone()));
                }
            }
        }
    }
    None
}

fn inline_site(func: &mut Function, block_index: usize, op_index: usize, callee: &Function) {
    let vreg_offset = func.vreg_count;
    func.vreg_count += callee.vreg_count;
    // Continuation block is pushed first, then the callee clone, so the
    // clone's blocks start right after it.
    let cont_id = epic_ir::BlockId(func.blocks.len() as u32);
    let block_offset = cont_id.0 + 1;

    let call_op = func.blocks[block_index].ops[op_index].clone();
    let IrOp::Call { args, dest, .. } = call_op else {
        unreachable!("find_inlinable returns call sites")
    };
    let tail_ops: Vec<IrOp> = func.blocks[block_index].ops.split_off(op_index + 1);
    func.blocks[block_index].ops.pop(); // drop the call itself
    let original_term =
        std::mem::replace(&mut func.blocks[block_index].term, Terminator::Ret(None));

    func.blocks.push(Block {
        id: cont_id,
        ops: tail_ops,
        term: original_term,
    });

    // Copy arguments into the callee's (remapped) parameter registers.
    for (param, arg) in callee.params.iter().zip(&args) {
        func.blocks[block_index].ops.push(IrOp::Copy {
            dest: VReg(param.0 + vreg_offset),
            src: *arg,
        });
    }
    func.blocks[block_index].term = Terminator::Jump(epic_ir::BlockId(block_offset));

    // Clone the callee body.
    for cb in &callee.blocks {
        let mut ops = Vec::with_capacity(cb.ops.len());
        for op in &cb.ops {
            let mut op = op.clone();
            if let Some(d) = op.def() {
                set_def(&mut op, VReg(d.0 + vreg_offset));
            }
            op.map_uses(|u| VReg(u.0 + vreg_offset));
            ops.push(op);
        }
        let remap = |b: epic_ir::BlockId| epic_ir::BlockId(b.0 + block_offset);
        let term = match &cb.term {
            Terminator::Jump(t) => Terminator::Jump(remap(*t)),
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => Terminator::Branch {
                cond: VReg(cond.0 + vreg_offset),
                then_block: remap(*then_block),
                else_block: remap(*else_block),
            },
            Terminator::Ret(value) => {
                if let (Some(d), Some(v)) = (dest, value) {
                    ops.push(IrOp::Copy {
                        dest: d,
                        src: VReg(v.0 + vreg_offset),
                    });
                }
                Terminator::Jump(cont_id)
            }
        };
        let id = epic_ir::BlockId(func.blocks.len() as u32);
        func.blocks.push(Block { id, ops, term });
    }
}

fn set_def(op: &mut IrOp, new: VReg) {
    match op {
        IrOp::Const { dest, .. }
        | IrOp::Bin { dest, .. }
        | IrOp::Un { dest, .. }
        | IrOp::Copy { dest, .. }
        | IrOp::Load { dest, .. } => *dest = new,
        IrOp::Call { dest, .. } => *dest = Some(new),
        IrOp::Store { .. } => {}
    }
}

// ---------------------------------------------------------------------
// Local constant folding / copy propagation / algebraic simplification
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Known {
    Const(u32),
    Copy(VReg, u64), // source register and its version at copy time
}

/// Folds constants, propagates copies and applies algebraic identities
/// within each block. Returns `(folded, simplified)` counts.
pub fn local_optimize(func: &mut Function) -> (usize, usize) {
    let mut folded = 0;
    let mut simplified = 0;
    let mut next_vreg = func.vreg_count;

    for bi in 0..func.blocks.len() {
        let ops = std::mem::take(&mut func.blocks[bi].ops);
        let mut known: HashMap<VReg, Known> = HashMap::new();
        let mut version: HashMap<VReg, u64> = HashMap::new();
        let mut out: Vec<IrOp> = Vec::with_capacity(ops.len());

        fn ver(version: &HashMap<VReg, u64>, r: VReg) -> u64 {
            version.get(&r).copied().unwrap_or(0)
        }
        fn const_of(known: &HashMap<VReg, Known>, r: VReg) -> Option<u32> {
            match known.get(&r) {
                Some(Known::Const(c)) => Some(*c),
                _ => None,
            }
        }

        for mut op in ops {
            // Copy propagation: rewrite uses through still-valid copies.
            op.map_uses(|u| match known.get(&u) {
                Some(Known::Copy(src, v)) if ver(&version, *src) == *v => *src,
                _ => u,
            });

            // Folding and simplification produce zero or more replacement ops.
            let mut emitted: Vec<IrOp> = Vec::new();
            match &op {
                IrOp::Bin {
                    op: bop,
                    dest,
                    lhs,
                    rhs,
                } => {
                    let lc = const_of(&known, *lhs);
                    let rc = const_of(&known, *rhs);
                    if let (Some(a), Some(b)) = (lc, rc) {
                        folded += 1;
                        emitted.push(IrOp::Const {
                            dest: *dest,
                            value: i64::from(bop.eval(a, b) as i32),
                        });
                    } else if let Some(ops) =
                        simplify(*bop, *dest, *lhs, *rhs, lc, rc, &mut next_vreg)
                    {
                        simplified += 1;
                        emitted.extend(ops);
                    }
                }
                IrOp::Un { op: uop, dest, src } => {
                    if let Some(c) = const_of(&known, *src) {
                        folded += 1;
                        emitted.push(IrOp::Const {
                            dest: *dest,
                            value: i64::from(uop.eval(c) as i32),
                        });
                    }
                }
                _ => {}
            }
            if emitted.is_empty() {
                emitted.push(op);
            }

            for op in emitted {
                if let Some(d) = op.def() {
                    *version.entry(d).or_insert(0) += 1;
                    known.remove(&d);
                    match &op {
                        IrOp::Const { value, .. } => {
                            known.insert(d, Known::Const(*value as u32));
                        }
                        IrOp::Copy { src, .. } => {
                            if let Some(c) = const_of(&known, *src) {
                                known.insert(d, Known::Const(c));
                            } else if *src != d {
                                known.insert(d, Known::Copy(*src, ver(&version, *src)));
                            }
                        }
                        _ => {}
                    }
                }
                out.push(op);
            }
        }
        func.blocks[bi].ops = out;
    }
    func.vreg_count = next_vreg;
    (folded, simplified)
}

/// Algebraic identities and strength reduction for one binary operation.
/// Returns replacement operations, or `None` to keep the original.
fn simplify(
    bop: BinOp,
    dest: VReg,
    lhs: VReg,
    rhs: VReg,
    lc: Option<u32>,
    rc: Option<u32>,
    next_vreg: &mut u32,
) -> Option<Vec<IrOp>> {
    let copy_of = |src: VReg| Some(vec![IrOp::Copy { dest, src }]);
    let konst = |value: i64| Some(vec![IrOp::Const { dest, value }]);

    // Identities with a constant on the right.
    if let Some(c) = rc {
        match (bop, c) {
            (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor, 0) => return copy_of(lhs),
            (BinOp::Shl | BinOp::Shr | BinOp::Sra | BinOp::Rotr, 0) => return copy_of(lhs),
            (BinOp::Mul | BinOp::Div, 1) => return copy_of(lhs),
            (BinOp::Mul | BinOp::And, 0) => return konst(0),
            (BinOp::And, u32::MAX) => return copy_of(lhs),
            (BinOp::Mul, c) if c.is_power_of_two() => {
                let amount = VReg(*next_vreg);
                *next_vreg += 1;
                return Some(vec![
                    IrOp::Const {
                        dest: amount,
                        value: i64::from(c.trailing_zeros()),
                    },
                    IrOp::Bin {
                        op: BinOp::Shl,
                        dest,
                        lhs,
                        rhs: amount,
                    },
                ]);
            }
            _ => {}
        }
    }
    // Identities with a constant on the left.
    if let Some(c) = lc {
        match (bop, c) {
            (BinOp::Add | BinOp::Or | BinOp::Xor, 0) => return copy_of(rhs),
            (BinOp::Mul, 1) => return copy_of(rhs),
            (BinOp::Mul | BinOp::And, 0) => return konst(0),
            (BinOp::And, u32::MAX) => return copy_of(rhs),
            (BinOp::Mul, c) if c.is_power_of_two() => {
                let amount = VReg(*next_vreg);
                *next_vreg += 1;
                return Some(vec![
                    IrOp::Const {
                        dest: amount,
                        value: i64::from(c.trailing_zeros()),
                    },
                    IrOp::Bin {
                        op: BinOp::Shl,
                        dest,
                        lhs: rhs,
                        rhs: amount,
                    },
                ]);
            }
            _ => {}
        }
    }
    // Same-register identities (both operands read the same value).
    if lhs == rhs {
        match bop {
            BinOp::Sub | BinOp::Xor => return konst(0),
            BinOp::And | BinOp::Or | BinOp::Min | BinOp::Max => return copy_of(lhs),
            BinOp::CmpEq | BinOp::CmpLe | BinOp::CmpGe | BinOp::CmpLeu | BinOp::CmpGeu => {
                return konst(1)
            }
            BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpGt | BinOp::CmpLtu | BinOp::CmpGtu => {
                return konst(0)
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Local common-subexpression elimination
// ---------------------------------------------------------------------

/// Eliminates repeated pure computations within each block. Returns the
/// number of operations replaced by copies.
pub fn cse(func: &mut Function) -> usize {
    let mut hits = 0;
    for block in &mut func.blocks {
        // Key: (op kind, operands with versions). Value: defining vreg +
        // its version at definition.
        let mut version: HashMap<VReg, u64> = HashMap::new();
        let mut table: HashMap<String, (VReg, u64)> = HashMap::new();

        fn ver(version: &HashMap<VReg, u64>, r: VReg) -> u64 {
            version.get(&r).copied().unwrap_or(0)
        }

        for op in &mut block.ops {
            let key = match op {
                IrOp::Bin {
                    op: bop, lhs, rhs, ..
                } => {
                    let (a, b) = if bop.is_commutative() && rhs < lhs {
                        (*rhs, *lhs)
                    } else {
                        (*lhs, *rhs)
                    };
                    Some(format!(
                        "bin:{}:{}.{}:{}.{}",
                        bop.name(),
                        a.0,
                        ver(&version, a),
                        b.0,
                        ver(&version, b)
                    ))
                }
                IrOp::Un { op: uop, src, .. } => Some(format!(
                    "un:{}:{}.{}",
                    uop.name(),
                    src.0,
                    ver(&version, *src)
                )),
                IrOp::Const { value, .. } => Some(format!("const:{value}")),
                _ => None,
            };

            if let (Some(key), Some(dest)) = (key, op.def()) {
                match table.get(&key) {
                    Some((prev, prev_ver))
                        if ver(&version, *prev) == *prev_ver && *prev != dest =>
                    {
                        *op = IrOp::Copy { dest, src: *prev };
                        hits += 1;
                    }
                    _ => {
                        let v = ver(&version, dest) + 1;
                        table.insert(key, (dest, v));
                    }
                }
            }
            if let Some(d) = op.def() {
                *version.entry(d).or_insert(0) += 1;
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------

/// Liveness-based dead-code elimination: a pure operation is removed when
/// its result is dead at that point — including intermediate
/// redefinitions of a register that is live-out (the copies left behind
/// by straight-line renaming, which flat use-counting cannot kill).
/// Iterated to a fixed point. Returns removals.
pub fn dce(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let live_out = epic_ir::analysis::block_live_out(func);
        let mut changed = false;
        for (bi, block) in func.blocks.iter_mut().enumerate() {
            let mut live = live_out[bi].clone();
            if let Some(u) = block.term.use_reg() {
                live.insert(u);
            }
            let mut keep = vec![true; block.ops.len()];
            for (i, op) in block.ops.iter().enumerate().rev() {
                let dead = !op.has_side_effects() && op.def().is_some_and(|d| !live.contains(&d));
                if dead {
                    keep[i] = false;
                    continue;
                }
                if let Some(d) = op.def() {
                    live.remove(&d);
                }
                for u in op.uses() {
                    live.insert(u);
                }
            }
            let before = block.ops.len();
            let mut it = keep.iter();
            block.ops.retain(|_| *it.next().expect("keep covers ops"));
            let delta = before - block.ops.len();
            removed += delta;
            changed |= delta > 0;
        }
        if !changed {
            return removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::{lower, Interpreter};

    fn lowered(p: &Program) -> Module {
        lower::lower(p).unwrap()
    }

    fn run(module: &Module, func: &str, args: &[u32]) -> Option<u32> {
        Interpreter::new(module).call(func, args).unwrap()
    }

    #[test]
    fn constant_expressions_fold_to_one_const() {
        let p = Program::new().function(
            FunctionDef::new("f", [] as [&str; 0])
                .body([Stmt::ret((Expr::lit(2) + Expr::lit(3)) * Expr::lit(7))]),
        );
        let mut m = lowered(&p);
        let stats = optimize(&mut m, &[]);
        assert!(stats.folded >= 2);
        let f = m.function("f").unwrap();
        // After folding + DCE only the final constant remains.
        assert_eq!(f.op_count(), 1);
        assert_eq!(run(&m, "f", &[]), Some(35));
    }

    #[test]
    fn multiplication_by_power_of_two_becomes_shift() {
        let p = Program::new().function(
            FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x") * Expr::lit(8))]),
        );
        let mut m = lowered(&p);
        optimize(&mut m, &[]);
        let f = m.function("f").unwrap();
        let has_shift = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|op| matches!(op, IrOp::Bin { op: BinOp::Shl, .. }));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|op| matches!(op, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(has_shift && !has_mul);
        assert_eq!(run(&m, "f", &[5]), Some(40));
    }

    #[test]
    fn cse_removes_repeated_subexpressions() {
        // (x+y) used twice.
        let p = Program::new().function(FunctionDef::new("f", ["x", "y"]).body([Stmt::ret(
            (Expr::var("x") + Expr::var("y")) * (Expr::var("x") + Expr::var("y")),
        )]));
        let mut m = lowered(&p);
        let stats = optimize(&mut m, &[]);
        assert!(stats.cse_hits >= 1);
        assert_eq!(run(&m, "f", &[3, 4]), Some(49));
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let side = FunctionDef::new("side", [] as [&str; 0])
            .body([Stmt::store_word(Expr::global("g"), Expr::lit(7))]);
        let main = FunctionDef::new("main", [] as [&str; 0]).body([
            Stmt::let_("dead", Expr::lit(1) + Expr::lit(2)),
            Stmt::call("side", []),
            Stmt::ret(Expr::global("g").load_word()),
        ]);
        let p = Program::new()
            .global(epic_ir::Global::zeroed("g", 4))
            .function(side)
            .function(main);
        let mut m = lowered(&p);
        optimize(&mut m, &[]);
        assert_eq!(run(&m, "main", &[]), Some(7));
    }

    #[test]
    fn inline_flattens_hinted_calls() {
        let helper = FunctionDef::new("helper", ["x"])
            .body([Stmt::ret(Expr::var("x") * Expr::var("x"))])
            .inline();
        let main = FunctionDef::new("main", ["a"]).body([Stmt::ret(
            Expr::call("helper", [Expr::var("a")]) + Expr::call("helper", [Expr::lit(3)]),
        )]);
        let p = Program::new().function(helper).function(main);
        let hints = lower::inline_hints(&p);
        let mut m = lowered(&p);
        let stats = optimize(&mut m, &hints);
        assert_eq!(stats.inlined_calls, 2);
        let main_fn = m.function("main").unwrap();
        let has_call = main_fn
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|op| matches!(op, IrOp::Call { .. }));
        assert!(!has_call, "all calls should be inlined");
        assert_eq!(run(&m, "main", &[4]), Some(25));
    }

    #[test]
    fn inline_handles_branching_callees() {
        let abs = FunctionDef::new("abs", ["x"])
            .body([
                Stmt::if_(
                    Expr::var("x").lt_s(Expr::lit(0)),
                    [Stmt::ret(-Expr::var("x"))],
                ),
                Stmt::ret(Expr::var("x")),
            ])
            .inline();
        let main = FunctionDef::new("main", ["a", "b"]).body([Stmt::ret(
            Expr::call("abs", [Expr::var("a")]) + Expr::call("abs", [Expr::var("b")]),
        )]);
        let p = Program::new().function(abs).function(main);
        let hints = lower::inline_hints(&p);
        let mut m = lowered(&p);
        optimize(&mut m, &hints);
        m.validate().unwrap();
        assert_eq!(run(&m, "main", &[(-3i32) as u32, 4]), Some(7));
    }

    #[test]
    fn recursive_hints_are_not_inlined() {
        let fib = FunctionDef::new("fib", ["n"])
            .body([
                Stmt::if_(
                    Expr::var("n").lt_s(Expr::lit(2)),
                    [Stmt::ret(Expr::var("n"))],
                ),
                Stmt::ret(
                    Expr::call("fib", [Expr::var("n") - Expr::lit(1)])
                        + Expr::call("fib", [Expr::var("n") - Expr::lit(2)]),
                ),
            ])
            .inline();
        let p = Program::new().function(fib);
        let hints = lower::inline_hints(&p);
        let mut m = lowered(&p);
        let stats = optimize(&mut m, &hints);
        assert_eq!(stats.inlined_calls, 0);
        assert_eq!(run(&m, "fib", &[10]), Some(55));
    }

    #[test]
    fn optimized_loop_still_computes() {
        let f = FunctionDef::new("sum", ["n"]).body([
            Stmt::let_("acc", Expr::lit(0)),
            Stmt::for_(
                "i",
                Expr::lit(0),
                Expr::var("n"),
                [Stmt::assign(
                    "acc",
                    Expr::var("acc") + Expr::var("i") * Expr::lit(4) + Expr::lit(0),
                )],
            ),
            Stmt::ret(Expr::var("acc")),
        ]);
        let mut m = lowered(&Program::new().function(f));
        optimize(&mut m, &[]);
        assert_eq!(run(&m, "sum", &[10]), Some(4 * 45));
    }

    #[test]
    fn same_register_comparisons_fold() {
        let f = FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x").eq(Expr::var("x")))]);
        let mut m = lowered(&Program::new().function(f));
        let stats = optimize(&mut m, &[]);
        assert!(stats.simplified >= 1);
        assert_eq!(run(&m, "f", &[123]), Some(1));
    }
}
