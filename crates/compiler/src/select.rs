//! Instruction selection: IR → machine IR.
//!
//! Selection maps each IR operation onto the HPL-PD-subset ISA, keeping
//! operands virtual. The interesting decisions:
//!
//! * **Comparison fusion** — an IR comparison whose only consumer is its
//!   block's branch becomes a compare-to-predicate feeding a
//!   branch-on-condition, with no GPR truth value ever materialised;
//! * **Custom-instruction matching** — a rotate (and other recognised
//!   operators) becomes a configured custom ALU operation when one is
//!   registered, otherwise it expands into base-ISA shifts;
//! * **Feature-aware expansion** — `MIN`/`MAX` lower to predicated moves
//!   when the MinMax ALU feature is excluded from the configuration.

use crate::error::CompileError;
use crate::mir::{MBlock, MBlockId, MDest, MFunction, MInst, MOp, MSrc, MTerm};
use epic_config::{Config, CustomSemantics};
use epic_ir::{BinOp, Function, IrOp, LoadKind, StoreKind, Terminator, UnOp, VReg};
use epic_isa::{CmpCond, Opcode};
use std::collections::HashMap;

/// Lowers one IR function to machine IR for the given configuration.
///
/// # Errors
///
/// Returns [`CompileError::MissingFeature`] when an operation has no
/// implementation under the configured ALU feature set (multiply or
/// divide excluded but required), and
/// [`CompileError::TooManyArguments`] for functions exceeding the
/// register-argument limit.
pub fn select(func: &Function, config: &Config) -> Result<MFunction, CompileError> {
    let mut ctx = SelectCtx::new(func, config);
    ctx.run()?;
    Ok(ctx.finish())
}

struct SelectCtx<'a> {
    func: &'a Function,
    config: &'a Config,
    out: MFunction,
    /// Global use counts of IR vregs (for comparison fusion).
    use_counts: HashMap<VReg, usize>,
    /// Per-block: comparison op index fused into the terminator.
    fused: HashMap<(u32, usize), ()>,
    /// Per-block: the true-predicate the fused comparison produced.
    fused_branch_pred: HashMap<u32, u32>,
    /// Address adds folded into `base + offset` register addressing
    /// (HPL-PD loads take both operands from registers).
    addr_folds: HashMap<(u32, usize), epic_ir::analysis::AddrFold>,
}

impl<'a> SelectCtx<'a> {
    fn new(func: &'a Function, config: &'a Config) -> Self {
        let mut use_counts: HashMap<VReg, usize> = HashMap::new();
        for block in &func.blocks {
            for op in &block.ops {
                for u in op.uses() {
                    *use_counts.entry(u).or_insert(0) += 1;
                }
            }
            if let Some(u) = block.term.use_reg() {
                *use_counts.entry(u).or_insert(0) += 1;
            }
        }
        let out = MFunction {
            name: func.name.clone(),
            params: func.params.iter().map(|p| p.0).collect(),
            blocks: Vec::new(),
            vreg_count: func.vreg_count,
            vpred_count: 1,
            allocated: false,
            frame_bytes: 0,
            makes_calls: false,
        };
        SelectCtx {
            addr_folds: epic_ir::analysis::addr_folds(func),
            func,
            config,
            out,
            use_counts,
            fused: HashMap::new(),
            fused_branch_pred: HashMap::new(),
        }
    }

    fn run(&mut self) -> Result<(), CompileError> {
        self.find_fusable();
        for block in &self.func.blocks {
            let mut insts = Vec::new();
            for (oi, op) in block.ops.iter().enumerate() {
                self.lower_op(block.id.0, oi, op, &mut insts)?;
            }
            let term = self.lower_term(block.id.0, &block.term, &mut insts);
            self.out.blocks.push(MBlock {
                id: MBlockId(block.id.0),
                insts,
                term,
            });
        }
        Ok(())
    }

    fn finish(self) -> MFunction {
        self.out
    }

    /// Finds comparisons that can fuse into their block's branch: the
    /// comparison is the last definition of the branch condition in the
    /// same block, and the condition has no other use.
    fn find_fusable(&mut self) {
        for block in &self.func.blocks {
            let Terminator::Branch { cond, .. } = &block.term else {
                continue;
            };
            if self.use_counts.get(cond).copied().unwrap_or(0) != 1 {
                continue;
            }
            // Last def of `cond` in this block must be a comparison.
            let mut candidate = None;
            for (oi, op) in block.ops.iter().enumerate() {
                if op.def() == Some(*cond) {
                    candidate = match op {
                        IrOp::Bin { op: bop, .. } if bop.is_comparison() => Some(oi),
                        _ => None,
                    };
                }
            }
            if let Some(oi) = candidate {
                self.fused.insert((block.id.0, oi), ());
            }
        }
    }

    fn new_vreg(&mut self) -> u32 {
        self.out.new_vreg()
    }

    fn new_vpred(&mut self) -> u32 {
        self.out.new_vpred()
    }

    fn short_lit_ok(&self, v: i64) -> bool {
        let (min, max) = self.config.instruction_format().short_literal_range();
        v >= min && v <= max
    }

    fn emit_const(&mut self, dest: u32, value: i64, insts: &mut Vec<MInst>) {
        let value32 = i64::from(value as i32);
        let mut op = if self.short_lit_ok(value32) {
            let mut m = MOp::bare(Opcode::Move);
            m.src1 = MSrc::Lit(value32);
            m
        } else {
            let mut m = MOp::bare(Opcode::Movil);
            m.src1 = MSrc::Lit(value32);
            m
        };
        op.dest1 = MDest::Gpr(dest);
        insts.push(MInst::Op(op));
    }

    fn custom_for(&self, semantics: CustomSemantics) -> Option<Opcode> {
        self.config
            .custom_ops()
            .iter()
            .position(|op| *op.semantics() == semantics)
            .map(|i| Opcode::Custom(i as u16))
    }

    fn lower_op(
        &mut self,
        block: u32,
        oi: usize,
        op: &IrOp,
        insts: &mut Vec<MInst>,
    ) -> Result<(), CompileError> {
        use epic_ir::analysis::AddrFold;
        match self.addr_folds.get(&(block, oi)) {
            Some(AddrFold::SkipAdd) => return Ok(()),
            Some(AddrFold::Mem { lhs, rhs }) => {
                let (lhs, rhs) = (lhs.0, rhs.0);
                match op {
                    IrOp::Load { kind, dest, .. } => {
                        let opcode = match kind {
                            LoadKind::Word => Opcode::Lw,
                            LoadKind::Half => Opcode::Lh,
                            LoadKind::HalfU => Opcode::Lhu,
                            LoadKind::Byte => Opcode::Lb,
                            LoadKind::ByteU => Opcode::Lbu,
                        };
                        let mut m = MOp::bare(opcode);
                        m.dest1 = MDest::Gpr(dest.0);
                        m.src1 = MSrc::Gpr(lhs);
                        m.src2 = MSrc::Gpr(rhs);
                        insts.push(MInst::Op(m));
                    }
                    IrOp::Store { kind, value, .. } => {
                        let opcode = match kind {
                            StoreKind::Word => Opcode::Sw,
                            StoreKind::Half => Opcode::Sh,
                            StoreKind::Byte => Opcode::Sb,
                        };
                        let mut m = MOp::bare(opcode);
                        m.store_value = Some(value.0);
                        m.src1 = MSrc::Gpr(lhs);
                        m.src2 = MSrc::Gpr(rhs);
                        insts.push(MInst::Op(m));
                    }
                    _ => unreachable!("folds only target memory accesses"),
                }
                return Ok(());
            }
            None => {}
        }
        match op {
            IrOp::Const { dest, value } => self.emit_const(dest.0, *value, insts),
            IrOp::Copy { dest, src } => {
                let mut m = MOp::bare(Opcode::Move);
                m.dest1 = MDest::Gpr(dest.0);
                m.src1 = MSrc::Gpr(src.0);
                insts.push(MInst::Op(m));
            }
            IrOp::Un { op: uop, dest, src } => {
                let mut m = match uop {
                    UnOp::Neg => {
                        let mut m = MOp::bare(Opcode::Sub);
                        m.src1 = MSrc::Lit(0);
                        m.src2 = MSrc::Gpr(src.0);
                        m
                    }
                    UnOp::Not => {
                        let mut m = MOp::bare(Opcode::Xor);
                        m.src1 = MSrc::Gpr(src.0);
                        m.src2 = MSrc::Lit(-1);
                        m
                    }
                };
                m.dest1 = MDest::Gpr(dest.0);
                insts.push(MInst::Op(m));
            }
            IrOp::Bin {
                op: bop,
                dest,
                lhs,
                rhs,
            } => self.lower_bin(block, oi, *bop, dest.0, lhs.0, rhs.0, insts)?,
            IrOp::Load {
                kind,
                dest,
                base,
                offset,
            } => {
                let opcode = match kind {
                    LoadKind::Word => Opcode::Lw,
                    LoadKind::Half => Opcode::Lh,
                    LoadKind::HalfU => Opcode::Lhu,
                    LoadKind::Byte => Opcode::Lb,
                    LoadKind::ByteU => Opcode::Lbu,
                };
                let mut m = MOp::bare(opcode);
                m.dest1 = MDest::Gpr(dest.0);
                m.src1 = MSrc::Gpr(base.0);
                m.src2 = MSrc::Lit(i64::from(*offset));
                insts.push(MInst::Op(m));
            }
            IrOp::Store {
                kind,
                value,
                base,
                offset,
            } => {
                let opcode = match kind {
                    StoreKind::Word => Opcode::Sw,
                    StoreKind::Half => Opcode::Sh,
                    StoreKind::Byte => Opcode::Sb,
                };
                let mut m = MOp::bare(opcode);
                m.store_value = Some(value.0);
                m.src1 = MSrc::Gpr(base.0);
                m.src2 = MSrc::Lit(i64::from(*offset));
                insts.push(MInst::Op(m));
            }
            IrOp::Call { callee, args, dest } => {
                self.out.makes_calls = true;
                insts.push(MInst::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|a| a.0).collect(),
                    dest: dest.map(|d| d.0),
                });
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_bin(
        &mut self,
        block: u32,
        oi: usize,
        bop: BinOp,
        dest: u32,
        lhs: u32,
        rhs: u32,
        insts: &mut Vec<MInst>,
    ) -> Result<(), CompileError> {
        use epic_config::AluFeature;

        let feature_ok = |f: AluFeature| self.config.alu_features().contains(f);
        let simple = |opcode: Opcode| {
            let mut m = MOp::bare(opcode);
            m.dest1 = MDest::Gpr(dest);
            m.src1 = MSrc::Gpr(lhs);
            m.src2 = MSrc::Gpr(rhs);
            MInst::Op(m)
        };

        if let Some(cond) = comparison_cond(bop) {
            let fused = self.fused.contains_key(&(block, oi));
            let t = self.new_vpred();
            let f = self.new_vpred();
            let mut cmp = MOp::bare(Opcode::Cmp(cond));
            cmp.dest1 = MDest::Pred(t);
            cmp.dest2 = MDest::Pred(f);
            cmp.src1 = MSrc::Gpr(lhs);
            cmp.src2 = MSrc::Gpr(rhs);
            insts.push(MInst::Op(cmp));
            if fused {
                self.fused_branch_pred.insert(block, t);
            }
            if !fused {
                // Materialise the 0/1 truth value.
                let mut mov = MOp::bare(Opcode::MovPg);
                mov.dest1 = MDest::Gpr(dest);
                mov.src1 = MSrc::Pred(t);
                insts.push(MInst::Op(mov));
            }
            return Ok(());
        }

        match bop {
            BinOp::Add => insts.push(simple(Opcode::Add)),
            BinOp::Sub => insts.push(simple(Opcode::Sub)),
            BinOp::And => insts.push(simple(Opcode::And)),
            BinOp::Or => insts.push(simple(Opcode::Or)),
            BinOp::Xor => insts.push(simple(Opcode::Xor)),
            BinOp::Mul => {
                if !feature_ok(AluFeature::Multiply) {
                    return Err(CompileError::MissingFeature {
                        operation: format!("{}: multiplication", self.func.name),
                        feature: "MUL".to_owned(),
                    });
                }
                insts.push(simple(Opcode::Mull));
            }
            BinOp::Div | BinOp::Rem => {
                if !feature_ok(AluFeature::Divide) {
                    return Err(CompileError::MissingFeature {
                        operation: format!("{}: division", self.func.name),
                        feature: "DIV".to_owned(),
                    });
                }
                insts.push(simple(if bop == BinOp::Div {
                    Opcode::Div
                } else {
                    Opcode::Rem
                }));
            }
            BinOp::Shl | BinOp::Shr | BinOp::Sra => {
                if !feature_ok(AluFeature::Shifts) {
                    return Err(CompileError::MissingFeature {
                        operation: format!("{}: shift", self.func.name),
                        feature: "SHIFT".to_owned(),
                    });
                }
                let opcode = match bop {
                    BinOp::Shl => Opcode::Shl,
                    BinOp::Shr => Opcode::Shr,
                    _ => Opcode::Shra,
                };
                insts.push(simple(opcode));
            }
            BinOp::Rotr => {
                if let Some(opcode) = self.custom_for(CustomSemantics::RotateRight) {
                    insts.push(simple(opcode));
                } else {
                    if !feature_ok(AluFeature::Shifts) {
                        return Err(CompileError::MissingFeature {
                            operation: format!("{}: rotate", self.func.name),
                            feature: "SHIFT".to_owned(),
                        });
                    }
                    // (x >> n) | (x << (32 - n)); shifts are modulo 32, so
                    // n == 0 degenerates to x | x == x.
                    let t_right = self.new_vreg();
                    let t_amount = self.new_vreg();
                    let t_left = self.new_vreg();
                    let mut shr = MOp::bare(Opcode::Shr);
                    shr.dest1 = MDest::Gpr(t_right);
                    shr.src1 = MSrc::Gpr(lhs);
                    shr.src2 = MSrc::Gpr(rhs);
                    insts.push(MInst::Op(shr));
                    let mut sub = MOp::bare(Opcode::Sub);
                    sub.dest1 = MDest::Gpr(t_amount);
                    sub.src1 = MSrc::Lit(i64::from(self.config.datapath_width()));
                    sub.src2 = MSrc::Gpr(rhs);
                    insts.push(MInst::Op(sub));
                    let mut shl = MOp::bare(Opcode::Shl);
                    shl.dest1 = MDest::Gpr(t_left);
                    shl.src1 = MSrc::Gpr(lhs);
                    shl.src2 = MSrc::Gpr(t_amount);
                    insts.push(MInst::Op(shl));
                    let mut or = MOp::bare(Opcode::Or);
                    or.dest1 = MDest::Gpr(dest);
                    or.src1 = MSrc::Gpr(t_right);
                    or.src2 = MSrc::Gpr(t_left);
                    insts.push(MInst::Op(or));
                }
            }
            BinOp::Min | BinOp::Max => {
                if feature_ok(AluFeature::MinMax) {
                    insts.push(simple(if bop == BinOp::Min {
                        Opcode::Min
                    } else {
                        Opcode::Max
                    }));
                } else {
                    // CMP_LT t,f; MOVE d, a (t); MOVE d, b (f) — predicated
                    // selection, the EPIC way.
                    let t = self.new_vpred();
                    let f = self.new_vpred();
                    let cond = if bop == BinOp::Min {
                        CmpCond::Lt
                    } else {
                        CmpCond::Gt
                    };
                    let mut cmp = MOp::bare(Opcode::Cmp(cond));
                    cmp.dest1 = MDest::Pred(t);
                    cmp.dest2 = MDest::Pred(f);
                    cmp.src1 = MSrc::Gpr(lhs);
                    cmp.src2 = MSrc::Gpr(rhs);
                    insts.push(MInst::Op(cmp));
                    let mut take_l = MOp::bare(Opcode::Move);
                    take_l.dest1 = MDest::Gpr(dest);
                    take_l.src1 = MSrc::Gpr(lhs);
                    take_l.guard = t;
                    insts.push(MInst::Op(take_l));
                    let mut take_r = MOp::bare(Opcode::Move);
                    take_r.dest1 = MDest::Gpr(dest);
                    take_r.src1 = MSrc::Gpr(rhs);
                    take_r.guard = f;
                    insts.push(MInst::Op(take_r));
                }
            }
            _ => {
                return Err(CompileError::Internal {
                    message: format!("unhandled binary operator {bop}"),
                })
            }
        }
        Ok(())
    }

    fn lower_term(&mut self, block: u32, term: &Terminator, insts: &mut Vec<MInst>) -> MTerm {
        match term {
            Terminator::Jump(b) => MTerm::Jump(MBlockId(b.0)),
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                let pred = if let Some(t) = self.fused_branch_pred.get(&block) {
                    *t
                } else {
                    // Branch on an arbitrary value: test != 0.
                    let t = self.new_vpred();
                    let f = self.new_vpred();
                    let mut cmp = MOp::bare(Opcode::Cmp(CmpCond::Ne));
                    cmp.dest1 = MDest::Pred(t);
                    cmp.dest2 = MDest::Pred(f);
                    cmp.src1 = MSrc::Gpr(cond.0);
                    cmp.src2 = MSrc::Lit(0);
                    insts.push(MInst::Op(cmp));
                    t
                };
                MTerm::CondJump {
                    pred,
                    on_true: MBlockId(then_block.0),
                    on_false: MBlockId(else_block.0),
                }
            }
            Terminator::Ret(v) => MTerm::Ret(v.map(|r| r.0)),
        }
    }
}

fn comparison_cond(bop: BinOp) -> Option<CmpCond> {
    Some(match bop {
        BinOp::CmpEq => CmpCond::Eq,
        BinOp::CmpNe => CmpCond::Ne,
        BinOp::CmpLt => CmpCond::Lt,
        BinOp::CmpLe => CmpCond::Le,
        BinOp::CmpGt => CmpCond::Gt,
        BinOp::CmpGe => CmpCond::Ge,
        BinOp::CmpLtu => CmpCond::Ltu,
        BinOp::CmpLeu => CmpCond::Leu,
        BinOp::CmpGtu => CmpCond::Gtu,
        BinOp::CmpGeu => CmpCond::Geu,
        _ => return None,
    })
}

/// Replaces register sources holding short literals with immediate fields
/// where the ISA allows it; a separate micro-pass so selection stays
/// readable. Runs before register allocation to reduce register pressure.
pub fn fold_literal_operands(mfunc: &mut MFunction, config: &Config) {
    let (min, max) = config.instruction_format().short_literal_range();
    for block in &mut mfunc.blocks {
        // Map vreg -> literal while walking (block-local, version-safe
        // because MOVE #lit defs are the only entries and any redefinition
        // removes the entry).
        let mut lit: HashMap<u32, i64> = HashMap::new();
        for inst in &mut block.insts {
            if let MInst::Op(op) = inst {
                // Rewrite literal-eligible register sources. src1 stays a
                // register for stores/loads (the base); src2 is the usual
                // immediate slot, but commutative-ish ALU source 1
                // rewriting is also legal for the ISA (SRC1 may be a
                // literal), except for MOVIL.
                if op.opcode != Opcode::Movil {
                    for src in [&mut op.src1, &mut op.src2] {
                        if let MSrc::Gpr(r) = src {
                            if let Some(v) = lit.get(r) {
                                if *v >= min && *v <= max {
                                    *src = MSrc::Lit(*v);
                                }
                            }
                        }
                    }
                }
            }
            // Update the literal map.
            let def = inst.gpr_def();
            if let Some(d) = def {
                lit.remove(&d);
                if let MInst::Op(op) = inst {
                    if op.opcode == Opcode::Move && op.guard == 0 {
                        if let MSrc::Lit(v) = op.src1 {
                            lit.insert(d, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn select_one(f: FunctionDef, config: &Config) -> MFunction {
        let m = lower::lower(&Program::new().function(f)).unwrap();
        select(&m.functions[0], config).unwrap()
    }

    #[test]
    fn comparison_fuses_into_branch() {
        let f = FunctionDef::new("f", ["x"]).body([
            Stmt::if_(Expr::var("x").lt_s(Expr::lit(0)), [Stmt::ret(Expr::lit(1))]),
            Stmt::ret(Expr::lit(0)),
        ]);
        let mf = select_one(f, &Config::default());
        // The entry block ends in CondJump and contains a CMP but no MOVPG.
        let entry = &mf.blocks[0];
        assert!(matches!(entry.term, MTerm::CondJump { .. }));
        let has_movpg = entry
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .any(|op| op.opcode == Opcode::MovPg);
        assert!(!has_movpg, "fused comparison must not materialise a value");
    }

    #[test]
    fn comparison_as_value_materialises() {
        let f = FunctionDef::new("f", ["x", "y"])
            .body([Stmt::ret(Expr::var("x").lt_u(Expr::var("y")))]);
        let mf = select_one(f, &Config::default());
        let has_movpg = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .any(|op| op.opcode == Opcode::MovPg);
        assert!(has_movpg);
    }

    #[test]
    fn rotate_uses_custom_op_when_registered() {
        let config = Config::builder()
            .custom_op(epic_config::CustomOp::new(
                "rotr",
                CustomSemantics::RotateRight,
            ))
            .build()
            .unwrap();
        let f = FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x").rotr(Expr::lit(7)))]);
        let mf = select_one(f, &config);
        let custom = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .any(|op| matches!(op.opcode, Opcode::Custom(0)));
        assert!(custom);
    }

    #[test]
    fn rotate_expands_without_custom_op() {
        let f = FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x").rotr(Expr::lit(7)))]);
        let mf = select_one(f, &Config::default());
        let opcodes: Vec<Opcode> = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .map(|op| op.opcode)
            .collect();
        assert!(opcodes.contains(&Opcode::Shr));
        assert!(opcodes.contains(&Opcode::Shl));
        assert!(opcodes.contains(&Opcode::Or));
    }

    #[test]
    fn min_expands_to_predicated_moves_without_feature() {
        let config = Config::builder()
            .without_alu_feature(epic_config::AluFeature::MinMax)
            .build()
            .unwrap();
        let f =
            FunctionDef::new("f", ["a", "b"]).body([Stmt::ret(Expr::var("a").min(Expr::var("b")))]);
        let mf = select_one(f, &config);
        let guarded = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .filter(|op| op.guard != 0)
            .count();
        assert_eq!(guarded, 2, "two predicated moves expected");
    }

    #[test]
    fn division_without_divider_is_rejected() {
        let config = Config::builder()
            .without_alu_feature(epic_config::AluFeature::Divide)
            .build()
            .unwrap();
        let f = FunctionDef::new("f", ["a"]).body([Stmt::ret(Expr::var("a").div(Expr::lit(3)))]);
        let m = lower::lower(&Program::new().function(f)).unwrap();
        let err = select(&m.functions[0], &config).unwrap_err();
        assert!(matches!(err, CompileError::MissingFeature { .. }));
    }

    #[test]
    fn literal_operands_fold_into_immediates() {
        let f = FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x") + Expr::lit(5))]);
        let config = Config::default();
        let mut mf = select_one(f, &config);
        fold_literal_operands(&mut mf, &config);
        let add = mf.blocks[0]
            .insts
            .iter()
            .filter_map(MInst::as_op)
            .find(|op| op.opcode == Opcode::Add)
            .expect("an ADD survives");
        assert!(matches!(add.src2, MSrc::Lit(5)) || matches!(add.src1, MSrc::Lit(5)));
    }

    #[test]
    fn calls_become_pseudos_and_mark_the_function() {
        let callee = FunctionDef::new("g", ["x"]).body([Stmt::ret(Expr::var("x"))]);
        let caller =
            FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::call("g", [Expr::var("x")]))]);
        let m = lower::lower(&Program::new().function(callee).function(caller)).unwrap();
        let mf = select(m.function("f").unwrap(), &Config::default()).unwrap();
        assert!(mf.makes_calls);
        assert!(mf
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, MInst::Call { .. })));
    }
}
