; Demo source for `epic-lint --isx`: a rotate-left-by-7 written as the
; shift/or idiom, plus a masked byte extract. The miner should surface
; both as fused-candidate expression trees.
start:
    SHL r2, r1, #7
;;
    SHR r3, r1, #25
;;
    OR r4, r2, r3
;;
    XOR r5, r4, r1
;;
    SHR r6, r5, #16
;;
    AND r7, r6, #255
;;
    SW r7, r0, #0
;;
    HALT
;;
