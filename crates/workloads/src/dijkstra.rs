//! Dijkstra benchmark: all-pairs shortest paths over an adjacency matrix.
//!
//! "The Dijkstra benchmark finds the shortest path between every pair of
//! nodes in a large graph represented by an adjacency matrix using
//! Dijkstra's algorithm" (paper §5.2). The classic O(n²) scan
//! formulation runs once per source node; its inner loops are dominated
//! by loads, compares and short predicated updates — which is why Table 1
//! shows the benchmark nearly flat in the number of ALUs.

use crate::inputs::{self, GRAPH_INF};
use crate::{Scale, Workload};
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::Global;

/// Node counts per scale (the paper says only "a large graph").
#[must_use]
pub fn nodes(scale: Scale) -> u32 {
    match scale {
        Scale::Test => 10,
        Scale::Paper => 100,
    }
}

/// The input seed.
pub const SEED: u64 = 0xD150_0003;

/// Sentinel strictly greater than any reachable distance, used to seed
/// the minimum scan so an unreached node is still selectable.
pub const ABOVE_INF: u32 = GRAPH_INF + 1;

/// Runs the whole benchmark natively: the n×n all-pairs distance matrix.
#[must_use]
pub fn golden_all_pairs(adj: &[u32], n: u32) -> Vec<u32> {
    let n = n as usize;
    let mut out = vec![0u32; n * n];
    for src in 0..n {
        let mut dist = vec![GRAPH_INF; n];
        let mut visited = vec![false; n];
        dist[src] = 0;
        for _ in 0..n {
            // Select the unvisited node with the smallest distance
            // (strict comparison: ties keep the lowest index, exactly as
            // the AST program scans).
            let mut best = ABOVE_INF;
            let mut best_index = 0usize;
            for i in 0..n {
                if !visited[i] && dist[i] < best {
                    best = dist[i];
                    best_index = i;
                }
            }
            visited[best_index] = true;
            let base = dist[best_index];
            for j in 0..n {
                let nd = base.wrapping_add(adj[best_index * n + j]);
                if !visited[j] && nd < dist[j] {
                    dist[j] = nd;
                }
            }
        }
        out[src * n..(src + 1) * n].copy_from_slice(&dist);
    }
    out
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn lit(x: i64) -> Expr {
    Expr::lit(x)
}

/// Builds the benchmark at the given scale.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let n = nodes(scale);
    let adj = inputs::adjacency_matrix(n, SEED);
    let expected_words = golden_all_pairs(&adj, n);
    let expected = inputs::words_to_be_bytes(&expected_words);
    let nn = i64::from(n);

    let dist = |i: Expr| (Expr::global("dij_dist") + i * lit(4)).load_word();
    let visited = |i: Expr| (Expr::global("dij_visited") + i * lit(4)).load_word();

    let body = vec![Stmt::for_(
        "src",
        lit(0),
        lit(nn),
        [
            // Initialise dist and visited.
            Stmt::for_(
                "i",
                lit(0),
                lit(nn),
                [
                    Stmt::store_word(
                        Expr::global("dij_dist") + v("i") * lit(4),
                        lit(i64::from(GRAPH_INF)),
                    ),
                    Stmt::store_word(Expr::global("dij_visited") + v("i") * lit(4), lit(0)),
                ],
            ),
            Stmt::store_word(Expr::global("dij_dist") + v("src") * lit(4), lit(0)),
            // n rounds of select-minimum + relax.
            Stmt::for_(
                "round",
                lit(0),
                lit(nn),
                [
                    Stmt::let_("best", lit(i64::from(ABOVE_INF))),
                    Stmt::let_("bi", lit(0)),
                    Stmt::for_(
                        "i",
                        lit(0),
                        lit(nn),
                        [
                            Stmt::let_("di", dist(v("i"))),
                            // Unsigned compare mirrors the golden model; the predicated
                            // update is a textbook if-conversion target.
                            Stmt::if_(
                                visited(v("i")).eq(lit(0)) & v("di").lt_u(v("best")),
                                [Stmt::assign("best", v("di")), Stmt::assign("bi", v("i"))],
                            ),
                        ],
                    ),
                    Stmt::store_word(Expr::global("dij_visited") + v("bi") * lit(4), lit(1)),
                    Stmt::let_("base", dist(v("bi"))),
                    Stmt::let_("row", Expr::global("dij_adj") + v("bi") * lit(4 * nn)),
                    Stmt::for_(
                        "j",
                        lit(0),
                        lit(nn),
                        [
                            Stmt::let_("nd", v("base") + (v("row") + v("j") * lit(4)).load_word()),
                            Stmt::let_("dj", dist(v("j"))),
                            Stmt::if_(
                                visited(v("j")).eq(lit(0)) & v("nd").lt_u(v("dj")),
                                [Stmt::store_word(
                                    Expr::global("dij_dist") + v("j") * lit(4),
                                    v("nd"),
                                )],
                            ),
                        ],
                    ),
                ],
            ),
            // Emit the row of the all-pairs matrix.
            Stmt::for_(
                "i",
                lit(0),
                lit(nn),
                [Stmt::store_word(
                    Expr::global("dij_out") + (v("src") * lit(nn) + v("i")) * lit(4),
                    dist(v("i")),
                )],
            ),
        ],
    )];

    let program = Program::new()
        .global(Global::with_words("dij_adj", &adj))
        .global(Global::zeroed("dij_dist", n * 4))
        .global(Global::zeroed("dij_visited", n * 4))
        .global(Global::zeroed("dij_out", n * n * 4))
        .function(FunctionDef::new("dijkstra_main", [] as [&str; 0]).body(body));

    Workload {
        name: "dijkstra".to_owned(),
        description: format!("all-pairs Dijkstra over a {n}-node adjacency matrix"),
        program,
        entry: "dijkstra_main".to_owned(),
        output_global: "dij_out".to_owned(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{lower, Interpreter};

    #[test]
    fn golden_solves_a_known_graph() {
        // 0 -> 1 (2), 1 -> 2 (3), 0 -> 2 (10): best 0->2 is 5.
        let inf = GRAPH_INF;
        #[rustfmt::skip]
        let adj = vec![
            0,   2,  10,
            inf, 0,   3,
            inf, inf, 0,
        ];
        let d = golden_all_pairs(&adj, 3);
        assert_eq!(d[2], 5);
        assert_eq!(d[1], 2);
        assert_eq!(d[2 * 3], GRAPH_INF, "2 has no outgoing edges");
        assert_eq!(d[3 + 2], 3);
        for i in 0..3 {
            assert_eq!(d[i * 3 + i], 0);
        }
    }

    #[test]
    fn ast_program_matches_golden_on_interpreter() {
        let w = build(Scale::Test);
        let module = lower::lower(&w.program).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call(&w.entry, &[]).unwrap();
        w.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
            .unwrap();
    }
}
