//! SHA benchmark: SHA-256 of a PPM image.
//!
//! "The SHA benchmark calculates the SHA-256 secure hash of a 256 by 256
//! image in the PPM format" (paper §5.2). The program pads the message
//! in place (the buffer is allocated with room for the `0x80` marker and
//! the 64-bit length) and hashes every 64-byte block with the full
//! FIPS 180-2 compression function. The 64 rounds are written as a loop
//! of eight statically renamed rounds — the unrolling an EPIC compiler
//! needs to expose instruction-level parallelism to the replicated ALUs.

use crate::inputs;
use crate::{Scale, Workload};
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::Global;

/// Round constants (FIPS 180-2 §4.2.2).
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value (FIPS 180-2 §5.3.2).
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Image dimensions per scale.
#[must_use]
pub fn dimensions(scale: Scale) -> (u32, u32) {
    match scale {
        Scale::Test => (12, 12),
        Scale::Paper => (256, 256),
    }
}

/// The input seed (fixed so all runs agree).
pub const SEED: u64 = 0x5AD0_0001;

/// Computes SHA-256 of a message natively (the golden model).
#[must_use]
pub fn golden_sha256(message: &[u8]) -> [u32; 8] {
    let mut padded = message.to_vec();
    let bit_len = (message.len() as u64) * 8;
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut h = H0;
    let mut w = [0u32; 64];
    for block in padded.chunks(64) {
        for t in 0..16 {
            w[t] = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    h
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn lit(x: i64) -> Expr {
    Expr::lit(x)
}

fn rotr(e: Expr, n: i64) -> Expr {
    e.rotr(lit(n))
}

/// Builds the benchmark at the given scale.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let (width, height) = dimensions(scale);
    let message = inputs::ppm_image(width, height, SEED);
    let msg_len = message.len() as u32;
    let padded_len = (msg_len + 9).div_ceil(64) * 64;
    let n_blocks = padded_len / 64;

    let digest = golden_sha256(&message);
    let expected = inputs::words_to_be_bytes(&digest);

    // Input buffer with room for the in-program padding.
    let mut input_init = message;
    input_init.resize(padded_len as usize, 0);

    let mut body: Vec<Stmt> = Vec::new();

    // --- padding: 0x80 marker and the 64-bit message length ------------
    body.push(Stmt::store_byte(
        Expr::global("sha_input") + lit(i64::from(msg_len)),
        lit(0x80),
    ));
    let bit_len = u64::from(msg_len) * 8;
    body.push(Stmt::store_word(
        Expr::global("sha_input") + lit(i64::from(padded_len) - 8),
        lit((bit_len >> 32) as i64),
    ));
    body.push(Stmt::store_word(
        Expr::global("sha_input") + lit(i64::from(padded_len) - 4),
        lit((bit_len & 0xFFFF_FFFF) as i64),
    ));

    // --- hash state -----------------------------------------------------
    for (i, h) in H0.iter().enumerate() {
        body.push(Stmt::let_(format!("h{i}"), lit(i64::from(*h))));
    }

    // --- per-block loop --------------------------------------------------
    let mut block_body: Vec<Stmt> = vec![Stmt::let_(
        "base",
        Expr::global("sha_input") + v("blk") * lit(64),
    )];

    // W[0..16] from the message (big-endian loads match the word order).
    block_body.push(Stmt::for_(
        "t",
        lit(0),
        lit(16),
        [Stmt::store_word(
            Expr::global("sha_w") + v("t") * lit(4),
            (v("base") + v("t") * lit(4)).load_word(),
        )],
    ));
    // W[16..64] message schedule.
    block_body.push(Stmt::for_(
        "t",
        lit(16),
        lit(64),
        [
            Stmt::let_(
                "wa",
                (Expr::global("sha_w") + (v("t") - lit(2)) * lit(4)).load_word(),
            ),
            Stmt::let_(
                "wb",
                (Expr::global("sha_w") + (v("t") - lit(7)) * lit(4)).load_word(),
            ),
            Stmt::let_(
                "wc",
                (Expr::global("sha_w") + (v("t") - lit(15)) * lit(4)).load_word(),
            ),
            Stmt::let_(
                "wd",
                (Expr::global("sha_w") + (v("t") - lit(16)) * lit(4)).load_word(),
            ),
            Stmt::let_(
                "sig1",
                rotr(v("wa"), 17) ^ rotr(v("wa"), 19) ^ v("wa").shr(lit(10)),
            ),
            Stmt::let_(
                "sig0",
                rotr(v("wc"), 7) ^ rotr(v("wc"), 18) ^ v("wc").shr(lit(3)),
            ),
            Stmt::store_word(
                Expr::global("sha_w") + v("t") * lit(4),
                v("wd") + v("sig0") + v("wb") + v("sig1"),
            ),
        ],
    ));

    // Working variables.
    let names = ["va", "vb", "vc", "vd", "ve", "vf", "vg", "vh"];
    for (i, n) in names.iter().enumerate() {
        block_body.push(Stmt::let_(*n, v(&format!("h{i}"))));
    }

    // 64 rounds as 8 outer iterations of 8 statically renamed rounds —
    // after 8 rounds the role rotation returns to the identity.
    let mut octet: Vec<Stmt> = vec![Stmt::let_("koff", v("t8") * lit(4))];
    for r in 0..8usize {
        let var = |role: usize| names[(role + 8 - r) % 8]; // role 0=a .. 7=h
        let (a, b, c, e, f, g, h) = (var(0), var(1), var(2), var(4), var(5), var(6), var(7));
        let d = var(3);
        let kw_k = (Expr::global("sha_k") + v("koff") + lit((r * 4) as i64)).load_word();
        let kw_w = (Expr::global("sha_w") + v("koff") + lit((r * 4) as i64)).load_word();
        octet.push(Stmt::let_(
            format!("s1_{r}"),
            rotr(v(e), 6) ^ rotr(v(e), 11) ^ rotr(v(e), 25),
        ));
        octet.push(Stmt::let_(
            format!("ch_{r}"),
            (v(e) & v(f)) ^ (!v(e) & v(g)),
        ));
        octet.push(Stmt::let_(
            format!("t1_{r}"),
            v(h) + v(&format!("s1_{r}")) + v(&format!("ch_{r}")) + kw_k + kw_w,
        ));
        octet.push(Stmt::let_(
            format!("s0_{r}"),
            rotr(v(a), 2) ^ rotr(v(a), 13) ^ rotr(v(a), 22),
        ));
        octet.push(Stmt::let_(
            format!("mj_{r}"),
            (v(a) & v(b)) ^ (v(a) & v(c)) ^ (v(b) & v(c)),
        ));
        // h's variable becomes next round's a; d's variable becomes e.
        octet.push(Stmt::assign(
            h,
            v(&format!("t1_{r}")) + v(&format!("s0_{r}")) + v(&format!("mj_{r}")),
        ));
        octet.push(Stmt::assign(d, v(d) + v(&format!("t1_{r}"))));
    }
    octet.push(Stmt::assign("t8", v("t8") + lit(8)));
    block_body.push(Stmt::let_("t8", lit(0)));
    block_body.push(Stmt::while_(v("t8").lt_s(lit(64)), octet));

    for (i, n) in names.iter().enumerate() {
        block_body.push(Stmt::assign(format!("h{i}"), v(&format!("h{i}")) + v(n)));
    }
    body.push(Stmt::for_(
        "blk",
        lit(0),
        lit(i64::from(n_blocks)),
        block_body,
    ));

    // --- emit the digest -------------------------------------------------
    for i in 0..8usize {
        body.push(Stmt::store_word(
            Expr::global("sha_digest") + lit((i * 4) as i64),
            v(&format!("h{i}")),
        ));
    }

    let program = Program::new()
        .global(Global::with_bytes("sha_input", input_init))
        .global(Global::with_words("sha_k", &K))
        .global(Global::zeroed("sha_w", 64 * 4))
        .global(Global::zeroed("sha_digest", 32))
        .function(FunctionDef::new("sha_main", [] as [&str; 0]).body(body));

    Workload {
        name: "sha".to_owned(),
        description: format!(
            "SHA-256 of a {width}x{height} PPM image ({msg_len} bytes, {n_blocks} blocks)"
        ),
        program,
        entry: "sha_main".to_owned(),
        output_global: "sha_digest".to_owned(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{lower, Interpreter};

    #[test]
    fn golden_matches_fips_vector() {
        // FIPS 180-2 appendix B.1: SHA-256("abc").
        let digest = golden_sha256(b"abc");
        assert_eq!(
            digest,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
        // Appendix B.2: two-block message.
        let digest = golden_sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(digest[0], 0x248d6a61);
        assert_eq!(digest[7], 0x19db06c1);
    }

    #[test]
    fn ast_program_matches_golden_on_interpreter() {
        let w = build(Scale::Test);
        let module = lower::lower(&w.program).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call(&w.entry, &[]).unwrap();
        w.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
            .unwrap();
    }

    #[test]
    fn scales_differ_in_size_only() {
        let (tw, th) = dimensions(Scale::Test);
        let (pw, ph) = dimensions(Scale::Paper);
        assert!(pw * ph > tw * th);
        assert_eq!((pw, ph), (256, 256), "paper scale hashes a 256x256 image");
    }
}
