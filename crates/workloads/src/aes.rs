//! AES benchmark: iterated AES-128 encryption and decryption.
//!
//! "The AES benchmark encrypts 'Hello AES World!' 1000 times and then
//! decrypts it" (paper §5.2). The block is chained through the
//! iterations (`ct = E(ct)` repeated, then `pt = D(pt)` repeated), so the
//! final decryption output must equal the original plaintext — a strong
//! end-to-end check. Key expansion, the S-box rounds, `MixColumns` and
//! their inverses are all executed by the program itself, in the classic
//! table-driven style of 2000s AES software: S-boxes plus GF(2⁸)
//! multiplication tables (×2, ×3 for `MixColumns`; ×9, ×11, ×13, ×14 for
//! the inverse). Nearly every operation is therefore a byte lookup
//! through the single load/store unit — which is why Table 1 shows AES
//! gaining nothing from extra ALUs and staying a win for the SA-110.

use crate::{Scale, Workload};
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::Global;

/// The 16-byte plaintext from the paper.
pub const PLAINTEXT: &[u8; 16] = b"Hello AES World!";

/// The cipher key used by the reproduction (any fixed key works; the
/// paper does not publish one).
pub const KEY: &[u8; 16] = b"EPIC @ DATE 2004";

/// Iteration counts per scale.
#[must_use]
pub fn iterations(scale: Scale) -> u32 {
    match scale {
        Scale::Test => 4,
        Scale::Paper => 1000,
    }
}

/// The AES S-box (FIPS 197 §5.1.1).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (FIPS 197 §5.3.2).
pub const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
pub const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// A GF(2⁸) multiplication table (`table[x] = x · factor`), the lookup
/// form used by the table-driven cipher.
#[must_use]
pub fn gf_mul_table(factor: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (x, out) in t.iter_mut().enumerate() {
        *out = gf_mul(x as u8, factor);
    }
    t
}

// ----------------------------------------------------------------------
// Golden model
// ----------------------------------------------------------------------

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// Expands a 16-byte key into 44 round-key words (the golden model).
#[must_use]
pub fn golden_key_expansion(key: &[u8; 16]) -> [u32; 44] {
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp = temp.rotate_left(8);
            temp = u32::from_be_bytes([
                SBOX[(temp >> 24) as usize],
                SBOX[((temp >> 16) & 0xFF) as usize],
                SBOX[((temp >> 8) & 0xFF) as usize],
                SBOX[(temp & 0xFF) as usize],
            ]);
            temp ^= u32::from(RCON[i / 4 - 1]) << 24;
        }
        w[i] = w[i - 4] ^ temp;
    }
    w
}

fn add_round_key(s: &mut [u8; 16], w: &[u32; 44], round: usize) {
    for c in 0..4 {
        let word = w[round * 4 + c];
        for r in 0..4 {
            s[4 * c + r] ^= ((word >> (24 - 8 * r)) & 0xFF) as u8;
        }
    }
}

/// Encrypts one block (the golden model).
#[must_use]
pub fn golden_encrypt(block: &[u8; 16], w: &[u32; 44]) -> [u8; 16] {
    let mut s = *block;
    add_round_key(&mut s, w, 0);
    for round in 1..=10 {
        for b in s.iter_mut() {
            *b = SBOX[*b as usize];
        }
        // ShiftRows: s'[r + 4c] = s[r + 4((c + r) % 4)].
        let old = s;
        for c in 0..4 {
            for r in 0..4 {
                s[4 * c + r] = old[4 * ((c + r) % 4) + r];
            }
        }
        if round != 10 {
            for c in 0..4 {
                let (a0, a1, a2, a3) = (s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]);
                let t = a0 ^ a1 ^ a2 ^ a3;
                s[4 * c] = a0 ^ t ^ xtime(a0 ^ a1);
                s[4 * c + 1] = a1 ^ t ^ xtime(a1 ^ a2);
                s[4 * c + 2] = a2 ^ t ^ xtime(a2 ^ a3);
                s[4 * c + 3] = a3 ^ t ^ xtime(a3 ^ a0);
            }
        }
        add_round_key(&mut s, w, round);
    }
    s
}

fn gf_mul(a: u8, b: u8) -> u8 {
    let mut result = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            result ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    result
}

/// Decrypts one block (the golden model).
#[must_use]
pub fn golden_decrypt(block: &[u8; 16], w: &[u32; 44]) -> [u8; 16] {
    let mut s = *block;
    add_round_key(&mut s, w, 10);
    for round in (0..10).rev() {
        // InvShiftRows: s'[r + 4c] = s[r + 4((c + 4 - r) % 4)].
        let old = s;
        for c in 0..4 {
            for r in 0..4 {
                s[4 * c + r] = old[4 * ((c + 4 - r) % 4) + r];
            }
        }
        for b in s.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
        add_round_key(&mut s, w, round);
        if round != 0 {
            for c in 0..4 {
                let (a0, a1, a2, a3) = (s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]);
                s[4 * c] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
                s[4 * c + 1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
                s[4 * c + 2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
                s[4 * c + 3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
            }
        }
    }
    s
}

/// Runs the full benchmark computation natively: encrypt `n` times, then
/// decrypt `n` times; returns (final ciphertext, round-tripped plaintext).
#[must_use]
pub fn golden_chain(n: u32) -> ([u8; 16], [u8; 16]) {
    let w = golden_key_expansion(KEY);
    let mut block = *PLAINTEXT;
    for _ in 0..n {
        block = golden_encrypt(&block, &w);
    }
    let ct = block;
    for _ in 0..n {
        block = golden_decrypt(&block, &w);
    }
    (ct, block)
}

// ----------------------------------------------------------------------
// AST program
// ----------------------------------------------------------------------

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn lit(x: i64) -> Expr {
    Expr::lit(x)
}

pub(crate) fn s_name(i: usize) -> String {
    format!("s{i}")
}

pub(crate) fn sbox_lookup(table: &str, index: Expr) -> Expr {
    (Expr::global(table) + index).load_byte_u()
}

pub(crate) fn emit_add_round_key(stmts: &mut Vec<Stmt>, round_expr: &Expr) {
    // The round keys are stored as big-endian words, so byte `i` of the
    // 16-byte round key is simply `rk[round*16 + i]` — the byte-table
    // style every 2000s AES implementation used.
    stmts.push(Stmt::let_("koff", round_expr.clone() * lit(16)));
    stmts.push(Stmt::let_("kbase", Expr::global("aes_rk") + v("koff")));
    for i in 0..16usize {
        stmts.push(Stmt::assign(
            s_name(i),
            v(&s_name(i)) ^ (v("kbase") + lit(i as i64)).load_byte_u(),
        ));
    }
}

pub(crate) fn emit_sub_bytes(stmts: &mut Vec<Stmt>, table: &str) {
    for i in 0..16usize {
        stmts.push(Stmt::assign(s_name(i), sbox_lookup(table, v(&s_name(i)))));
    }
}

pub(crate) fn emit_shift_rows(stmts: &mut Vec<Stmt>, inverse: bool) {
    for c in 0..4usize {
        for r in 0..4usize {
            let src_c = if inverse {
                (c + 4 - r) % 4
            } else {
                (c + r) % 4
            };
            stmts.push(Stmt::let_(
                format!("t{}", 4 * c + r),
                v(&s_name(4 * src_c + r)),
            ));
        }
    }
    for i in 0..16usize {
        stmts.push(Stmt::assign(s_name(i), v(&format!("t{i}"))));
    }
}

/// `MixColumns` in the table-driven style: per output byte two GF-table
/// lookups and two plain XOR terms.
pub(crate) fn emit_mix_columns(stmts: &mut Vec<Stmt>) {
    for c in 0..4usize {
        let a = |r: usize| v(&s_name(4 * c + r));
        for r in 0..4usize {
            // s_r' = 2·a_r ^ 3·a_{r+1} ^ a_{r+2} ^ a_{r+3}
            stmts.push(Stmt::let_(
                format!("mc{c}_{r}"),
                sbox_lookup("aes_mul2", a(r))
                    ^ sbox_lookup("aes_mul3", a((r + 1) % 4))
                    ^ a((r + 2) % 4)
                    ^ a((r + 3) % 4),
            ));
        }
        for r in 0..4usize {
            stmts.push(Stmt::assign(s_name(4 * c + r), v(&format!("mc{c}_{r}"))));
        }
    }
}

/// Inverse `MixColumns`: four GF-table lookups per output byte
/// (×14, ×11, ×13, ×9) — the load-dominated inner loop of decryption.
fn emit_inv_mix_columns(stmts: &mut Vec<Stmt>) {
    let tables = ["aes_mul14", "aes_mul11", "aes_mul13", "aes_mul9"];
    for c in 0..4usize {
        let a = |r: usize| v(&s_name(4 * c + r));
        for r in 0..4usize {
            // Row r of the inverse matrix is [14,11,13,9] rotated right r.
            stmts.push(Stmt::let_(
                format!("imc{c}_{r}"),
                sbox_lookup(tables[0], a(r))
                    ^ sbox_lookup(tables[1], a((r + 1) % 4))
                    ^ sbox_lookup(tables[2], a((r + 2) % 4))
                    ^ sbox_lookup(tables[3], a((r + 3) % 4)),
            ));
        }
        for r in 0..4usize {
            stmts.push(Stmt::assign(s_name(4 * c + r), v(&format!("imc{c}_{r}"))));
        }
    }
}

pub(crate) fn emit_key_expansion(body: &mut Vec<Stmt>) {
    body.push(Stmt::for_(
        "i",
        lit(0),
        lit(4),
        [Stmt::store_word(
            Expr::global("aes_rk") + v("i") * lit(4),
            (Expr::global("aes_key") + v("i") * lit(4)).load_word(),
        )],
    ));
    body.push(Stmt::for_(
        "i",
        lit(4),
        lit(44),
        [
            Stmt::let_(
                "temp",
                (Expr::global("aes_rk") + (v("i") - lit(1)) * lit(4)).load_word(),
            ),
            Stmt::if_(
                (v("i") & lit(3)).eq(lit(0)),
                [
                    // RotWord.
                    Stmt::assign("temp", (v("temp") << lit(8)) | v("temp").shr(lit(24))),
                    // SubWord byte by byte.
                    Stmt::let_(
                        "sb0",
                        sbox_lookup("aes_sbox", v("temp").shr(lit(24)) & lit(0xff)),
                    ),
                    Stmt::let_(
                        "sb1",
                        sbox_lookup("aes_sbox", v("temp").shr(lit(16)) & lit(0xff)),
                    ),
                    Stmt::let_(
                        "sb2",
                        sbox_lookup("aes_sbox", v("temp").shr(lit(8)) & lit(0xff)),
                    ),
                    Stmt::let_("sb3", sbox_lookup("aes_sbox", v("temp") & lit(0xff))),
                    Stmt::let_(
                        "rc",
                        (Expr::global("aes_rcon") + v("i").shr(lit(2)) - lit(1)).load_byte_u(),
                    ),
                    Stmt::assign(
                        "temp",
                        ((v("sb0") ^ v("rc")) << lit(24))
                            | (v("sb1") << lit(16))
                            | (v("sb2") << lit(8))
                            | v("sb3"),
                    ),
                ],
            ),
            Stmt::store_word(
                Expr::global("aes_rk") + v("i") * lit(4),
                (Expr::global("aes_rk") + (v("i") - lit(4)) * lit(4)).load_word() ^ v("temp"),
            ),
        ],
    ));
}

/// Builds the benchmark at the given scale.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let n = iterations(scale);
    let (ct, pt) = golden_chain(n);
    let mut expected = Vec::with_capacity(32);
    expected.extend_from_slice(&ct);
    expected.extend_from_slice(&pt);

    let mut body: Vec<Stmt> = Vec::new();
    emit_key_expansion(&mut body);

    // Load the plaintext into the 16 state locals.
    for i in 0..16usize {
        body.push(Stmt::let_(
            s_name(i),
            (Expr::global("aes_block") + lit(i as i64)).load_byte_u(),
        ));
    }

    // Encrypt n times.
    let mut enc_body: Vec<Stmt> = Vec::new();
    emit_add_round_key(&mut enc_body, &lit(0));
    for round in 1..=10 {
        emit_sub_bytes(&mut enc_body, "aes_sbox");
        emit_shift_rows(&mut enc_body, false);
        if round != 10 {
            emit_mix_columns(&mut enc_body);
        }
        emit_add_round_key(&mut enc_body, &lit(round));
    }
    body.push(Stmt::for_("it", lit(0), lit(i64::from(n)), enc_body));

    // Record the final ciphertext.
    for i in 0..16usize {
        body.push(Stmt::store_byte(
            Expr::global("aes_out") + lit(i as i64),
            v(&s_name(i)),
        ));
    }

    // Decrypt n times.
    let mut dec_body: Vec<Stmt> = Vec::new();
    emit_add_round_key(&mut dec_body, &lit(10));
    for round in (0..10).rev() {
        emit_shift_rows(&mut dec_body, true);
        emit_sub_bytes(&mut dec_body, "aes_inv_sbox");
        emit_add_round_key(&mut dec_body, &lit(round));
        if round != 0 {
            emit_inv_mix_columns(&mut dec_body);
        }
    }
    body.push(Stmt::for_("it", lit(0), lit(i64::from(n)), dec_body));

    // Record the round-tripped plaintext.
    for i in 0..16usize {
        body.push(Stmt::store_byte(
            Expr::global("aes_out") + lit(16 + i as i64),
            v(&s_name(i)),
        ));
    }

    let program = Program::new()
        .global(Global::with_bytes("aes_key", KEY.to_vec()))
        .global(Global::with_bytes("aes_block", PLAINTEXT.to_vec()))
        .global(Global::with_bytes("aes_sbox", SBOX.to_vec()))
        .global(Global::with_bytes("aes_inv_sbox", INV_SBOX.to_vec()))
        .global(Global::with_bytes("aes_rcon", RCON.to_vec()))
        .global(Global::with_bytes("aes_mul2", gf_mul_table(2).to_vec()))
        .global(Global::with_bytes("aes_mul3", gf_mul_table(3).to_vec()))
        .global(Global::with_bytes("aes_mul9", gf_mul_table(9).to_vec()))
        .global(Global::with_bytes("aes_mul11", gf_mul_table(11).to_vec()))
        .global(Global::with_bytes("aes_mul13", gf_mul_table(13).to_vec()))
        .global(Global::with_bytes("aes_mul14", gf_mul_table(14).to_vec()))
        .global(Global::zeroed("aes_rk", 44 * 4))
        .global(Global::zeroed("aes_out", 32))
        .function(FunctionDef::new("aes_main", [] as [&str; 0]).body(body));

    Workload {
        name: "aes".to_owned(),
        description: format!("AES-128: encrypt 'Hello AES World!' {n}x, then decrypt {n}x"),
        program,
        entry: "aes_main".to_owned(),
        output_global: "aes_out".to_owned(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{lower, Interpreter};

    #[test]
    fn golden_matches_fips_197_vector() {
        // FIPS 197 appendix C.1.
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let w = golden_key_expansion(&key);
        let ct = golden_encrypt(&pt, &w);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        assert_eq!(golden_decrypt(&ct, &w), pt);
    }

    #[test]
    fn chain_round_trips() {
        let (ct, pt) = golden_chain(10);
        assert_ne!(&ct, PLAINTEXT);
        assert_eq!(&pt, PLAINTEXT, "N decryptions undo N encryptions");
    }

    #[test]
    fn ast_program_matches_golden_on_interpreter() {
        let w = build(Scale::Test);
        let module = lower::lower(&w.program).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call(&w.entry, &[]).unwrap();
        w.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
            .unwrap();
    }
}
