//! Many-core mesh workloads for the `epic-array` simulator.
//!
//! Each workload here is one IR program that every core of the mesh
//! runs; a core discovers its identity from the mailbox window (see
//! `epic_array::mailbox`) and picks its share of the work by striding
//! over a block/node space. Results funnel over the mesh to core 0,
//! whose final memory must equal a single-core scalar oracle — the
//! same golden models the Table 1 benchmarks check against.
//!
//! * [`dct`] — tiled DCT: every 8×8 block of the image is transformed
//!   by its owning core and shipped to core 0 (gather pattern);
//! * [`bfs`] — unit-weight single-source shortest paths by strict-BSP
//!   Bellman–Ford: per superstep each core relaxes its owned nodes'
//!   out-edges, broadcasts its distance array to every peer, and
//!   min-merges what it receives (all-to-all frontier exchange);
//! * [`aes_ctr`] — AES-128 in counter mode: the block space is sharded
//!   per core, each core expands the key itself and encrypts its
//!   counters, ciphertext funnels to core 0 (embarrassingly parallel).
//!
//! # Why every mailbox status transition hides behind a call
//!
//! The compiler's scheduler freely reorders *independent* loads and
//! stores (same base, different offsets) and speculates loads above
//! branches — but nothing moves across a call boundary. A mailbox
//! commit (`TX_STATUS = 1`) that drifted above its payload stores, or
//! a release (`RX_STATUS = 0`) that drifted above the payload loads,
//! would hand the harness a half-written message. So the status words
//! are only ever touched inside tiny dedicated functions
//! ([`helper_functions`]), never inline-hinted: the surrounding calls
//! pin the payload accesses on the correct side of the handshake.
//!
//! Every program also runs standalone (interpreter, single simulator):
//! an unpoked mailbox reads all zeroes, the core clamps `ncores` to 1,
//! owns all the work and never touches the TX/RX machinery.

use crate::inputs;
use crate::{aes, dct, Scale, Workload};
use epic_array::mailbox;
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::Global;

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn lit(x: i64) -> Expr {
    Expr::lit(x)
}

/// Address of a mailbox word (`off` is a word offset).
fn mb(off: u32) -> Expr {
    Expr::global(mailbox::GLOBAL) + lit(i64::from(off * 4))
}

/// The mailbox global every mesh program must declare.
fn mailbox_global() -> Global {
    Global::zeroed(mailbox::GLOBAL, mailbox::MAILBOX_BYTES)
}

/// The shared mailbox-protocol helpers. None are inline-hinted: their
/// call boundaries are what orders the handshake (module docs).
fn helper_functions() -> Vec<FunctionDef> {
    vec![
        // 1 when the TX mailbox is free for staging.
        FunctionDef::new("mesh_tx_free", [] as [&str; 0])
            .body([Stmt::ret(mb(mailbox::TX_STATUS).load_word().eq(lit(0)))]),
        // Commit a staged payload of `len` words to core `dst`. The
        // nested call keeps the status store after the header stores.
        FunctionDef::new("mesh_commit", ["dst", "len"]).body([
            Stmt::store_word(mb(mailbox::TX_DEST), v("dst")),
            Stmt::store_word(mb(mailbox::TX_LEN), v("len")),
            Stmt::call("mesh_commit_status", []),
            Stmt::ret_void(),
        ]),
        FunctionDef::new("mesh_commit_status", [] as [&str; 0]).body([
            Stmt::store_word(mb(mailbox::TX_STATUS), lit(1)),
            Stmt::ret_void(),
        ]),
        // Non-zero when a delivery is waiting in the RX mailbox.
        FunctionDef::new("mesh_rx_ready", [] as [&str; 0])
            .body([Stmt::ret(mb(mailbox::RX_STATUS).load_word())]),
        // Free the RX mailbox for the next delivery.
        FunctionDef::new("mesh_rx_release", [] as [&str; 0]).body([
            Stmt::store_word(mb(mailbox::RX_STATUS), lit(0)),
            Stmt::ret_void(),
        ]),
    ]
}

/// Emits the identity prologue: `me`, `ncores` (clamped to 1 so the
/// program also runs standalone where the mailbox reads zero).
fn emit_identity(body: &mut Vec<Stmt>) {
    body.push(Stmt::let_("me", mb(mailbox::CORE_ID).load_word()));
    body.push(Stmt::let_(
        "ncores",
        mb(mailbox::MESH_WIDTH).load_word() * mb(mailbox::MESH_HEIGHT).load_word(),
    ));
    body.push(Stmt::if_(
        v("ncores").eq(lit(0)),
        [Stmt::assign("ncores", lit(1))],
    ));
}

/// Emits a blocking wait for a free TX mailbox. `drain` statements run
/// every poll iteration (pass the RX drain for all-to-all protocols to
/// stay deadlock-free; senders that never receive pass nothing).
fn emit_wait_tx(body: &mut Vec<Stmt>, drain: Vec<Stmt>) {
    body.push(Stmt::while_(
        Expr::call("mesh_tx_free", []).eq(lit(0)),
        drain,
    ));
}

/// Emits a blocking wait for an RX delivery. After this the payload
/// can be read with plain loads; finish with `mesh_rx_release`.
fn emit_wait_rx(body: &mut Vec<Stmt>) {
    body.push(Stmt::while_(Expr::call("mesh_rx_ready", []).eq(lit(0)), []));
}

// ----------------------------------------------------------------------
// Tiled DCT
// ----------------------------------------------------------------------

/// Mesh DCT image dimensions per scale (multiples of 8).
#[must_use]
pub fn dct_dimensions(scale: Scale) -> (u32, u32) {
    match scale {
        Scale::Test => (32, 32),
        Scale::Paper => (256, 256),
    }
}

/// Tiled DCT over a full image: block `b` is owned by core
/// `b % ncores`; workers roundtrip their blocks and ship the
/// reconstructed pixels to core 0 as `[b, 16 packed words]`.
#[must_use]
pub fn dct(scale: Scale) -> Workload {
    let (width, height) = dct_dimensions(scale);
    let ppm = inputs::ppm_image(width, height, dct::SEED);
    let gray = inputs::grayscale_from_ppm(&ppm, width, height);
    let expected = dct::golden_image(&gray, width, height);

    let w = i64::from(width);
    let blocks_x = i64::from(width / 8);
    let nblocks = blocks_x * i64::from(height / 8);

    // dct_block(by, bx): roundtrip one 8x8 block in place.
    let block_fn = FunctionDef::new("dct_block", ["by", "bx"]).body(dct::emit_block_body(width));

    // Packed row r of block (by, bx) starts at this byte offset of
    // dct_output; rows are two big-endian words (8-multiple offsets,
    // so word loads/stores are aligned).
    let row_addr = |r: i64| {
        Expr::global("dct_output") + (v("by") * lit(8) + lit(r)) * lit(w) + v("bx") * lit(8)
    };

    let mut body = Vec::new();
    emit_identity(&mut body);

    // Every core transforms its own blocks; workers ship each block to
    // core 0 as soon as it is done.
    let mut own_loop = vec![
        Stmt::let_("by", v("b").div(lit(blocks_x))),
        Stmt::let_("bx", v("b").rem(lit(blocks_x))),
        Stmt::call("dct_block", [v("by"), v("bx")]),
    ];
    let mut send = Vec::new();
    // Senders never receive, so the plain TX wait cannot deadlock.
    emit_wait_tx(&mut send, vec![]);
    send.push(Stmt::store_word(mb(mailbox::TX_DATA), v("b")));
    for r in 0..8i64 {
        for half in 0..2i64 {
            send.push(Stmt::store_word(
                mb(mailbox::TX_DATA + 1) + lit((r * 2 + half) * 4),
                (row_addr(r) + lit(half * 4)).load_word(),
            ));
        }
    }
    send.push(Stmt::call("mesh_commit", [lit(0), lit(17)]));
    own_loop.push(Stmt::if_(v("me").ne(lit(0)), send));
    own_loop.push(Stmt::assign("b", v("b") + v("ncores")));
    body.push(Stmt::let_("b", v("me")));
    body.push(Stmt::while_(v("b").lt_s(lit(nblocks)), own_loop));

    // Core 0 gathers the blocks it does not own.
    let mut recv = Vec::new();
    emit_wait_rx(&mut recv);
    recv.push(Stmt::let_("b", mb(mailbox::RX_DATA).load_word()));
    recv.push(Stmt::let_("by", v("b").div(lit(blocks_x))));
    recv.push(Stmt::let_("bx", v("b").rem(lit(blocks_x))));
    for r in 0..8i64 {
        for half in 0..2i64 {
            recv.push(Stmt::store_word(
                row_addr(r) + lit(half * 4),
                (mb(mailbox::RX_DATA + 1) + lit((r * 2 + half) * 4)).load_word(),
            ));
        }
    }
    recv.push(Stmt::call("mesh_rx_release", []));
    // Core 0 owns ceil(nblocks / ncores) blocks and receives the rest.
    let own = (lit(nblocks) + v("ncores") - lit(1)).div(v("ncores"));
    body.push(Stmt::if_(
        v("me").eq(lit(0)),
        [
            Stmt::let_("expect", lit(nblocks) - own),
            Stmt::let_("got", lit(0)),
            Stmt::while_(v("got").lt_s(v("expect")), {
                let mut r = recv;
                r.push(Stmt::assign("got", v("got") + lit(1)));
                r
            }),
        ],
    ));

    let mut program = Program::new()
        .global(mailbox_global())
        .global(Global::with_bytes("dct_input", gray))
        .global(Global::zeroed("dct_tmp", 64 * 4))
        .global(Global::zeroed("dct_freq", 64 * 4))
        .global(Global::zeroed("dct_tmp2", 64 * 4))
        .global(Global::zeroed("dct_output", width * height))
        .function(block_fn)
        .function(FunctionDef::new("mesh_dct_main", [] as [&str; 0]).body(body));
    for f in helper_functions() {
        program = program.function(f);
    }

    Workload {
        name: "mesh_dct".to_owned(),
        description: format!(
            "tiled 8x8 DCT of a {width}x{height} image, one block stripe per core"
        ),
        program,
        entry: "mesh_dct_main".to_owned(),
        output_global: "dct_output".to_owned(),
        expected,
    }
}

// ----------------------------------------------------------------------
// BFS (unit-weight SSSP) with all-to-all frontier exchange
// ----------------------------------------------------------------------

/// Mesh BFS node counts per scale (distance array + header must fit
/// one message: n ≤ MAX_PAYLOAD_WORDS).
#[must_use]
pub fn bfs_nodes(scale: Scale) -> u32 {
    match scale {
        Scale::Test => 16,
        Scale::Paper => 24,
    }
}

/// The BFS input seed.
pub const BFS_SEED: u64 = 0xBF50_0001;

/// Unit-weight single-source distances from node 0 over the directed
/// graph `adj` (edge iff the entry is not `GRAPH_INF`; the golden
/// model).
#[must_use]
pub fn golden_bfs(adj: &[u32], n: u32) -> Vec<u32> {
    let n = n as usize;
    let mut dist = vec![inputs::GRAPH_INF; n];
    dist[0] = 0;
    // Bellman–Ford with unit weights: settled after n-1 sweeps.
    for _ in 1..n {
        for u in 0..n {
            if dist[u] == inputs::GRAPH_INF {
                continue;
            }
            for vtx in 0..n {
                if u != vtx && adj[u * n + vtx] != inputs::GRAPH_INF {
                    dist[vtx] = dist[vtx].min(dist[u] + 1);
                }
            }
        }
    }
    dist
}

/// Strict-BSP parallel BFS: node `u` is owned by core `u % ncores`;
/// each superstep every core relaxes its owned nodes' out-edges over
/// its local distance array, sends the full array to every peer, and
/// blocks until it has min-merged one round-`r` array from each peer
/// (counted per sender, so supersteps stay aligned). `n` supersteps
/// propagate any shortest path. Core 0 then publishes its distances.
#[must_use]
pub fn bfs(scale: Scale) -> Workload {
    let n = bfs_nodes(scale);
    let adj = inputs::adjacency_matrix(n, BFS_SEED);
    let dist0 = golden_bfs(&adj, n);
    let expected = inputs::words_to_be_bytes(&dist0);

    let inf = i64::from(inputs::GRAPH_INF);
    let nn = i64::from(n);

    let mut init = vec![inputs::GRAPH_INF; n as usize];
    init[0] = 0;

    // bfs_merge(): min-merge the delivered distance array into
    // bfs_dist and count the sender's round. Payload reads stay inside
    // this call, before the caller's mesh_rx_release.
    let merge_fn = FunctionDef::new("bfs_merge", [] as [&str; 0]).body([
        Stmt::let_("src", mb(mailbox::RX_SRC).load_word()),
        Stmt::for_(
            "k",
            lit(0),
            lit(nn),
            [
                Stmt::let_("da", Expr::global("bfs_dist") + v("k") * lit(4)),
                Stmt::store_word(
                    v("da"),
                    v("da")
                        .load_word()
                        .min((mb(mailbox::RX_DATA) + v("k") * lit(4)).load_word()),
                ),
            ],
        ),
        Stmt::let_("sa", Expr::global("bfs_seen") + v("src") * lit(4)),
        Stmt::store_word(v("sa"), v("sa").load_word() + lit(1)),
        Stmt::ret_void(),
    ]);

    // bfs_drain(): consume every waiting delivery. Called from every
    // blocking wait so the all-to-all exchange cannot deadlock.
    let drain_fn = FunctionDef::new("bfs_drain", [] as [&str; 0]).body([
        Stmt::while_(
            Expr::call("mesh_rx_ready", []).ne(lit(0)),
            [
                Stmt::call("bfs_merge", []),
                Stmt::call("mesh_rx_release", []),
            ],
        ),
        Stmt::ret_void(),
    ]);

    // bfs_all_seen(round, me, ncores): 1 once every peer's counter has
    // reached `round`.
    let seen_fn = FunctionDef::new("bfs_all_seen", ["round", "me", "ncores"]).body([
        Stmt::let_("ok", lit(1)),
        Stmt::for_(
            "c",
            lit(0),
            v("ncores"),
            [Stmt::if_(
                v("c").ne(v("me")),
                [Stmt::if_(
                    (Expr::global("bfs_seen") + v("c") * lit(4))
                        .load_word()
                        .lt_s(v("round")),
                    [Stmt::assign("ok", lit(0))],
                )],
            )],
        ),
        Stmt::ret(v("ok")),
    ]);

    let mut body = Vec::new();
    emit_identity(&mut body);

    // One superstep: relax, broadcast, then wait for all peers.
    let relax = Stmt::while_(
        v("u").lt_s(lit(nn)),
        [
            Stmt::let_(
                "du",
                (Expr::global("bfs_dist") + v("u") * lit(4)).load_word(),
            ),
            Stmt::for_(
                "t",
                lit(0),
                lit(nn),
                [Stmt::if_(
                    (Expr::global("bfs_adj") + (v("u") * lit(nn) + v("t")) * lit(4))
                        .load_word()
                        .ne(lit(inf))
                        & v("u").ne(v("t")),
                    [
                        Stmt::let_("ta", Expr::global("bfs_dist") + v("t") * lit(4)),
                        Stmt::store_word(v("ta"), v("ta").load_word().min(v("du") + lit(1))),
                    ],
                )],
            ),
            Stmt::assign("u", v("u") + v("ncores")),
        ],
    );

    let mut send_one = Vec::new();
    emit_wait_tx(&mut send_one, vec![Stmt::call("bfs_drain", [])]);
    send_one.push(Stmt::for_(
        "k",
        lit(0),
        lit(nn),
        [Stmt::store_word(
            mb(mailbox::TX_DATA) + v("k") * lit(4),
            (Expr::global("bfs_dist") + v("k") * lit(4)).load_word(),
        )],
    ));
    send_one.push(Stmt::call("mesh_commit", [v("dst"), lit(nn)]));

    let broadcast = Stmt::for_(
        "dst",
        lit(0),
        v("ncores"),
        [Stmt::if_(v("dst").ne(v("me")), send_one)],
    );

    let barrier = Stmt::while_(
        Expr::call("bfs_all_seen", [v("round"), v("me"), v("ncores")]).eq(lit(0)),
        [Stmt::call("bfs_drain", [])],
    );

    body.push(Stmt::for_(
        "round",
        lit(1),
        lit(nn) + lit(1),
        [Stmt::let_("u", v("me")), relax, broadcast, barrier],
    ));

    // Core 0 publishes the converged distances.
    body.push(Stmt::if_(
        v("me").eq(lit(0)),
        [Stmt::for_(
            "k",
            lit(0),
            lit(nn),
            [Stmt::store_word(
                Expr::global("bfs_out") + v("k") * lit(4),
                (Expr::global("bfs_dist") + v("k") * lit(4)).load_word(),
            )],
        )],
    ));

    let mut program = Program::new()
        .global(mailbox_global())
        .global(Global::with_words("bfs_adj", &adj))
        .global(Global::with_words("bfs_dist", &init))
        .global(Global::zeroed("bfs_seen", 64 * 4))
        .global(Global::zeroed("bfs_out", n * 4))
        .function(merge_fn)
        .function(drain_fn)
        .function(seen_fn)
        .function(FunctionDef::new("mesh_bfs_main", [] as [&str; 0]).body(body));
    for f in helper_functions() {
        program = program.function(f);
    }

    Workload {
        name: "mesh_bfs".to_owned(),
        description: format!(
            "strict-BSP unit-weight BFS over a {n}-node graph, all-to-all frontier exchange"
        ),
        program,
        entry: "mesh_bfs_main".to_owned(),
        output_global: "bfs_out".to_owned(),
        expected,
    }
}

// ----------------------------------------------------------------------
// AES-CTR streams
// ----------------------------------------------------------------------

/// Mesh AES-CTR block counts per scale.
#[must_use]
pub fn aes_ctr_blocks(scale: Scale) -> u32 {
    match scale {
        Scale::Test => 16,
        Scale::Paper => 256,
    }
}

/// The 12-byte CTR nonce (the counter block is `nonce ‖ be32(b)`).
pub const CTR_NONCE: [u8; 12] = *b"EPIC-CTR-IV.";

/// The deterministic plaintext stream (xorshift bytes).
#[must_use]
pub fn ctr_plaintext(nblocks: u32) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..nblocks * 16)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// The expected AES-128-CTR ciphertext (the golden model).
#[must_use]
pub fn golden_ctr(nblocks: u32) -> Vec<u8> {
    let w = aes::golden_key_expansion(aes::KEY);
    let pt = ctr_plaintext(nblocks);
    let mut out = Vec::with_capacity(pt.len());
    for b in 0..nblocks {
        let mut counter = [0u8; 16];
        counter[..12].copy_from_slice(&CTR_NONCE);
        counter[12..].copy_from_slice(&b.to_be_bytes());
        let ks = aes::golden_encrypt(&counter, &w);
        for i in 0..16 {
            out.push(pt[(b * 16 + i as u32) as usize] ^ ks[i]);
        }
    }
    out
}

/// AES-128-CTR sharded per core: every core expands the key itself,
/// encrypts the counter blocks it owns (`b % ncores == me`) and XORs
/// the keystream into the plaintext; workers ship each ciphertext
/// block to core 0 as `[b, 4 words]`.
#[must_use]
pub fn aes_ctr(scale: Scale) -> Workload {
    let nblocks = aes_ctr_blocks(scale);
    let expected = golden_ctr(nblocks);
    let pt = ctr_plaintext(nblocks);
    let nb = i64::from(nblocks);

    // ctr_block(b): keystream = E(nonce ‖ be32(b)), ciphertext into
    // ctr_out[b*16..]. The AES rounds reuse the Table 1 benchmark's
    // emitters (state in locals s0..s15, table-driven rounds).
    let mut enc = Vec::new();
    for (i, byte) in CTR_NONCE.iter().enumerate() {
        enc.push(Stmt::let_(aes::s_name(i), lit(i64::from(*byte))));
    }
    enc.push(Stmt::let_(aes::s_name(12), v("b").shr(lit(24)) & lit(0xff)));
    enc.push(Stmt::let_(aes::s_name(13), v("b").shr(lit(16)) & lit(0xff)));
    enc.push(Stmt::let_(aes::s_name(14), v("b").shr(lit(8)) & lit(0xff)));
    enc.push(Stmt::let_(aes::s_name(15), v("b") & lit(0xff)));
    aes::emit_add_round_key(&mut enc, &lit(0));
    for round in 1..=10 {
        aes::emit_sub_bytes(&mut enc, "aes_sbox");
        aes::emit_shift_rows(&mut enc, false);
        if round != 10 {
            aes::emit_mix_columns(&mut enc);
        }
        aes::emit_add_round_key(&mut enc, &lit(round));
    }
    enc.push(Stmt::let_("obase", v("b") * lit(16)));
    for i in 0..16usize {
        enc.push(Stmt::store_byte(
            Expr::global("ctr_out") + v("obase") + lit(i as i64),
            v(&aes::s_name(i))
                ^ (Expr::global("ctr_pt") + v("obase") + lit(i as i64)).load_byte_u(),
        ));
    }
    enc.push(Stmt::ret_void());
    let block_fn = FunctionDef::new("ctr_block", ["b"]).body(enc);

    let mut body = Vec::new();
    emit_identity(&mut body);
    aes::emit_key_expansion(&mut body);

    let mut own_loop = vec![Stmt::call("ctr_block", [v("b")])];
    let mut send = Vec::new();
    emit_wait_tx(&mut send, vec![]);
    send.push(Stmt::store_word(mb(mailbox::TX_DATA), v("b")));
    for k in 0..4i64 {
        send.push(Stmt::store_word(
            mb(mailbox::TX_DATA + 1) + lit(k * 4),
            (Expr::global("ctr_out") + v("b") * lit(16) + lit(k * 4)).load_word(),
        ));
    }
    send.push(Stmt::call("mesh_commit", [lit(0), lit(5)]));
    own_loop.push(Stmt::if_(v("me").ne(lit(0)), send));
    own_loop.push(Stmt::assign("b", v("b") + v("ncores")));
    body.push(Stmt::let_("b", v("me")));
    body.push(Stmt::while_(v("b").lt_s(lit(nb)), own_loop));

    let mut recv = Vec::new();
    emit_wait_rx(&mut recv);
    recv.push(Stmt::let_("rb", mb(mailbox::RX_DATA).load_word()));
    for k in 0..4i64 {
        recv.push(Stmt::store_word(
            Expr::global("ctr_out") + v("rb") * lit(16) + lit(k * 4),
            (mb(mailbox::RX_DATA + 1) + lit(k * 4)).load_word(),
        ));
    }
    recv.push(Stmt::call("mesh_rx_release", []));
    let own = (lit(nb) + v("ncores") - lit(1)).div(v("ncores"));
    body.push(Stmt::if_(
        v("me").eq(lit(0)),
        [
            Stmt::let_("expect", lit(nb) - own),
            Stmt::let_("got", lit(0)),
            Stmt::while_(v("got").lt_s(v("expect")), {
                let mut r = recv;
                r.push(Stmt::assign("got", v("got") + lit(1)));
                r
            }),
        ],
    ));

    let mut program = Program::new()
        .global(mailbox_global())
        .global(Global::with_bytes("aes_key", aes::KEY.to_vec()))
        .global(Global::with_bytes("aes_sbox", aes::SBOX.to_vec()))
        .global(Global::with_bytes("aes_rcon", aes::RCON.to_vec()))
        .global(Global::with_bytes(
            "aes_mul2",
            aes::gf_mul_table(2).to_vec(),
        ))
        .global(Global::with_bytes(
            "aes_mul3",
            aes::gf_mul_table(3).to_vec(),
        ))
        .global(Global::zeroed("aes_rk", 44 * 4))
        .global(Global::with_bytes("ctr_pt", pt))
        .global(Global::zeroed("ctr_out", nblocks * 16))
        .function(block_fn)
        .function(FunctionDef::new("mesh_aesctr_main", [] as [&str; 0]).body(body));
    for f in helper_functions() {
        program = program.function(f);
    }

    Workload {
        name: "mesh_aesctr".to_owned(),
        description: format!("AES-128-CTR over {nblocks} blocks, block space sharded per core"),
        program,
        entry: "mesh_aesctr_main".to_owned(),
        output_global: "ctr_out".to_owned(),
        expected,
    }
}

/// All mesh workloads at the given scale.
#[must_use]
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![dct(scale), bfs(scale), aes_ctr(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{lower, Interpreter};

    /// Every mesh program also runs standalone: the mailbox reads
    /// zero, the core clamps to a 1×1 "mesh" and does all the work.
    #[test]
    fn mesh_programs_match_golden_standalone() {
        for w in all(Scale::Test) {
            let module = lower::lower(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut interp = Interpreter::new(&module);
            interp
                .call(&w.entry, &[])
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            w.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn golden_bfs_has_source_zero_and_monotone_frontier() {
        let n = bfs_nodes(Scale::Test);
        let adj = inputs::adjacency_matrix(n, BFS_SEED);
        let dist = golden_bfs(&adj, n);
        assert_eq!(dist[0], 0);
        // Some node must be directly reachable in this dense graph.
        assert!(dist.iter().any(|&d| d == 1));
        // Any finite distance d > 0 needs a predecessor at d - 1.
        for (t, &d) in dist.iter().enumerate() {
            if d == 0 || d == inputs::GRAPH_INF {
                continue;
            }
            let n = n as usize;
            assert!(
                (0..n).any(|u| dist[u] == d - 1 && u != t && adj[u * n + t] != inputs::GRAPH_INF),
                "node {t} at distance {d} lacks a predecessor"
            );
        }
    }

    #[test]
    fn ctr_golden_is_a_keystream_xor() {
        let nblocks = aes_ctr_blocks(Scale::Test);
        let ct = golden_ctr(nblocks);
        let pt = ctr_plaintext(nblocks);
        assert_eq!(ct.len(), pt.len());
        // Distinct counter blocks give distinct keystream blocks.
        let ks: Vec<u8> = ct.iter().zip(&pt).map(|(c, p)| c ^ p).collect();
        assert_ne!(ks[0..16], ks[16..32]);
    }
}
