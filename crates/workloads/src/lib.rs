//! The paper's benchmark suite (Table 1): SHA, AES, DCT and Dijkstra.
//!
//! Each benchmark is written **once** in the `epic-ir` AST frontend — the
//! role of the C sources fed to Trimaran — and executes unmodified on the
//! reference interpreter, the EPIC cycle-level simulator and the SA-110
//! baseline. Each module also contains a *golden* native-Rust
//! implementation of the same computation; differential tests demand
//! bit-identical outputs from all executions.
//!
//! The paper's operation of the benchmarks (§5.2):
//!
//! * **SHA** — "calculates the SHA-256 secure hash of a 256 by 256 image
//!   in the PPM format";
//! * **AES** — "encrypts 'Hello AES World!' 1000 times and then decrypts
//!   it" (AES-128; we chain the block through the iterations so the
//!   round-trip is checkable);
//! * **DCT** — "fixed-point Discrete Cosine Transform (DCT) encoding and
//!   decoding of a 256 by 256 image in the PPM format";
//! * **Dijkstra** — "finds the shortest path between every pair of nodes
//!   in a large graph represented by an adjacency matrix".
//!
//! The original images and graphs are not published; [`inputs`] generates
//! deterministic synthetic equivalents (the kernels are data-independent,
//! so cycle counts depend on input *size* only). [`Scale::Paper`]
//! reproduces the paper's sizes; [`Scale::Test`] keeps CI fast.
//!
//! # Examples
//!
//! ```
//! use epic_workloads::{dct, Scale};
//! use epic_ir::{lower, Interpreter};
//!
//! let workload = dct::build(Scale::Test);
//! let module = lower::lower(&workload.program)?;
//! let mut interp = Interpreter::new(&module);
//! interp.call(&workload.entry, &[])?;
//! workload.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
//!     .expect("interpreter output matches the golden model");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod dct;
pub mod dijkstra;
pub mod inputs;
pub mod mesh;
pub mod sha;

use epic_ir::ast::Program;

/// Problem sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for fast tests (same code paths, smaller loops).
    Test,
    /// The paper's sizes: 256×256 images, 1000 AES iterations, a
    /// 100-node graph.
    Paper,
}

/// A benchmark instance: program, entry point and expected output.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (`sha`, `aes`, `dct`, `dijkstra`).
    pub name: String,
    /// One-line description including the active scale.
    pub description: String,
    /// The AST program (lower with [`epic_ir::lower::lower`]).
    pub program: Program,
    /// Zero-argument entry function.
    pub entry: String,
    /// Name of the global holding the result.
    pub output_global: String,
    /// Expected bytes of that global, from the golden model.
    pub expected: Vec<u8>,
}

impl Workload {
    /// Inline hints collected from the program (pass to the compiler).
    #[must_use]
    pub fn inline_hints(&self) -> Vec<String> {
        epic_ir::lower::inline_hints(&self.program)
    }

    /// Verifies an execution by reading the output global through the
    /// provided memory accessor and comparing with the golden bytes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch (offset and bytes) or
    /// whatever error the accessor produced.
    pub fn verify_memory<E: std::fmt::Display>(
        &self,
        read: impl Fn(u32, u32) -> Result<Vec<u8>, E>,
    ) -> Result<(), String> {
        let module =
            epic_ir::lower::lower(&self.program).map_err(|e| format!("lowering failed: {e}"))?;
        let layout = module.layout().map_err(|e| format!("layout failed: {e}"))?;
        let base = layout
            .address_of(&self.output_global)
            .ok_or_else(|| format!("no global named `{}`", self.output_global))?;
        let actual = read(base, self.expected.len() as u32).map_err(|e| e.to_string())?;
        if actual == self.expected {
            return Ok(());
        }
        let first = actual
            .iter()
            .zip(&self.expected)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        Err(format!(
            "{}: output differs from the golden model at byte {first}: got {:#04x}, expected {:#04x}",
            self.name, actual[first], self.expected[first]
        ))
    }

    /// Data-memory bytes this workload's module needs.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to lower (workload construction is
    /// tested).
    #[must_use]
    pub fn memory_size(&self) -> u32 {
        let module = epic_ir::lower::lower(&self.program).expect("workload lowers");
        module.layout().expect("workload lays out").memory_size()
    }
}

/// Builds all four benchmarks at the given scale, in Table 1 order.
#[must_use]
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        sha::build(scale),
        aes::build(scale),
        dct::build(scale),
        dijkstra::build(scale),
    ]
}
