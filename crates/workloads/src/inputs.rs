//! Deterministic synthetic inputs.
//!
//! The paper's 256×256 PPM images and "large graph" are not published.
//! These generators produce deterministic equivalents from fixed seeds;
//! since all four kernels are data-independent (their control flow and
//! memory traffic depend only on input sizes), any same-size input
//! exercises the same cycle behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// "Infinite" distance for absent graph edges (fits comfortably in
/// additions without overflow).
pub const GRAPH_INF: u32 = 0x3FFF_FFFF;

/// A binary PPM (P6) image of `width`×`height` RGB pixels with a
/// deterministic pseudo-random payload.
#[must_use]
pub fn ppm_image(width: u32, height: u32, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    out.extend((0..width * height * 3).map(|_| rng.random::<u8>()));
    out
}

/// The grayscale plane the DCT benchmark transforms, derived from a PPM
/// the way the in-program conversion does: `(r + 2g + b) >> 2`.
#[must_use]
pub fn grayscale_from_ppm(ppm: &[u8], width: u32, height: u32) -> Vec<u8> {
    let header_len = ppm_header_len(ppm);
    let pixels = &ppm[header_len..];
    (0..(width * height) as usize)
        .map(|i| {
            let r = u32::from(pixels[3 * i]);
            let g = u32::from(pixels[3 * i + 1]);
            let b = u32::from(pixels[3 * i + 2]);
            ((r + 2 * g + b) >> 2) as u8
        })
        .collect()
}

/// Byte length of a P6 header produced by [`ppm_image`].
#[must_use]
pub fn ppm_header_len(ppm: &[u8]) -> usize {
    // Three '\n'-terminated fields: magic, dimensions, maxval.
    let mut newlines = 0;
    for (i, b) in ppm.iter().enumerate() {
        if *b == b'\n' {
            newlines += 1;
            if newlines == 3 {
                return i + 1;
            }
        }
    }
    ppm.len()
}

/// A dense directed graph as an adjacency matrix of edge weights
/// (row-major, `n`×`n` words): weight 1..=99, [`GRAPH_INF`] for the ~25 %
/// of pairs with no edge, 0 on the diagonal.
#[must_use]
pub fn adjacency_matrix(n: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = vec![0u32; (n * n) as usize];
    for i in 0..n {
        for j in 0..n {
            let w = if i == j {
                0
            } else if rng.random_range(0..4) == 0 {
                GRAPH_INF
            } else {
                rng.random_range(1..100)
            };
            matrix[(i * n + j) as usize] = w;
        }
    }
    matrix
}

/// Packs words into big-endian bytes (the machines' memory order).
#[must_use]
pub fn words_to_be_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_is_deterministic_and_well_formed() {
        let a = ppm_image(16, 8, 42);
        let b = ppm_image(16, 8, 42);
        assert_eq!(a, b);
        assert!(a.starts_with(b"P6\n16 8\n255\n"));
        let header = ppm_header_len(&a);
        assert_eq!(a.len() - header, 16 * 8 * 3);
        assert_ne!(a, ppm_image(16, 8, 43), "seed changes payload");
    }

    #[test]
    fn grayscale_matches_formula() {
        let ppm = ppm_image(4, 4, 1);
        let gray = grayscale_from_ppm(&ppm, 4, 4);
        assert_eq!(gray.len(), 16);
        let h = ppm_header_len(&ppm);
        let (r, g, b) = (ppm[h] as u32, ppm[h + 1] as u32, ppm[h + 2] as u32);
        assert_eq!(u32::from(gray[0]), (r + 2 * g + b) >> 2);
    }

    #[test]
    fn adjacency_matrix_shape() {
        let m = adjacency_matrix(10, 7);
        assert_eq!(m.len(), 100);
        for i in 0..10 {
            assert_eq!(m[i * 10 + i], 0, "diagonal is zero");
        }
        assert!(m.contains(&GRAPH_INF), "some edges are absent");
        assert!(m.iter().any(|w| (1..100).contains(w)));
    }

    #[test]
    fn word_packing_is_big_endian() {
        assert_eq!(
            words_to_be_bytes(&[0x0102_0304]),
            vec![0x01, 0x02, 0x03, 0x04]
        );
    }
}
