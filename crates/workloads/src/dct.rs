//! DCT benchmark: fixed-point 8×8 DCT encode + decode of an image.
//!
//! "The DCT benchmark does fixed-point Discrete Cosine Transform (DCT)
//! encoding and decoding of a 256 by 256 image in the PPM format" (paper
//! §5.2). Every 8×8 block of the grayscale plane goes through a forward
//! 2-D DCT (two passes of 8-point dot products) and straight back through
//! the inverse transform; the reconstructed image is the output.
//!
//! The kernel is written the way 2004 fixed-point codecs were: the Q10
//! cosine coefficients are immediates in the instruction stream and each
//! 8-element row or column is staged through locals, so the transform is
//! almost pure multiply/accumulate work. That makes DCT the paper's most
//! ILP-rich benchmark — its biggest EPIC win (12.3× fewer cycles than the
//! SA-110 with 4 ALUs) — with the 64-register EPIC file holding the
//! staging values that force the 16-register baseline to spill.

use crate::inputs;
use crate::{Scale, Workload};
use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_ir::Global;

/// Fixed-point scale: cosine coefficients are Q10 integers.
pub const COS_SHIFT: u32 = 10;

/// Image dimensions per scale (multiples of 8).
#[must_use]
pub fn dimensions(scale: Scale) -> (u32, u32) {
    match scale {
        Scale::Test => (16, 16),
        Scale::Paper => (256, 256),
    }
}

/// The input seed.
pub const SEED: u64 = 0xDC70_0002;

/// The Q10 8-point DCT-II matrix: `M[u][x] = round(c(u)/2 ·
/// cos((2x+1)uπ/16) · 2^10)` with `c(0) = 1/√2`, `c(u>0) = 1`.
#[must_use]
pub fn cosine_matrix() -> [[i32; 8]; 8] {
    let mut m = [[0i32; 8]; 8];
    for (u, row) in m.iter_mut().enumerate() {
        for (x, cell) in row.iter_mut().enumerate() {
            let c = if u == 0 { 1.0 / (2.0f64).sqrt() } else { 1.0 };
            let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
            *cell = (0.5 * c * angle.cos() * f64::from(1 << COS_SHIFT)).round() as i32;
        }
    }
    m
}

/// Forward+inverse transform of one 8×8 block (the golden model).
///
/// All arithmetic is integer with defined rounding so every backend can
/// reproduce it bit-for-bit. Returns the reconstructed block.
#[must_use]
pub fn golden_block_roundtrip(block: &[[i32; 8]; 8]) -> [[u8; 8]; 8] {
    let m = cosine_matrix();
    let dot = |a: &dyn Fn(usize) -> i32, b: &dyn Fn(usize) -> i32| {
        (0..8).map(|k| a(k).wrapping_mul(b(k))).sum::<i32>()
    };

    // Forward: tmp = M·f (rows), freq = tmp·Mᵀ (columns).
    let mut tmp = [[0i32; 8]; 8];
    for u in 0..8 {
        for c in 0..8 {
            let s = dot(&|r| m[u][r], &|r| block[r][c]);
            tmp[u][c] = (s + 64) >> 7;
        }
    }
    let mut freq = [[0i32; 8]; 8];
    for u in 0..8 {
        for vv in 0..8 {
            let s = dot(&|c| tmp[u][c], &|c| m[vv][c]);
            freq[u][vv] = (s + 4096) >> 13;
        }
    }
    // Inverse: tmp2 = Mᵀ·F, out = tmp2·M.
    let mut tmp2 = [[0i32; 8]; 8];
    for r in 0..8 {
        for vv in 0..8 {
            let s = dot(&|u| m[u][r], &|u| freq[u][vv]);
            tmp2[r][vv] = (s + 64) >> 7;
        }
    }
    let mut out = [[0u8; 8]; 8];
    for r in 0..8 {
        for c in 0..8 {
            let s = dot(&|vv| tmp2[r][vv], &|vv| m[vv][c]);
            let px = (s + 4096) >> 13;
            out[r][c] = px.clamp(0, 255) as u8;
        }
    }
    out
}

/// Runs the whole benchmark natively: returns the reconstructed image.
#[must_use]
pub fn golden_image(gray: &[u8], width: u32, height: u32) -> Vec<u8> {
    let mut out = vec![0u8; gray.len()];
    for by in 0..height / 8 {
        for bx in 0..width / 8 {
            let mut block = [[0i32; 8]; 8];
            for (r, row) in block.iter_mut().enumerate() {
                for (c, cell) in row.iter_mut().enumerate() {
                    let addr = (by * 8 + r as u32) * width + bx * 8 + c as u32;
                    *cell = i32::from(gray[addr as usize]);
                }
            }
            let rec = golden_block_roundtrip(&block);
            for (r, row) in rec.iter().enumerate() {
                for (c, px) in row.iter().enumerate() {
                    let addr = (by * 8 + r as u32) * width + bx * 8 + c as u32;
                    out[addr as usize] = *px;
                }
            }
        }
    }
    out
}

fn v(name: &str) -> Expr {
    Expr::var(name)
}

fn lit(x: i64) -> Expr {
    Expr::lit(x)
}

/// Word load `table[i]` for a constant index.
fn word_at(table: &str, index: i64) -> Expr {
    (Expr::global(table) + lit(index * 4)).load_word()
}

/// Emits the statements transforming one 8×8 block at block
/// coordinates held in the in-scope variables `by`/`bx` of a
/// `width`-pixel-wide image: read from `dct_input`, roundtrip through
/// the scratch globals, write the reconstruction to `dct_output`.
/// Shared between the single-core benchmark (loop body) and the mesh
/// benchmark (per-block worker function).
#[must_use]
#[allow(clippy::needless_range_loop)] // loop indices mirror the DCT matrix maths
pub(crate) fn emit_block_body(width: u32) -> Vec<Stmt> {
    let m = cosine_matrix();
    let w = i64::from(width);

    let round7 = |acc: Expr| (acc + lit(64)).sra(lit(7));
    let round13 = |acc: Expr| (acc + lit(4096)).sra(lit(13));
    // An 8-term dot product against immediate coefficients.
    let cdot = |coeff: [i32; 8], term: &dyn Fn(usize) -> Expr| -> Expr {
        let mut sum = lit(i64::from(coeff[0])) * term(0);
        for k in 1..8 {
            sum = sum + lit(i64::from(coeff[k])) * term(k);
        }
        sum
    };

    let mut block_body: Vec<Stmt> = vec![
        Stmt::let_("py", v("by") * lit(8)),
        Stmt::let_("px", v("bx") * lit(8)),
    ];
    // Row base addresses of the input and output blocks.
    for r in 0..8usize {
        block_body.push(Stmt::let_(
            format!("inrow{r}"),
            Expr::global("dct_input") + (v("py") + lit(r as i64)) * lit(w) + v("px"),
        ));
        block_body.push(Stmt::let_(
            format!("outrow{r}"),
            Expr::global("dct_output") + (v("py") + lit(r as i64)) * lit(w) + v("px"),
        ));
    }

    // Pass 1 (per column c): tmp[u][c] = (Σ_r M[u][r]·in[r][c] + 64) >> 7.
    for c in 0..8usize {
        for r in 0..8usize {
            block_body.push(Stmt::let_(
                format!("p{r}"),
                (v(&format!("inrow{r}")) + lit(c as i64)).load_byte_u(),
            ));
        }
        for u in 0..8usize {
            let acc = cdot(m[u], &|r| v(&format!("p{r}")));
            block_body.push(Stmt::store_word(
                Expr::global("dct_tmp") + lit(((u * 8 + c) * 4) as i64),
                round7(acc),
            ));
        }
    }
    // Pass 2 (per row u): freq[u][v] = (Σ_c tmp[u][c]·M[v][c] + 4096) >> 13.
    for u in 0..8usize {
        for c in 0..8usize {
            block_body.push(Stmt::let_(
                format!("t{c}"),
                word_at("dct_tmp", (u * 8 + c) as i64),
            ));
        }
        for vv in 0..8usize {
            let acc = cdot(m[vv], &|c| v(&format!("t{c}")));
            block_body.push(Stmt::store_word(
                Expr::global("dct_freq") + lit(((u * 8 + vv) * 4) as i64),
                round13(acc),
            ));
        }
    }
    // Pass 3 (per column v): tmp2[r][v] = (Σ_u M[u][r]·freq[u][v] + 64) >> 7.
    for vv in 0..8usize {
        for u in 0..8usize {
            block_body.push(Stmt::let_(
                format!("f{u}"),
                word_at("dct_freq", (u * 8 + vv) as i64),
            ));
        }
        for r in 0..8usize {
            let col: [i32; 8] = std::array::from_fn(|u| m[u][r]);
            let acc = cdot(col, &|u| v(&format!("f{u}")));
            block_body.push(Stmt::store_word(
                Expr::global("dct_tmp2") + lit(((r * 8 + vv) * 4) as i64),
                round7(acc),
            ));
        }
    }
    // Pass 4 (per row r): out[r][c] = clamp((Σ_v tmp2[r][v]·M[v][c]+4096)>>13).
    for r in 0..8usize {
        for vv in 0..8usize {
            block_body.push(Stmt::let_(
                format!("g{vv}"),
                word_at("dct_tmp2", (r * 8 + vv) as i64),
            ));
        }
        for c in 0..8usize {
            let col: [i32; 8] = std::array::from_fn(|vv| m[vv][c]);
            let acc = cdot(col, &|vv| v(&format!("g{vv}")));
            block_body.push(Stmt::let_(format!("pix{c}"), round13(acc)));
            block_body.push(Stmt::assign(
                format!("pix{c}"),
                v(&format!("pix{c}")).max(lit(0)).min(lit(255)),
            ));
            block_body.push(Stmt::store_byte(
                v(&format!("outrow{r}")) + lit(c as i64),
                v(&format!("pix{c}")),
            ));
        }
    }
    block_body
}

/// Builds the benchmark at the given scale.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let (width, height) = dimensions(scale);
    let ppm = inputs::ppm_image(width, height, SEED);
    let gray = inputs::grayscale_from_ppm(&ppm, width, height);
    let expected = golden_image(&gray, width, height);

    let blocks_x = i64::from(width / 8);
    let blocks_y = i64::from(height / 8);
    let block_body = emit_block_body(width);

    let body = vec![Stmt::for_(
        "by",
        lit(0),
        lit(blocks_y),
        [Stmt::for_("bx", lit(0), lit(blocks_x), block_body)],
    )];

    let program = Program::new()
        .global(Global::with_bytes("dct_input", gray))
        .global(Global::zeroed("dct_tmp", 64 * 4))
        .global(Global::zeroed("dct_freq", 64 * 4))
        .global(Global::zeroed("dct_tmp2", 64 * 4))
        .global(Global::zeroed("dct_output", width * height))
        .function(FunctionDef::new("dct_main", [] as [&str; 0]).body(body));

    Workload {
        name: "dct".to_owned(),
        description: format!("8x8 fixed-point DCT encode+decode of a {width}x{height} image"),
        program,
        entry: "dct_main".to_owned(),
        output_global: "dct_output".to_owned(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{lower, Interpreter};

    #[test]
    fn cosine_matrix_is_orthonormal_enough() {
        let m = cosine_matrix();
        // DC row is flat; all coefficients fit in 12 bits.
        assert!(m[0].iter().all(|x| *x == m[0][0]));
        assert!(m.iter().flatten().all(|x| x.abs() <= 1 << COS_SHIFT));
        // Roundtrip of a smooth ramp block reconstructs within ±2.
        let mut block = [[0i32; 8]; 8];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (r * 8 + c) as i32 * 3;
            }
        }
        let rec = golden_block_roundtrip(&block);
        for r in 0..8 {
            for c in 0..8 {
                let diff = (i32::from(rec[r][c]) - block[r][c]).abs();
                assert!(diff <= 2, "({r},{c}): {} vs {}", rec[r][c], block[r][c]);
            }
        }
    }

    #[test]
    fn ast_program_matches_golden_on_interpreter() {
        let w = build(Scale::Test);
        let module = lower::lower(&w.program).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call(&w.entry, &[]).unwrap();
        w.verify_memory(|addr, len| interp.read_bytes(addr, len).map(<[u8]>::to_vec))
            .unwrap();
    }
}
