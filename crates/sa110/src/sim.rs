//! The SA-110 timing-model simulator.

use crate::codegen::ArmProgram;
use crate::isa::{ArmInst, ArmOp, Cond, MemWidth, Op2, LR, SP};
use crate::{BRANCH_PENALTY, MUL_EXTRA_CYCLES, SOFT_DIV_CYCLES, WIDE_IMM_EXTRA_CYCLES};
use std::error::Error;
use std::fmt;

/// Default cycle budget.
const DEFAULT_CYCLE_LIMIT: u64 = 20_000_000_000;

/// Simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArmSimError {
    /// A memory access left the data memory or was misaligned.
    MemoryFault {
        /// Instruction index.
        pc: u32,
        /// Faulting byte address.
        address: u32,
    },
    /// The PC left the instruction stream without `halt`.
    PcOutOfRange {
        /// The runaway index.
        pc: u32,
    },
    /// The cycle budget was exhausted.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for ArmSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmSimError::MemoryFault { pc, address } => {
                write!(f, "memory fault at instruction {pc}: address {address:#x}")
            }
            ArmSimError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc} left the instruction stream")
            }
            ArmSimError::CycleLimit { limit } => {
                write!(f, "execution exceeded the cycle limit of {limit}")
            }
        }
    }
}

impl Error for ArmSimError {}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArmStats {
    /// Cycles elapsed under the timing model.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Taken branches (each costs [`BRANCH_PENALTY`] extra cycles).
    pub taken_branches: u64,
    /// Load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Software divide/remainder invocations.
    pub soft_divides: u64,
    /// Data-memory loads.
    pub loads: u64,
    /// Data-memory stores.
    pub stores: u64,
}

/// The baseline's single-issue, in-order simulator.
///
/// Functional semantics match the reference interpreter bit-for-bit
/// (32-bit wrapping arithmetic, big-endian memory, division by zero
/// yielding zero); the timing model adds the SA-110 costs listed in the
/// crate documentation.
#[derive(Debug, Clone)]
pub struct ArmSimulator {
    insts: Vec<ArmInst>,
    memory: Vec<u8>,
    regs: [u32; 16],
    flag_n: bool,
    flag_z: bool,
    flag_c: bool,
    flag_v: bool,
    pc: u32,
    halted: bool,
    stats: ArmStats,
    cycle_limit: u64,
    /// Destination of the immediately preceding load (load-use hazard).
    last_load_dest: Option<u8>,
}

impl ArmSimulator {
    /// Creates a simulator with the given data memory; the stack pointer
    /// starts at the top of memory.
    #[must_use]
    pub fn new(program: &ArmProgram, memory: Vec<u8>) -> Self {
        let mut regs = [0u32; 16];
        regs[SP as usize] = (memory.len() as u32) & !3;
        ArmSimulator {
            insts: program.insts().to_vec(),
            memory,
            regs,
            flag_n: false,
            flag_z: false,
            flag_c: false,
            flag_v: false,
            pc: program.entry(),
            halted: false,
            stats: ArmStats::default(),
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            last_load_dest: None,
        }
    }

    /// Caps the simulated cycles.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, index: usize) -> u32 {
        self.regs[index]
    }

    /// The data memory.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &ArmStats {
        &self.stats
    }

    /// Whether `halt` has executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs to `halt`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ArmSimError`] raised.
    pub fn run(&mut self) -> Result<&ArmStats, ArmSimError> {
        while !self.halted {
            self.step()?;
        }
        Ok(&self.stats)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ArmSimError`] on faults, runaway PC or cycle exhaustion.
    pub fn step(&mut self) -> Result<(), ArmSimError> {
        if self.halted {
            return Ok(());
        }
        if self.stats.cycles >= self.cycle_limit {
            return Err(ArmSimError::CycleLimit {
                limit: self.cycle_limit,
            });
        }
        let pc = self.pc;
        let Some(inst) = self.insts.get(pc as usize).cloned() else {
            return Err(ArmSimError::PcOutOfRange { pc });
        };
        self.stats.instructions += 1;
        self.stats.cycles += 1;
        self.pc = pc + 1;

        // Load-use interlock: using the previous load's destination as a
        // source this instruction costs one stall cycle.
        let sources = inst_sources(&inst);
        if let Some(dest) = self.last_load_dest.take() {
            if sources.contains(&dest) {
                self.stats.cycles += 1;
                self.stats.load_use_stalls += 1;
            }
        }

        match inst {
            ArmInst::Alu { op, rd, rn, op2 } => {
                let a = self.regs[rn as usize];
                let b = self.op2_value(op2);
                self.regs[rd as usize] = alu(op, a, b);
            }
            ArmInst::Mov { rd, op2 } => {
                if let Op2::Imm(v) = op2 {
                    if !Op2::fits_rotated_imm(v) {
                        self.stats.cycles += WIDE_IMM_EXTRA_CYCLES;
                    }
                }
                self.regs[rd as usize] = self.op2_value(op2);
            }
            ArmInst::Mvn { rd, op2 } => {
                self.regs[rd as usize] = !self.op2_value(op2);
            }
            ArmInst::MovCond { cond, rd, op2 } => {
                if self.cond_holds(cond) {
                    self.regs[rd as usize] = self.op2_value(op2);
                }
            }
            ArmInst::Cmp { rn, op2 } => {
                let a = self.regs[rn as usize];
                let b = self.op2_value(op2);
                let (result, borrow) = a.overflowing_sub(b);
                self.flag_n = (result as i32) < 0;
                self.flag_z = result == 0;
                self.flag_c = !borrow;
                self.flag_v = ((a ^ b) & (a ^ result)) >> 31 != 0;
            }
            ArmInst::Mul { rd, rn, rm } => {
                self.stats.cycles += MUL_EXTRA_CYCLES;
                self.regs[rd as usize] =
                    self.regs[rn as usize].wrapping_mul(self.regs[rm as usize]);
            }
            ArmInst::SoftDiv { rd, rn, rm } => {
                self.stats.cycles += SOFT_DIV_CYCLES;
                self.stats.soft_divides += 1;
                let a = self.regs[rn as usize] as i32;
                let b = self.regs[rm as usize] as i32;
                self.regs[rd as usize] = if b == 0 { 0 } else { a.wrapping_div(b) as u32 };
            }
            ArmInst::SoftRem { rd, rn, rm } => {
                self.stats.cycles += SOFT_DIV_CYCLES;
                self.stats.soft_divides += 1;
                let a = self.regs[rn as usize] as i32;
                let b = self.regs[rm as usize] as i32;
                self.regs[rd as usize] = if b == 0 { 0 } else { a.wrapping_rem(b) as u32 };
            }
            ArmInst::Ldr {
                width,
                rd,
                rn,
                offset,
            } => {
                let address = self.regs[rn as usize].wrapping_add(offset as u32);
                let raw = self.load(pc, address, width.bytes())?;
                self.regs[rd as usize] = extend(width, raw);
                self.stats.loads += 1;
                self.last_load_dest = Some(rd);
            }
            ArmInst::Str {
                width,
                rd,
                rn,
                offset,
            } => {
                let address = self.regs[rn as usize].wrapping_add(offset as u32);
                let value = self.regs[rd as usize];
                self.store(pc, address, width.bytes(), value)?;
                self.stats.stores += 1;
            }
            ArmInst::LdrReg { width, rd, rn, rm } => {
                let address = self.regs[rn as usize].wrapping_add(self.regs[rm as usize]);
                let raw = self.load(pc, address, width.bytes())?;
                self.regs[rd as usize] = extend(width, raw);
                self.stats.loads += 1;
                self.last_load_dest = Some(rd);
            }
            ArmInst::StrReg { width, rd, rn, rm } => {
                let address = self.regs[rn as usize].wrapping_add(self.regs[rm as usize]);
                let value = self.regs[rd as usize];
                self.store(pc, address, width.bytes(), value)?;
                self.stats.stores += 1;
            }
            ArmInst::B { cond, target } => {
                if self.cond_holds(cond) {
                    self.pc = target;
                    self.stats.cycles += BRANCH_PENALTY;
                    self.stats.taken_branches += 1;
                }
            }
            ArmInst::Bl { target } => {
                self.regs[LR as usize] = pc + 1;
                self.pc = target;
                self.stats.cycles += BRANCH_PENALTY;
                self.stats.taken_branches += 1;
            }
            ArmInst::Bx { rm } => {
                self.pc = self.regs[rm as usize];
                self.stats.cycles += BRANCH_PENALTY;
                self.stats.taken_branches += 1;
            }
            ArmInst::Halt => {
                self.halted = true;
            }
        }
        Ok(())
    }

    fn op2_value(&self, op2: Op2) -> u32 {
        match op2 {
            Op2::Reg(r) => self.regs[r as usize],
            Op2::Imm(v) => v as u32,
        }
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Al => true,
            Cond::Eq => self.flag_z,
            Cond::Ne => !self.flag_z,
            Cond::Lt => self.flag_n != self.flag_v,
            Cond::Le => self.flag_z || self.flag_n != self.flag_v,
            Cond::Gt => !self.flag_z && self.flag_n == self.flag_v,
            Cond::Ge => self.flag_n == self.flag_v,
            Cond::Lo => !self.flag_c,
            Cond::Ls => !self.flag_c || self.flag_z,
            Cond::Hi => self.flag_c && !self.flag_z,
            Cond::Hs => self.flag_c,
        }
    }

    fn load(&mut self, pc: u32, address: u32, width: u32) -> Result<u32, ArmSimError> {
        if u64::from(address) + u64::from(width) > self.memory.len() as u64
            || !address.is_multiple_of(width)
        {
            return Err(ArmSimError::MemoryFault { pc, address });
        }
        let a = address as usize;
        Ok(match width {
            1 => u32::from(self.memory[a]),
            2 => u32::from(u16::from_be_bytes([self.memory[a], self.memory[a + 1]])),
            _ => u32::from_be_bytes([
                self.memory[a],
                self.memory[a + 1],
                self.memory[a + 2],
                self.memory[a + 3],
            ]),
        })
    }

    fn store(&mut self, pc: u32, address: u32, width: u32, value: u32) -> Result<(), ArmSimError> {
        if u64::from(address) + u64::from(width) > self.memory.len() as u64
            || !address.is_multiple_of(width)
        {
            return Err(ArmSimError::MemoryFault { pc, address });
        }
        let a = address as usize;
        match width {
            1 => self.memory[a] = value as u8,
            2 => self.memory[a..a + 2].copy_from_slice(&(value as u16).to_be_bytes()),
            _ => self.memory[a..a + 4].copy_from_slice(&value.to_be_bytes()),
        }
        Ok(())
    }
}

fn alu(op: ArmOp, a: u32, b: u32) -> u32 {
    match op {
        ArmOp::Add => a.wrapping_add(b),
        ArmOp::Sub => a.wrapping_sub(b),
        ArmOp::Rsb => b.wrapping_sub(a),
        ArmOp::And => a & b,
        ArmOp::Orr => a | b,
        ArmOp::Eor => a ^ b,
        ArmOp::Bic => a & !b,
        ArmOp::Lsl => a.wrapping_shl(b),
        ArmOp::Lsr => a.wrapping_shr(b),
        ArmOp::Asr => (a as i32).wrapping_shr(b) as u32,
        ArmOp::Ror => a.rotate_right(b % 32),
    }
}

fn extend(width: MemWidth, raw: u32) -> u32 {
    match width {
        MemWidth::HalfSigned => i32::from(raw as u16 as i16) as u32,
        MemWidth::ByteSigned => i32::from(raw as u8 as i8) as u32,
        _ => raw,
    }
}

fn inst_sources(inst: &ArmInst) -> Vec<u8> {
    let op2_reg = |op2: &Op2| match op2 {
        Op2::Reg(r) => vec![*r],
        Op2::Imm(_) => vec![],
    };
    match inst {
        ArmInst::Alu { rn, op2, .. } => {
            let mut v = vec![*rn];
            v.extend(op2_reg(op2));
            v
        }
        ArmInst::Mov { op2, .. } | ArmInst::Mvn { op2, .. } | ArmInst::MovCond { op2, .. } => {
            op2_reg(op2)
        }
        ArmInst::Cmp { rn, op2 } => {
            let mut v = vec![*rn];
            v.extend(op2_reg(op2));
            v
        }
        ArmInst::Mul { rn, rm, .. }
        | ArmInst::SoftDiv { rn, rm, .. }
        | ArmInst::SoftRem { rn, rm, .. } => vec![*rn, *rm],
        ArmInst::Ldr { rn, .. } => vec![*rn],
        ArmInst::Str { rd, rn, .. } => vec![*rd, *rn],
        ArmInst::LdrReg { rn, rm, .. } => vec![*rn, *rm],
        ArmInst::StrReg { rd, rn, rm, .. } => vec![*rd, *rn, *rm],
        ArmInst::Bx { rm } => vec![*rm],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn run(p: &Program, entry: &str, args: &[u32]) -> ArmSimulator {
        let module = lower::lower(p).unwrap();
        let compiled = compile(&module, entry, args).unwrap();
        let layout = module.layout().unwrap();
        let mut sim = ArmSimulator::new(&compiled, module.initial_memory(&layout));
        sim.run().unwrap();
        sim
    }

    #[test]
    fn arithmetic_and_return() {
        let p = Program::new().function(
            FunctionDef::new("main", ["x"])
                .body([Stmt::ret(Expr::var("x") * Expr::lit(3) + Expr::lit(4))]),
        );
        let sim = run(&p, "main", &[6]);
        assert_eq!(sim.reg(0), 22);
    }

    #[test]
    fn loops_and_branch_penalties() {
        let p = Program::new().function(FunctionDef::new("main", ["n"]).body([
            Stmt::let_("acc", Expr::lit(0)),
            Stmt::for_(
                "i",
                Expr::lit(0),
                Expr::var("n"),
                [Stmt::assign("acc", Expr::var("acc") + Expr::var("i"))],
            ),
            Stmt::ret(Expr::var("acc")),
        ]));
        let sim = run(&p, "main", &[10]);
        assert_eq!(sim.reg(0), 45);
        assert!(sim.stats().taken_branches >= 10, "back edges are taken");
        assert!(sim.stats().cycles > sim.stats().instructions);
    }

    #[test]
    fn memory_and_globals() {
        let p = Program::new()
            .global(epic_ir::Global::with_words("tbl", &[10, 20, 30]))
            .function(FunctionDef::new("main", ["i"]).body([Stmt::ret(
                (Expr::global("tbl") + Expr::var("i") * Expr::lit(4)).load_word(),
            )]));
        let sim = run(&p, "main", &[2]);
        assert_eq!(sim.reg(0), 30);
    }

    #[test]
    fn calls_preserve_live_values() {
        let sq = FunctionDef::new("sq", ["x"]).body([Stmt::ret(Expr::var("x") * Expr::var("x"))]);
        let main = FunctionDef::new("main", ["a"]).body([
            Stmt::let_("k", Expr::var("a") + Expr::lit(1)),
            Stmt::let_("s", Expr::call("sq", [Expr::var("k")])),
            Stmt::ret(Expr::var("s") + Expr::var("k")),
        ]);
        let p = Program::new().function(sq).function(main);
        let sim = run(&p, "main", &[3]);
        assert_eq!(sim.reg(0), 20);
    }

    #[test]
    fn recursion_works() {
        let fib = FunctionDef::new("fib", ["n"]).body([
            Stmt::if_(
                Expr::var("n").lt_s(Expr::lit(2)),
                [Stmt::ret(Expr::var("n"))],
            ),
            Stmt::ret(
                Expr::call("fib", [Expr::var("n") - Expr::lit(1)])
                    + Expr::call("fib", [Expr::var("n") - Expr::lit(2)]),
            ),
        ]);
        let sim = run(&Program::new().function(fib), "fib", &[10]);
        assert_eq!(sim.reg(0), 55);
    }

    #[test]
    fn division_costs_soft_cycles() {
        let p = Program::new().function(
            FunctionDef::new("main", ["x"]).body([Stmt::ret(Expr::var("x").div(Expr::lit(7)))]),
        );
        let sim = run(&p, "main", &[100]);
        assert_eq!(sim.reg(0), 14);
        assert_eq!(sim.stats().soft_divides, 1);
        assert!(sim.stats().cycles >= SOFT_DIV_CYCLES);
    }

    #[test]
    fn load_use_stall_is_counted() {
        // A hand-written back-to-back load/use pair (the code generator
        // usually has an intervening instruction to hide the latency).
        let program = ArmProgram::from_insts(
            vec![
                ArmInst::Mov {
                    rd: 1,
                    op2: Op2::Imm(8),
                },
                ArmInst::Ldr {
                    width: MemWidth::Word,
                    rd: 2,
                    rn: 1,
                    offset: 0,
                },
                ArmInst::Alu {
                    op: ArmOp::Add,
                    rd: 0,
                    rn: 2,
                    op2: Op2::Imm(1),
                },
                ArmInst::Halt,
            ],
            0,
        );
        let mut memory = vec![0u8; 64];
        memory[8..12].copy_from_slice(&5u32.to_be_bytes());
        let mut sim = ArmSimulator::new(&program, memory);
        sim.run().unwrap();
        assert_eq!(sim.reg(0), 6);
        assert_eq!(sim.stats().load_use_stalls, 1);
    }

    #[test]
    fn spilling_under_pressure_still_computes() {
        let mut body = Vec::new();
        for i in 0..20 {
            body.push(Stmt::let_(format!("x{i}"), Expr::var("a") + Expr::lit(i)));
        }
        let mut sum = Expr::var("x0");
        for i in 1..20 {
            sum = sum + Expr::var(format!("x{i}"));
        }
        body.push(Stmt::ret(sum));
        let p = Program::new().function(FunctionDef::new("main", ["a"]).body(body));
        let sim = run(&p, "main", &[0]);
        assert_eq!(sim.reg(0), (0..20).sum::<i32>() as u32);
    }

    #[test]
    fn wide_immediates_cost_extra() {
        let p = Program::new().function(
            FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret(Expr::lit(0x12345678))]),
        );
        let sim = run(&p, "main", &[]);
        assert_eq!(sim.reg(0), 0x12345678);
        assert!(sim.stats().cycles > sim.stats().instructions + 2 * BRANCH_PENALTY);
    }

    #[test]
    fn min_max_via_conditional_moves() {
        let p = Program::new().function(
            FunctionDef::new("main", ["a", "b"])
                .body([Stmt::ret(Expr::var("a").min(Expr::var("b")))]),
        );
        let sim = run(&p, "main", &[7, 3]);
        assert_eq!(sim.reg(0), 3);
        let sim = run(&p, "main", &[(-7i32) as u32, 3]);
        assert_eq!(sim.reg(0), (-7i32) as u32);
    }

    #[test]
    fn runaway_pc_is_reported() {
        let p = Program::new()
            .function(FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret_void()]));
        let module = lower::lower(&p).unwrap();
        let compiled = compile(&module, "main", &[]).unwrap();
        let mut sim = ArmSimulator::new(&compiled, vec![0; 64]);
        sim.set_cycle_limit(10_000);
        // The intact program halts fine; push PC out manually instead.
        sim.pc = 10_000;
        assert!(matches!(sim.step(), Err(ArmSimError::PcOutOfRange { .. })));
    }
}
