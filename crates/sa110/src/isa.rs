//! The ARM-flavoured scalar instruction set.

use std::fmt;

/// Register names: `r0..r15`; by convention `r13` is the stack pointer,
/// `r14` the link register. `r15` (the PC) is never named directly.
pub type Reg = u8;

/// The stack pointer.
pub const SP: Reg = 13;
/// The link register.
pub const LR: Reg = 14;

/// Condition codes evaluated against the flags set by [`ArmInst::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always.
    Al,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater or equal.
    Ge,
    /// Unsigned lower.
    Lo,
    /// Unsigned lower or same.
    Ls,
    /// Unsigned higher.
    Hi,
    /// Unsigned higher or same.
    Hs,
}

impl Cond {
    /// The condition testing the opposite outcome.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Al => Cond::Al,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Lo => Cond::Hs,
            Cond::Ls => Cond::Hi,
            Cond::Hi => Cond::Ls,
            Cond::Hs => Cond::Lo,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cond::Al => "",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Lo => "lo",
            Cond::Ls => "ls",
            Cond::Hi => "hi",
            Cond::Hs => "hs",
        })
    }
}

/// The flexible second operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op2 {
    /// A register.
    Reg(Reg),
    /// An immediate (full 32-bit range; wide values cost an extra cycle,
    /// see [`crate::WIDE_IMM_EXTRA_CYCLES`]).
    Imm(i32),
}

impl Op2 {
    /// Whether an immediate fits ARM's 8-bit-rotated-by-even encoding.
    #[must_use]
    pub fn fits_rotated_imm(value: i32) -> bool {
        let v = value as u32;
        (0..16).any(|r| v.rotate_left(2 * r) <= 0xFF)
    }
}

impl fmt::Display for Op2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op2::Reg(r) => write!(f, "r{r}"),
            Op2::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Data-processing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Reverse subtraction (`rd = op2 - rn`).
    Rsb,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Orr,
    /// Bitwise exclusive-or.
    Eor,
    /// Bit clear (`rd = rn & !op2`).
    Bic,
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right (the barrel shifter makes this free).
    Ror,
}

impl fmt::Display for ArmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArmOp::Add => "add",
            ArmOp::Sub => "sub",
            ArmOp::Rsb => "rsb",
            ArmOp::And => "and",
            ArmOp::Orr => "orr",
            ArmOp::Eor => "eor",
            ArmOp::Bic => "bic",
            ArmOp::Lsl => "lsl",
            ArmOp::Lsr => "lsr",
            ArmOp::Asr => "asr",
            ArmOp::Ror => "ror",
        })
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 32-bit word.
    Word,
    /// 16-bit half, zero-extended on load.
    Half,
    /// 16-bit half, sign-extended on load.
    HalfSigned,
    /// 8-bit byte, zero-extended on load.
    Byte,
    /// 8-bit byte, sign-extended on load.
    ByteSigned,
}

impl MemWidth {
    /// Bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Word => 4,
            MemWidth::Half | MemWidth::HalfSigned => 2,
            MemWidth::Byte | MemWidth::ByteSigned => 1,
        }
    }
}

/// One instruction of the baseline's ISA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmInst {
    /// `rd = rn <op> op2`.
    Alu {
        /// Operation.
        op: ArmOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        op2: Op2,
    },
    /// `rd = op2` (wide immediates cost an extra cycle).
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        op2: Op2,
    },
    /// `rd = !op2` (move-not).
    Mvn {
        /// Destination.
        rd: Reg,
        /// Source.
        op2: Op2,
    },
    /// Conditional move: `if cond { rd = op2 }`.
    MovCond {
        /// The condition (against current flags).
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Source.
        op2: Op2,
    },
    /// Compare `rn` with `op2`, setting the flags.
    Cmp {
        /// Left operand.
        rn: Reg,
        /// Right operand.
        op2: Op2,
    },
    /// `rd = rn * rm` (one extra cycle).
    Mul {
        /// Destination.
        rd: Reg,
        /// First factor.
        rn: Reg,
        /// Second factor.
        rm: Reg,
    },
    /// Software signed division `rd = rn / rm` (0 on zero divisor) —
    /// stands for the `__divsi3` call, costing
    /// [`crate::SOFT_DIV_CYCLES`].
    SoftDiv {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// Software signed remainder (same cost model as [`ArmInst::SoftDiv`]).
    SoftRem {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// Load `rd = mem[rn + offset]`.
    Ldr {
        /// Access width and extension.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Store `mem[rn + offset] = rd`.
    Str {
        /// Access width.
        width: MemWidth,
        /// Source of the stored value.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Load with register offset: `rd = mem[rn + rm]` (ARM's scaled
    /// register addressing, one cycle like the immediate form).
    LdrReg {
        /// Access width and extension.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset register.
        rm: Reg,
    },
    /// Store with register offset: `mem[rn + rm] = rd`.
    StrReg {
        /// Access width.
        width: MemWidth,
        /// Source of the stored value.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset register.
        rm: Reg,
    },
    /// Conditional branch to an instruction index.
    B {
        /// The condition.
        cond: Cond,
        /// Target instruction index.
        target: u32,
    },
    /// Branch and link (call).
    Bl {
        /// Target instruction index.
        target: u32,
    },
    /// Branch through a register (return: `bx lr`).
    Bx {
        /// Register holding the target instruction index.
        rm: Reg,
    },
    /// Stop the simulation (the harness's exit).
    Halt,
}

impl fmt::Display for ArmInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmInst::Alu { op, rd, rn, op2 } => write!(f, "{op} r{rd}, r{rn}, {op2}"),
            ArmInst::Mov { rd, op2 } => write!(f, "mov r{rd}, {op2}"),
            ArmInst::Mvn { rd, op2 } => write!(f, "mvn r{rd}, {op2}"),
            ArmInst::MovCond { cond, rd, op2 } => write!(f, "mov{cond} r{rd}, {op2}"),
            ArmInst::Cmp { rn, op2 } => write!(f, "cmp r{rn}, {op2}"),
            ArmInst::Mul { rd, rn, rm } => write!(f, "mul r{rd}, r{rn}, r{rm}"),
            ArmInst::SoftDiv { rd, rn, rm } => write!(f, "bl __divsi3 ; r{rd} = r{rn}/r{rm}"),
            ArmInst::SoftRem { rd, rn, rm } => write!(f, "bl __modsi3 ; r{rd} = r{rn}%r{rm}"),
            ArmInst::Ldr {
                width,
                rd,
                rn,
                offset,
            } => write!(f, "ldr{} r{rd}, [r{rn}, #{offset}]", width_suffix(*width)),
            ArmInst::Str {
                width,
                rd,
                rn,
                offset,
            } => write!(f, "str{} r{rd}, [r{rn}, #{offset}]", width_suffix(*width)),
            ArmInst::LdrReg { width, rd, rn, rm } => {
                write!(f, "ldr{} r{rd}, [r{rn}, r{rm}]", width_suffix(*width))
            }
            ArmInst::StrReg { width, rd, rn, rm } => {
                write!(f, "str{} r{rd}, [r{rn}, r{rm}]", width_suffix(*width))
            }
            ArmInst::B { cond, target } => write!(f, "b{cond} {target}"),
            ArmInst::Bl { target } => write!(f, "bl {target}"),
            ArmInst::Bx { rm } => write!(f, "bx r{rm}"),
            ArmInst::Halt => write!(f, "halt"),
        }
    }
}

fn width_suffix(width: MemWidth) -> &'static str {
    match width {
        MemWidth::Word => "",
        MemWidth::Half => "h",
        MemWidth::HalfSigned => "sh",
        MemWidth::Byte => "b",
        MemWidth::ByteSigned => "sb",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Lo,
            Cond::Ls,
            Cond::Hi,
            Cond::Hs,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn rotated_immediate_detection() {
        assert!(Op2::fits_rotated_imm(0));
        assert!(Op2::fits_rotated_imm(255));
        assert!(Op2::fits_rotated_imm(0x3FC)); // 255 << 2
        assert!(Op2::fits_rotated_imm(0xFF00_0000u32 as i32));
        assert!(!Op2::fits_rotated_imm(0x101));
        assert!(!Op2::fits_rotated_imm(0x12345678));
    }

    #[test]
    fn display_is_arm_like() {
        let i = ArmInst::Alu {
            op: ArmOp::Add,
            rd: 1,
            rn: 2,
            op2: Op2::Imm(5),
        };
        assert_eq!(i.to_string(), "add r1, r2, #5");
        let l = ArmInst::Ldr {
            width: MemWidth::ByteSigned,
            rd: 3,
            rn: 4,
            offset: -2,
        };
        assert_eq!(l.to_string(), "ldrsb r3, [r4, #-2]");
    }
}
