//! StrongARM SA-110 baseline: code generator and timing model.
//!
//! The paper measures its EPIC designs against "the StrongARM SA-110
//! processor … obtained by the ARM simulation program SimIt-ARM" (§5.2).
//! SimIt-ARM and the physical part are unavailable here, so this crate
//! provides the closest synthetic equivalent: an ARM-flavoured scalar ISA
//! ([`ArmInst`]), a code generator from the shared `epic-ir` module (the
//! same IR the EPIC backend consumes, as one C source fed both toolchains
//! in the paper), and a single-issue, in-order, 5-stage timing model
//! ([`ArmSimulator`]) with SA-110 characteristics:
//!
//! * one instruction per cycle baseline;
//! * a one-cycle **load-use interlock**;
//! * a two-cycle **taken-branch penalty** (no branch prediction);
//! * a one-cycle extra **multiply** latency;
//! * **no divide instruction** — division runs as a software routine
//!   ([`SOFT_DIV_CYCLES`] per call, the `__divsi3` surrogate);
//! * wide constants cost an extra cycle (the `MOV`/`ORR` pair or a
//!   literal-pool load);
//! * the barrel shifter makes rotates free (`ROR` is native), and
//!   conditional moves avoid short branches.
//!
//! Memory is big-endian, matching the EPIC machine (the SA-110 supports
//! big-endian operation), so both processors produce bit-identical memory
//! images for the differential tests.
//!
//! # Examples
//!
//! ```
//! use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
//! use epic_sa110::{compile, ArmSimulator};
//!
//! let program = Program::new().function(
//!     FunctionDef::new("main", [] as [&str; 0])
//!         .body([Stmt::ret(Expr::lit(6) * Expr::lit(7))]),
//! );
//! let module = epic_ir::lower::lower(&program)?;
//! let compiled = compile(&module, "main", &[])?;
//! let mut sim = ArmSimulator::new(&compiled, vec![0; 1024]);
//! sim.run()?;
//! assert_eq!(sim.reg(0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod isa;
mod sim;

pub use codegen::{compile, ArmCodegenError, ArmProgram};
pub use isa::{ArmInst, ArmOp, Cond, Op2};
pub use sim::{ArmSimError, ArmSimulator, ArmStats};

/// Cycles charged for the software divide routine (the SA-110 has no
/// divide instruction; `__divsi3`-class routines average ~20-30 cycles).
pub const SOFT_DIV_CYCLES: u64 = 24;

/// Taken-branch penalty in cycles (pipeline refill, no prediction).
pub const BRANCH_PENALTY: u64 = 2;

/// Extra cycles for a multiply beyond the base cycle.
pub const MUL_EXTRA_CYCLES: u64 = 1;

/// Extra cycle for materialising a constant outside the 8-bit rotated
/// immediate space (the second instruction of a `MOV`/`ORR` pair).
pub const WIDE_IMM_EXTRA_CYCLES: u64 = 1;
