//! IR → ARM code generation.
//!
//! The baseline consumes the *same* optimised IR module as the EPIC
//! backend; only the target differs. The generator runs a linear-scan
//! allocator over the small ARM file (`r4..r9` allocatable — the paper's
//! narrative that a 16-register hard core spills where the 64-register
//! EPIC does not falls out of this naturally), fuses comparisons into the
//! flags + conditional-branch idiom, folds small constants into ARM's
//! rotated immediates and lowers division onto the software routine.

use crate::isa::{ArmInst, ArmOp, Cond, MemWidth, Op2, Reg, LR, SP};
use epic_ir::{BinOp, Function, IrOp, LoadKind, Module, StoreKind, Terminator, UnOp, VReg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Argument registers of the AAPCS-style convention.
const ARG_REGS: [Reg; 4] = [0, 1, 2, 3];
/// Return-value register.
const RET_REG: Reg = 0;
/// Registers the allocator hands out (`r4..r11`, the ARM callee-saved
/// block every compiler allocates first).
const ALLOCATABLE: [Reg; 8] = [4, 5, 6, 7, 8, 9, 10, 11];
/// Scratch registers for spill reloads and expansion temporaries: `r12`
/// (the ARM intra-procedure scratch) plus `r0`/`r1`, which the allocator
/// never assigns and which are dead outside call/return sequences.
const TEMPS: [Reg; 3] = [12, 0, 1];

/// Code-generation error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArmCodegenError {
    /// More than four register arguments.
    TooManyArguments {
        /// The offending function.
        function: String,
        /// Its parameter count.
        count: usize,
    },
    /// The entry function named at compile time does not exist.
    UnknownEntry {
        /// The requested entry name.
        name: String,
    },
    /// Internal invariant violation.
    Internal {
        /// Description.
        message: String,
    },
}

impl fmt::Display for ArmCodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmCodegenError::TooManyArguments { function, count } => write!(
                f,
                "function `{function}` has {count} parameters; the baseline passes at most 4 in registers"
            ),
            ArmCodegenError::UnknownEntry { name } => {
                write!(f, "entry function `{name}` is not defined")
            }
            ArmCodegenError::Internal { message } => {
                write!(f, "internal baseline codegen error: {message}")
            }
        }
    }
}

impl Error for ArmCodegenError {}

/// A compiled baseline program.
#[derive(Debug, Clone)]
pub struct ArmProgram {
    insts: Vec<ArmInst>,
    entry: u32,
    symbols: HashMap<String, u32>,
}

impl ArmProgram {
    /// Wraps a hand-written instruction sequence (tests, microbenchmarks).
    #[must_use]
    pub fn from_insts(insts: Vec<ArmInst>, entry: u32) -> Self {
        ArmProgram {
            insts,
            entry,
            symbols: HashMap::new(),
        }
    }

    /// The instruction stream.
    #[must_use]
    pub fn insts(&self) -> &[ArmInst] {
        &self.insts
    }

    /// Entry instruction index (the start-up stub).
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Instruction index of a function.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Renders the whole program as an ARM-like listing.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut by_index: HashMap<u32, &str> = HashMap::new();
        for (name, idx) in &self.symbols {
            by_index.insert(*idx, name);
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(name) = by_index.get(&(i as u32)) {
                out.push_str(name);
                out.push_str(":\n");
            }
            out.push_str(&format!("  {i:5}  {inst}\n"));
        }
        out
    }
}

/// Compiles a module for the baseline, with a stub that loads `args`,
/// calls `entry` and halts.
///
/// # Errors
///
/// Returns [`ArmCodegenError`] for unsupported signatures or a missing
/// entry function.
pub fn compile(module: &Module, entry: &str, args: &[u32]) -> Result<ArmProgram, ArmCodegenError> {
    if module.function(entry).is_none() {
        return Err(ArmCodegenError::UnknownEntry {
            name: entry.to_owned(),
        });
    }
    if args.len() > ARG_REGS.len() {
        return Err(ArmCodegenError::TooManyArguments {
            function: entry.to_owned(),
            count: args.len(),
        });
    }

    let mut insts: Vec<ArmInst> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut call_fixups: Vec<(usize, String)> = Vec::new();

    // Start-up stub.
    for (i, a) in args.iter().enumerate() {
        insts.push(ArmInst::Mov {
            rd: ARG_REGS[i],
            op2: Op2::Imm(*a as i32),
        });
    }
    call_fixups.push((insts.len(), entry.to_owned()));
    insts.push(ArmInst::Bl { target: 0 });
    insts.push(ArmInst::Halt);

    for func in &module.functions {
        symbols.insert(func.name.clone(), insts.len() as u32);
        compile_function(func, &mut insts, &mut call_fixups)?;
    }

    for (index, name) in call_fixups {
        let target = *symbols
            .get(&name)
            .ok_or_else(|| ArmCodegenError::Internal {
                message: format!("call to unknown function `{name}`"),
            })?;
        if let ArmInst::Bl { target: t } = &mut insts[index] {
            *t = target;
        }
    }

    Ok(ArmProgram {
        insts,
        entry: 0,
        symbols,
    })
}

#[derive(Debug, Clone, Copy)]
enum Loc {
    Phys(Reg),
    Slot(u32),
}

/// Address-add folding into ARM register-offset addressing.
#[derive(Debug, Clone, Copy)]
enum AddrFold {
    /// This add feeds exactly one memory access as its address — skip it.
    SkipAdd,
    /// This memory access uses `[lhs, rhs]` register-offset addressing.
    Mem { lhs: u32, rhs: u32 },
}

struct FnCtx<'a> {
    func: &'a Function,
    assignment: HashMap<u32, Reg>,
    spill_slots: HashMap<u32, u32>,
    frame_slots: u32,
    makes_calls: bool,
    /// Block-local constants for immediate folding.
    consts: HashMap<u32, i32>,
    /// Comparison fused into each block's terminator.
    fused: HashMap<u32, (Cond, VReg, VReg)>,
    /// Single-use address adds folded into `[rn, rm]` accesses.
    folds: HashMap<(u32, usize), AddrFold>,
    intervals: Vec<(u32, u32, u32)>, // (vreg, start, end)
}

fn compile_function(
    func: &Function,
    insts: &mut Vec<ArmInst>,
    call_fixups: &mut Vec<(usize, String)>,
) -> Result<(), ArmCodegenError> {
    if func.params.len() > ARG_REGS.len() {
        return Err(ArmCodegenError::TooManyArguments {
            function: func.name.clone(),
            count: func.params.len(),
        });
    }
    let ctx = analyse(func);

    // Block label fixups local to this function.
    let mut block_starts: HashMap<u32, u32> = HashMap::new();
    let mut branch_fixups: Vec<(usize, u32)> = Vec::new(); // inst index -> block id

    // Prologue.
    let frame_bytes = ctx.frame_slots * 4;
    if frame_bytes > 0 {
        insts.push(ArmInst::Alu {
            op: ArmOp::Sub,
            rd: SP,
            rn: SP,
            op2: Op2::Imm(frame_bytes as i32),
        });
    }
    if ctx.makes_calls {
        insts.push(ArmInst::Str {
            width: MemWidth::Word,
            rd: LR,
            rn: SP,
            offset: 0,
        });
    }
    for (i, p) in func.params.iter().enumerate() {
        match loc(&ctx, p.0) {
            Loc::Phys(r) => insts.push(ArmInst::Mov {
                rd: r,
                op2: Op2::Reg(ARG_REGS[i]),
            }),
            Loc::Slot(s) => insts.push(ArmInst::Str {
                width: MemWidth::Word,
                rd: ARG_REGS[i],
                rn: SP,
                offset: (s * 4) as i32,
            }),
        }
    }

    let order = func.reverse_postorder();
    for (oi, block_id) in order.iter().enumerate() {
        block_starts.insert(block_id.0, insts.len() as u32);
        let block = func.block(*block_id);
        for (op_index, op) in block.ops.iter().enumerate() {
            emit_op(&ctx, block_id.0, op_index, op, insts, call_fixups)?;
        }
        let next = order.get(oi + 1).map(|b| b.0);
        emit_terminator(
            &ctx,
            block_id.0,
            &block.term,
            next,
            frame_bytes,
            insts,
            &mut branch_fixups,
        );
    }

    for (index, block) in branch_fixups {
        let target = block_starts[&block];
        if let ArmInst::B { target: t, .. } = &mut insts[index] {
            *t = target;
        }
    }
    Ok(())
}

/// Liveness + interval analysis and linear-scan assignment over the IR.
fn analyse(func: &Function) -> FnCtx<'_> {
    let n_blocks = func.blocks.len();
    let nv = func.vreg_count as usize;
    let order = func.reverse_postorder();

    // Linear positions in emission (reverse-postorder) order.
    let mut block_start = vec![0u32; n_blocks];
    let mut block_end = vec![0u32; n_blocks];
    let mut cursor = 0u32;
    for b in &order {
        let len = func.block(*b).ops.len() as u32;
        block_start[b.0 as usize] = cursor;
        cursor += 2 * len + 2;
        block_end[b.0 as usize] = cursor;
    }

    // Backward liveness.
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nv]; n_blocks];
    loop {
        let mut changed = false;
        for b in order.iter().rev() {
            let block = func.block(*b);
            let mut live = vec![false; nv];
            for succ in block.term.successors() {
                for (i, v) in live_in[succ.0 as usize].iter().enumerate() {
                    if *v {
                        live[i] = true;
                    }
                }
            }
            if let Some(u) = block.term.use_reg() {
                live[u.0 as usize] = true;
            }
            for op in block.ops.iter().rev() {
                if let Some(d) = op.def() {
                    live[d.0 as usize] = false;
                }
                for u in op.uses() {
                    live[u.0 as usize] = true;
                }
            }
            if live != live_in[b.0 as usize] {
                live_in[b.0 as usize] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Intervals.
    let mut range: HashMap<u32, (u32, u32)> = HashMap::new();
    let mut extend = |v: u32, p: u32| {
        let e = range.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for p in &func.params {
        extend(p.0, 0);
    }
    for b in &order {
        let bi = b.0 as usize;
        for (v, live) in live_in[bi].iter().enumerate() {
            if *live {
                extend(v as u32, block_start[bi]);
            }
        }
        // live-out of predecessors handled via successors' live-in above;
        // extend to block end for anything live out.
        for succ in func.block(*b).term.successors() {
            for (v, live) in live_in[succ.0 as usize].iter().enumerate() {
                if *live {
                    extend(v as u32, block_end[bi]);
                }
            }
        }
        for (i, op) in func.block(*b).ops.iter().enumerate() {
            let pos = block_start[bi] + 2 * i as u32;
            for u in op.uses() {
                extend(u.0, pos);
            }
            if let Some(d) = op.def() {
                extend(d.0, pos + 1);
            }
        }
        if let Some(u) = func.block(*b).term.use_reg() {
            extend(u.0, block_end[bi] - 1);
        }
    }
    let mut intervals: Vec<(u32, u32, u32)> =
        range.into_iter().map(|(v, (s, e))| (v, s, e)).collect();
    intervals.sort_by_key(|(v, s, _)| (*s, *v));

    // Comparison → branch fusion (single-use comparisons defined in the
    // branching block).
    let mut use_counts: HashMap<VReg, usize> = HashMap::new();
    for block in &func.blocks {
        for op in &block.ops {
            for u in op.uses() {
                *use_counts.entry(u).or_insert(0) += 1;
            }
        }
        if let Some(u) = block.term.use_reg() {
            *use_counts.entry(u).or_insert(0) += 1;
        }
    }
    let mut fused = HashMap::new();
    for block in &func.blocks {
        let Terminator::Branch { cond, .. } = &block.term else {
            continue;
        };
        if use_counts.get(cond).copied().unwrap_or(0) != 1 {
            continue;
        }
        let mut last = None;
        for op in &block.ops {
            if op.def() == Some(*cond) {
                last = match op {
                    IrOp::Bin {
                        op: bop, lhs, rhs, ..
                    } => arm_cond(*bop).map(|c| (c, *lhs, *rhs)),
                    _ => None,
                };
            }
        }
        if let Some(t) = last {
            fused.insert(block.id.0, t);
        }
    }

    // Address-add folding: an add whose only consumer is the address of
    // one memory access becomes ARM register-offset addressing. The safe
    // sites come from the shared analysis in `epic_ir::analysis`.
    let folds: HashMap<(u32, usize), AddrFold> = epic_ir::analysis::addr_folds(func)
        .into_iter()
        .map(|(k, v)| {
            (
                k,
                match v {
                    epic_ir::analysis::AddrFold::SkipAdd => AddrFold::SkipAdd,
                    epic_ir::analysis::AddrFold::Mem { lhs, rhs } => AddrFold::Mem {
                        lhs: lhs.0,
                        rhs: rhs.0,
                    },
                },
            )
        })
        .collect();

    // Folded memory accesses read their address operands at the memory
    // op's position, not the (skipped) add's — extend the intervals so
    // the allocator keeps those registers alive until the access.
    for ((block, j), fold) in &folds {
        if let AddrFold::Mem { lhs, rhs } = fold {
            let pos = block_start[*block as usize] + 2 * *j as u32;
            for iv in intervals.iter_mut() {
                if iv.0 == *lhs || iv.0 == *rhs {
                    iv.2 = iv.2.max(pos);
                }
            }
        }
    }

    // Linear scan with furthest-end spilling.
    let mut free: Vec<Reg> = ALLOCATABLE.to_vec();
    let mut active: Vec<(u32, Reg, u32)> = Vec::new(); // (end, reg, vreg)
    let mut assignment: HashMap<u32, Reg> = HashMap::new();
    let mut spill_slots: HashMap<u32, u32> = HashMap::new();
    let makes_calls = func
        .blocks
        .iter()
        .flat_map(|b| &b.ops)
        .any(|op| matches!(op, IrOp::Call { .. }));
    let mut next_slot: u32 = u32::from(makes_calls); // slot 0 = saved LR
    for (v, s, e) in &intervals {
        active.retain(|(end, reg, _)| {
            if end < s {
                free.push(*reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            assignment.insert(*v, reg);
            active.push((*e, reg, *v));
        } else {
            let (pos, &(v_end, v_reg, v_vreg)) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (end, _, _))| *end)
                .expect("active nonempty");
            if v_end > *e {
                assignment.remove(&v_vreg);
                spill_slots.insert(v_vreg, next_slot);
                next_slot += 1;
                active.swap_remove(pos);
                assignment.insert(*v, v_reg);
                active.push((*e, v_reg, *v));
            } else {
                spill_slots.insert(*v, next_slot);
                next_slot += 1;
            }
        }
    }

    // Call-save slots are allocated per call site in `emit_op`; reserve
    // space generously: one slot per allocatable register.
    let frame_slots = next_slot + ALLOCATABLE.len() as u32;

    // Block-local constant map for immediate folding (conservative: only
    // constants defined and never redefined in the same function).
    let mut consts: HashMap<u32, i32> = HashMap::new();
    let mut def_counts: HashMap<u32, usize> = HashMap::new();
    for block in &func.blocks {
        for op in &block.ops {
            if let Some(d) = op.def() {
                *def_counts.entry(d.0).or_insert(0) += 1;
            }
        }
    }
    for block in &func.blocks {
        for op in &block.ops {
            if let IrOp::Const { dest, value } = op {
                if def_counts.get(&dest.0) == Some(&1) {
                    consts.insert(dest.0, *value as i32);
                }
            }
        }
    }

    FnCtx {
        func,
        assignment,
        spill_slots,
        frame_slots,
        makes_calls,
        consts,
        fused,
        folds,
        intervals,
    }
}

fn loc(ctx: &FnCtx<'_>, v: u32) -> Loc {
    if let Some(r) = ctx.assignment.get(&v) {
        Loc::Phys(*r)
    } else if let Some(s) = ctx.spill_slots.get(&v) {
        Loc::Slot(*s)
    } else {
        Loc::Phys(TEMPS[0])
    }
}

fn arm_cond(bop: BinOp) -> Option<Cond> {
    Some(match bop {
        BinOp::CmpEq => Cond::Eq,
        BinOp::CmpNe => Cond::Ne,
        BinOp::CmpLt => Cond::Lt,
        BinOp::CmpLe => Cond::Le,
        BinOp::CmpGt => Cond::Gt,
        BinOp::CmpGe => Cond::Ge,
        BinOp::CmpLtu => Cond::Lo,
        BinOp::CmpLeu => Cond::Ls,
        BinOp::CmpGtu => Cond::Hi,
        BinOp::CmpGeu => Cond::Hs,
        _ => return None,
    })
}

/// Reads a vreg into a register, reloading spills into the given temp.
fn read_reg(ctx: &FnCtx<'_>, v: u32, temp: Reg, insts: &mut Vec<ArmInst>) -> Reg {
    match loc(ctx, v) {
        Loc::Phys(r) => r,
        Loc::Slot(s) => {
            insts.push(ArmInst::Ldr {
                width: MemWidth::Word,
                rd: temp,
                rn: SP,
                offset: (s * 4) as i32,
            });
            temp
        }
    }
}

/// Reads a vreg as a flexible operand, folding rotated immediates.
fn read_op2(ctx: &FnCtx<'_>, v: u32, temp: Reg, insts: &mut Vec<ArmInst>) -> Op2 {
    if let Some(c) = ctx.consts.get(&v) {
        if Op2::fits_rotated_imm(*c) {
            return Op2::Imm(*c);
        }
    }
    Op2::Reg(read_reg(ctx, v, temp, insts))
}

/// Returns the register a def should be computed into, plus whether a
/// post-store to a spill slot is needed.
fn def_reg(ctx: &FnCtx<'_>, v: u32) -> (Reg, Option<u32>) {
    match loc(ctx, v) {
        Loc::Phys(r) => (r, None),
        Loc::Slot(s) => (TEMPS[2], Some(s)),
    }
}

fn finish_def(slot: Option<u32>, reg: Reg, insts: &mut Vec<ArmInst>) {
    if let Some(s) = slot {
        insts.push(ArmInst::Str {
            width: MemWidth::Word,
            rd: reg,
            rn: SP,
            offset: (s * 4) as i32,
        });
    }
}

fn emit_op(
    ctx: &FnCtx<'_>,
    block: u32,
    op_index: usize,
    op: &IrOp,
    insts: &mut Vec<ArmInst>,
    call_fixups: &mut Vec<(usize, String)>,
) -> Result<(), ArmCodegenError> {
    match ctx.folds.get(&(block, op_index)) {
        Some(AddrFold::SkipAdd) => return Ok(()),
        Some(AddrFold::Mem { lhs, rhs }) => {
            let rn = read_reg(ctx, *lhs, TEMPS[0], insts);
            let rm = read_reg(ctx, *rhs, TEMPS[1], insts);
            match op {
                IrOp::Load { kind, dest, .. } => {
                    let (rd, slot) = def_reg(ctx, dest.0);
                    let width = match kind {
                        LoadKind::Word => MemWidth::Word,
                        LoadKind::Half => MemWidth::HalfSigned,
                        LoadKind::HalfU => MemWidth::Half,
                        LoadKind::Byte => MemWidth::ByteSigned,
                        LoadKind::ByteU => MemWidth::Byte,
                    };
                    insts.push(ArmInst::LdrReg { width, rd, rn, rm });
                    finish_def(slot, rd, insts);
                }
                IrOp::Store { kind, value, .. } => {
                    let rv = read_reg(ctx, value.0, TEMPS[2], insts);
                    let width = match kind {
                        StoreKind::Word => MemWidth::Word,
                        StoreKind::Half => MemWidth::Half,
                        StoreKind::Byte => MemWidth::Byte,
                    };
                    insts.push(ArmInst::StrReg {
                        width,
                        rd: rv,
                        rn,
                        rm,
                    });
                }
                _ => unreachable!("folds only target memory accesses"),
            }
            return Ok(());
        }
        None => {}
    }
    match op {
        IrOp::Const { dest, value } => {
            let (rd, slot) = def_reg(ctx, dest.0);
            insts.push(ArmInst::Mov {
                rd,
                op2: Op2::Imm(*value as i32),
            });
            finish_def(slot, rd, insts);
        }
        IrOp::Copy { dest, src } => {
            let rs = read_reg(ctx, src.0, TEMPS[0], insts);
            let (rd, slot) = def_reg(ctx, dest.0);
            if rd != rs || slot.is_some() {
                insts.push(ArmInst::Mov {
                    rd,
                    op2: Op2::Reg(rs),
                });
                finish_def(slot, rd, insts);
            }
        }
        IrOp::Un { op: uop, dest, src } => {
            let rs = read_reg(ctx, src.0, TEMPS[0], insts);
            let (rd, slot) = def_reg(ctx, dest.0);
            match uop {
                UnOp::Neg => insts.push(ArmInst::Alu {
                    op: ArmOp::Rsb,
                    rd,
                    rn: rs,
                    op2: Op2::Imm(0),
                }),
                UnOp::Not => insts.push(ArmInst::Mvn {
                    rd,
                    op2: Op2::Reg(rs),
                }),
            }
            finish_def(slot, rd, insts);
        }
        IrOp::Bin {
            op: bop,
            dest,
            lhs,
            rhs,
        } => {
            // A comparison fused into the block terminator emits nothing
            // here; the CMP is issued with the branch.
            if ctx.fused.get(&block).is_some_and(|_| {
                op.def().is_some()
                    && matches!(&ctx.func.block(epic_ir::BlockId(block)).term,
                        Terminator::Branch { cond, .. } if Some(*cond) == op.def())
            }) {
                let _ = op_index;
                return Ok(());
            }
            emit_bin(ctx, *bop, dest.0, lhs.0, rhs.0, insts);
        }
        IrOp::Load {
            kind,
            dest,
            base,
            offset,
        } => {
            let rb = read_reg(ctx, base.0, TEMPS[0], insts);
            let (rd, slot) = def_reg(ctx, dest.0);
            let width = match kind {
                LoadKind::Word => MemWidth::Word,
                LoadKind::Half => MemWidth::HalfSigned,
                LoadKind::HalfU => MemWidth::Half,
                LoadKind::Byte => MemWidth::ByteSigned,
                LoadKind::ByteU => MemWidth::Byte,
            };
            insts.push(ArmInst::Ldr {
                width,
                rd,
                rn: rb,
                offset: *offset,
            });
            finish_def(slot, rd, insts);
        }
        IrOp::Store {
            kind,
            value,
            base,
            offset,
        } => {
            let rv = read_reg(ctx, value.0, TEMPS[0], insts);
            let rb = read_reg(ctx, base.0, TEMPS[1], insts);
            let width = match kind {
                StoreKind::Word => MemWidth::Word,
                StoreKind::Half => MemWidth::Half,
                StoreKind::Byte => MemWidth::Byte,
            };
            insts.push(ArmInst::Str {
                width,
                rd: rv,
                rn: rb,
                offset: *offset,
            });
        }
        IrOp::Call { callee, args, dest } => {
            if args.len() > ARG_REGS.len() {
                return Err(ArmCodegenError::TooManyArguments {
                    function: callee.clone(),
                    count: args.len(),
                });
            }
            // Save allocated registers live across the call.
            // Position bookkeeping mirrors `analyse`.
            let live_regs = live_phys_across(ctx, block, op_index);
            for (i, reg) in live_regs.iter().enumerate() {
                insts.push(ArmInst::Str {
                    width: MemWidth::Word,
                    rd: *reg,
                    rn: SP,
                    offset: ((ctx.frame_slots - 1 - i as u32) * 4) as i32,
                });
            }
            for (i, a) in args.iter().enumerate() {
                match loc(ctx, a.0) {
                    Loc::Phys(r) => insts.push(ArmInst::Mov {
                        rd: ARG_REGS[i],
                        op2: Op2::Reg(r),
                    }),
                    Loc::Slot(s) => insts.push(ArmInst::Ldr {
                        width: MemWidth::Word,
                        rd: ARG_REGS[i],
                        rn: SP,
                        offset: (s * 4) as i32,
                    }),
                }
            }
            call_fixups.push((insts.len(), callee.clone()));
            insts.push(ArmInst::Bl { target: 0 });
            if let Some(d) = dest {
                let (rd, slot) = def_reg(ctx, d.0);
                insts.push(ArmInst::Mov {
                    rd,
                    op2: Op2::Reg(RET_REG),
                });
                finish_def(slot, rd, insts);
            }
            for (i, reg) in live_regs.iter().enumerate() {
                insts.push(ArmInst::Ldr {
                    width: MemWidth::Word,
                    rd: *reg,
                    rn: SP,
                    offset: ((ctx.frame_slots - 1 - i as u32) * 4) as i32,
                });
            }
        }
    }
    Ok(())
}

/// Physical registers holding values live across the call at
/// `(block, op_index)`.
fn live_phys_across(ctx: &FnCtx<'_>, block: u32, op_index: usize) -> Vec<Reg> {
    // Recompute the linear position the same way `analyse` numbered it.
    let order = ctx.func.reverse_postorder();
    let mut cursor = 0u32;
    let mut pos = 0u32;
    for b in &order {
        let len = ctx.func.block(*b).ops.len() as u32;
        if b.0 == block {
            pos = cursor + 2 * op_index as u32;
        }
        cursor += 2 * len + 2;
    }
    let mut regs: Vec<Reg> = ctx
        .intervals
        .iter()
        .filter(|(_, s, e)| *s < pos && *e > pos + 1)
        .filter_map(|(v, _, _)| ctx.assignment.get(v).copied())
        .collect();
    regs.sort_unstable();
    regs.dedup();
    regs
}

fn emit_bin(ctx: &FnCtx<'_>, bop: BinOp, dest: u32, lhs: u32, rhs: u32, insts: &mut Vec<ArmInst>) {
    let simple = |op: ArmOp| Some(op);
    let arm_op = match bop {
        BinOp::Add => simple(ArmOp::Add),
        BinOp::Sub => simple(ArmOp::Sub),
        BinOp::And => simple(ArmOp::And),
        BinOp::Or => simple(ArmOp::Orr),
        BinOp::Xor => simple(ArmOp::Eor),
        BinOp::Shl => simple(ArmOp::Lsl),
        BinOp::Shr => simple(ArmOp::Lsr),
        BinOp::Sra => simple(ArmOp::Asr),
        BinOp::Rotr => simple(ArmOp::Ror),
        _ => None,
    };
    if let Some(op) = arm_op {
        let rn = read_reg(ctx, lhs, TEMPS[0], insts);
        let op2 = read_op2(ctx, rhs, TEMPS[1], insts);
        let (rd, slot) = def_reg(ctx, dest);
        insts.push(ArmInst::Alu { op, rd, rn, op2 });
        finish_def(slot, rd, insts);
        return;
    }
    match bop {
        BinOp::Mul => {
            let rn = read_reg(ctx, lhs, TEMPS[0], insts);
            let rm = read_reg(ctx, rhs, TEMPS[1], insts);
            let (rd, slot) = def_reg(ctx, dest);
            insts.push(ArmInst::Mul { rd, rn, rm });
            finish_def(slot, rd, insts);
        }
        BinOp::Div | BinOp::Rem => {
            let rn = read_reg(ctx, lhs, TEMPS[0], insts);
            let rm = read_reg(ctx, rhs, TEMPS[1], insts);
            let (rd, slot) = def_reg(ctx, dest);
            insts.push(if bop == BinOp::Div {
                ArmInst::SoftDiv { rd, rn, rm }
            } else {
                ArmInst::SoftRem { rd, rn, rm }
            });
            finish_def(slot, rd, insts);
        }
        BinOp::Min | BinOp::Max => {
            let rn = read_reg(ctx, lhs, TEMPS[0], insts);
            let rm = read_reg(ctx, rhs, TEMPS[1], insts);
            let (rd, slot) = def_reg(ctx, dest);
            insts.push(ArmInst::Cmp {
                rn,
                op2: Op2::Reg(rm),
            });
            insts.push(ArmInst::Mov {
                rd: TEMPS[2],
                op2: Op2::Reg(rn),
            });
            let take_rm_when = if bop == BinOp::Min {
                Cond::Gt
            } else {
                Cond::Lt
            };
            insts.push(ArmInst::MovCond {
                cond: take_rm_when,
                rd: TEMPS[2],
                op2: Op2::Reg(rm),
            });
            insts.push(ArmInst::Mov {
                rd,
                op2: Op2::Reg(TEMPS[2]),
            });
            finish_def(slot, rd, insts);
        }
        cmp => {
            // Comparison as a value: flags + conditional move.
            let cond = arm_cond(cmp).expect("remaining operators are comparisons");
            let rn = read_reg(ctx, lhs, TEMPS[0], insts);
            let op2 = read_op2(ctx, rhs, TEMPS[1], insts);
            let (rd, slot) = def_reg(ctx, dest);
            insts.push(ArmInst::Cmp { rn, op2 });
            insts.push(ArmInst::Mov {
                rd,
                op2: Op2::Imm(0),
            });
            insts.push(ArmInst::MovCond {
                cond,
                rd,
                op2: Op2::Imm(1),
            });
            finish_def(slot, rd, insts);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_terminator(
    ctx: &FnCtx<'_>,
    block: u32,
    term: &Terminator,
    next: Option<u32>,
    frame_bytes: u32,
    insts: &mut Vec<ArmInst>,
    branch_fixups: &mut Vec<(usize, u32)>,
) {
    match term {
        Terminator::Jump(t) => {
            if next != Some(t.0) {
                branch_fixups.push((insts.len(), t.0));
                insts.push(ArmInst::B {
                    cond: Cond::Al,
                    target: 0,
                });
            }
        }
        Terminator::Branch {
            cond,
            then_block,
            else_block,
        } => {
            let fused = ctx.fused.get(&block).copied();
            let branch_cond = if let Some((c, l, r)) = fused {
                let rn = read_reg(ctx, l.0, TEMPS[0], insts);
                let op2 = read_op2(ctx, r.0, TEMPS[1], insts);
                insts.push(ArmInst::Cmp { rn, op2 });
                c
            } else {
                let rc = read_reg(ctx, cond.0, TEMPS[0], insts);
                insts.push(ArmInst::Cmp {
                    rn: rc,
                    op2: Op2::Imm(0),
                });
                Cond::Ne
            };
            if next == Some(else_block.0) {
                branch_fixups.push((insts.len(), then_block.0));
                insts.push(ArmInst::B {
                    cond: branch_cond,
                    target: 0,
                });
            } else if next == Some(then_block.0) {
                branch_fixups.push((insts.len(), else_block.0));
                insts.push(ArmInst::B {
                    cond: branch_cond.negate(),
                    target: 0,
                });
            } else {
                branch_fixups.push((insts.len(), then_block.0));
                insts.push(ArmInst::B {
                    cond: branch_cond,
                    target: 0,
                });
                branch_fixups.push((insts.len(), else_block.0));
                insts.push(ArmInst::B {
                    cond: Cond::Al,
                    target: 0,
                });
            }
        }
        Terminator::Ret(value) => {
            if let Some(v) = value {
                match loc(ctx, v.0) {
                    Loc::Phys(r) => {
                        if r != RET_REG {
                            insts.push(ArmInst::Mov {
                                rd: RET_REG,
                                op2: Op2::Reg(r),
                            });
                        }
                    }
                    Loc::Slot(s) => insts.push(ArmInst::Ldr {
                        width: MemWidth::Word,
                        rd: RET_REG,
                        rn: SP,
                        offset: (s * 4) as i32,
                    }),
                }
            }
            if ctx.makes_calls {
                insts.push(ArmInst::Ldr {
                    width: MemWidth::Word,
                    rd: LR,
                    rn: SP,
                    offset: 0,
                });
            }
            if frame_bytes > 0 {
                insts.push(ArmInst::Alu {
                    op: ArmOp::Add,
                    rd: SP,
                    rn: SP,
                    op2: Op2::Imm(frame_bytes as i32),
                });
            }
            insts.push(ArmInst::Bx { rm: LR });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
    use epic_ir::lower;

    fn compile_program(p: &Program, entry: &str, args: &[u32]) -> ArmProgram {
        let module = lower::lower(p).unwrap();
        compile(&module, entry, args).unwrap()
    }

    #[test]
    fn straight_line_codegen() {
        let p = Program::new()
            .function(FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret(Expr::lit(7))]));
        let program = compile_program(&p, "main", &[]);
        assert!(program.symbol("main").is_some());
        assert!(matches!(program.insts()[0], ArmInst::Bl { .. }));
        let listing = program.listing();
        assert!(listing.contains("main:"));
        assert!(listing.contains("bx r14"));
    }

    #[test]
    fn rotate_is_native() {
        let p = Program::new().function(
            FunctionDef::new("main", ["x"]).body([Stmt::ret(Expr::var("x").rotr(Expr::lit(3)))]),
        );
        let program = compile_program(&p, "main", &[5]);
        assert!(program
            .insts()
            .iter()
            .any(|i| matches!(i, ArmInst::Alu { op: ArmOp::Ror, .. })));
    }

    #[test]
    fn division_is_software() {
        let p = Program::new().function(
            FunctionDef::new("main", ["x"]).body([Stmt::ret(Expr::var("x").div(Expr::lit(3)))]),
        );
        let program = compile_program(&p, "main", &[9]);
        assert!(program
            .insts()
            .iter()
            .any(|i| matches!(i, ArmInst::SoftDiv { .. })));
    }

    #[test]
    fn small_constants_fold_into_immediates() {
        let p = Program::new().function(
            FunctionDef::new("main", ["x"]).body([Stmt::ret(Expr::var("x") + Expr::lit(255))]),
        );
        let program = compile_program(&p, "main", &[1]);
        assert!(program.insts().iter().any(|i| matches!(
            i,
            ArmInst::Alu {
                op: ArmOp::Add,
                op2: Op2::Imm(255),
                ..
            }
        )));
    }

    #[test]
    fn comparisons_fuse_into_branches() {
        let p = Program::new().function(FunctionDef::new("main", ["x"]).body([
            Stmt::if_(Expr::var("x").lt_s(Expr::lit(0)), [Stmt::ret(Expr::lit(1))]),
            Stmt::ret(Expr::lit(0)),
        ]));
        let program = compile_program(&p, "main", &[5]);
        let cmps = program
            .insts()
            .iter()
            .filter(|i| matches!(i, ArmInst::Cmp { .. }))
            .count();
        assert_eq!(cmps, 1);
        assert!(program
            .insts()
            .iter()
            .any(|i| matches!(i, ArmInst::B { cond: Cond::Lt, .. })));
    }

    #[test]
    fn unknown_entry_is_reported() {
        let p = Program::new()
            .function(FunctionDef::new("main", [] as [&str; 0]).body([Stmt::ret_void()]));
        let module = lower::lower(&p).unwrap();
        assert!(matches!(
            compile(&module, "nope", &[]),
            Err(ArmCodegenError::UnknownEntry { .. })
        ));
    }

    #[test]
    fn too_many_parameters_rejected() {
        let p = Program::new()
            .function(FunctionDef::new("main", ["a", "b", "c", "d", "e"]).body([Stmt::ret_void()]));
        let module = lower::lower(&p).unwrap();
        assert!(matches!(
            compile(&module, "main", &[]),
            Err(ArmCodegenError::TooManyArguments { .. })
        ));
    }
}
