//! The raw event log: every trace event, in emission order.

use epic_sim::{StallCause, TraceSink};

/// One captured [`TraceSink`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A bundle issued (`cycle`, `pc`, port demand, port budget).
    Issue {
        /// Processor cycle.
        cycle: u64,
        /// Bundle address.
        pc: u32,
        /// Register-file port operations the bundle needed.
        ports: usize,
        /// Port operations the controller provides per cycle.
        budget: usize,
    },
    /// A bundle occupied the execute stage.
    Execute {
        /// Processor cycle.
        cycle: u64,
        /// Bundle address.
        pc: u32,
        /// Non-`NOP` instructions in the bundle.
        instructions: u64,
        /// `NOP` padding slots.
        nops: u64,
        /// Operations per unit class (`[ALU, LSU, CMPU, BRU]`).
        unit_ops: [u64; 4],
    },
    /// An instruction was squashed by a false guard.
    Squash {
        /// Processor cycle.
        cycle: u64,
        /// Bundle address.
        pc: u32,
    },
    /// The front end lost a cycle.
    Stall {
        /// Processor cycle.
        cycle: u64,
        /// Bundle address the front end was stalled on.
        pc: u32,
        /// Why the cycle was lost.
        cause: StallCause,
    },
    /// A data-memory access (load when `store` is false).
    MemOp {
        /// Processor cycle.
        cycle: u64,
        /// Bundle address of the accessing bundle.
        pc: u32,
        /// Whether the access was a store.
        store: bool,
    },
    /// The processor executed `HALT`.
    Halt {
        /// Processor cycle.
        cycle: u64,
    },
    /// A cycle completed.
    CycleRetired {
        /// Processor cycle.
        cycle: u64,
    },
}

/// Captures the complete event stream in memory.
///
/// One event per stall cycle / issued bundle / squashed instruction —
/// long runs cannot afford this; it exists for tests (the
/// no-perturbation proptest, the engine-equivalence differential) and
/// ad-hoc inspection.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// The captured events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the captured events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for RecordingSink {
    fn bundle_issue(&mut self, cycle: u64, pc: u32, ports: usize, budget: usize) {
        self.events.push(TraceEvent::Issue {
            cycle,
            pc,
            ports,
            budget,
        });
    }

    fn bundle_execute(
        &mut self,
        cycle: u64,
        pc: u32,
        instructions: u64,
        nops: u64,
        unit_ops: &[u64; 4],
    ) {
        self.events.push(TraceEvent::Execute {
            cycle,
            pc,
            instructions,
            nops,
            unit_ops: *unit_ops,
        });
    }

    fn squash(&mut self, cycle: u64, pc: u32) {
        self.events.push(TraceEvent::Squash { cycle, pc });
    }

    fn stall(&mut self, cycle: u64, pc: u32, cause: StallCause) {
        self.events.push(TraceEvent::Stall { cycle, pc, cause });
    }

    fn mem_op(&mut self, cycle: u64, pc: u32, store: bool) {
        self.events.push(TraceEvent::MemOp { cycle, pc, store });
    }

    fn halt(&mut self, cycle: u64) {
        self.events.push(TraceEvent::Halt { cycle });
    }

    fn cycle_retired(&mut self, cycle: u64) {
        self.events.push(TraceEvent::CycleRetired { cycle });
    }
}
