//! Per-basic-block stall attribution.
//!
//! [`ProfileSink`] (re-exported from `epic-sim`, where the compiler's
//! profile-guided superblock formation also consumes it) counts, for
//! every bundle address, how many cycles the bundle issued and how many
//! front-end cycles were lost *waiting to issue it*, broken down by
//! [`StallCause`](epic_sim::StallCause). [`StallProfile`] then folds
//! those addresses into
//! basic blocks using the assembler's label table (each address belongs
//! to the greatest label at or below it), producing the hot-spot report
//! behind the `epic-prof` binary.

use std::collections::{BTreeMap, HashMap};

pub use epic_sim::{PcProfile, ProfileSink};

/// One basic block's share of execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// Label naming the block (`<entry>` for addresses before the
    /// first label).
    pub label: String,
    /// First bundle address of the block.
    pub start_pc: u32,
    /// Times control entered the block (issues of its first bundle).
    pub entries: u64,
    /// Cycles spent issuing the block's bundles.
    pub issue_cycles: u64,
    /// Instructions issued from the block (`NOP` padding excluded).
    pub instructions: u64,
    /// Issued instructions squashed by a false guard.
    pub squashed: u64,
    /// Stall cycles attributed to the block, indexed by
    /// `StallCause as usize` (see [`epic_sim::StallCause::ALL`]).
    pub stalls: [u64; 5],
    /// Data-memory loads performed by the block.
    pub loads: u64,
    /// Data-memory stores performed by the block.
    pub stores: u64,
}

impl BlockProfile {
    /// Total stall cycles attributed to the block.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Issue plus stall cycles: the block's total claim on the machine.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.issue_cycles + self.stall_total()
    }
}

/// The aggregated per-block report.
#[derive(Debug, Clone, Default)]
pub struct StallProfile {
    /// Total cycles of the run.
    pub cycles: u64,
    /// Blocks, sorted by descending [`BlockProfile::cost`].
    pub blocks: Vec<BlockProfile>,
}

impl StallProfile {
    /// Folds per-address counters into per-block rows.
    ///
    /// `labels` maps label name → bundle address (the assembler's
    /// [`epic_asm::Program::labels`] table). Every profiled address is
    /// attributed to the greatest label at or below it; addresses
    /// before the first label fall into a synthetic `<entry>` block.
    #[must_use]
    pub fn build(sink: &ProfileSink, labels: &HashMap<String, u32>) -> StallProfile {
        // Sorted (address, name); ties broken by name for determinism.
        let mut sorted: Vec<(u32, &str)> = labels
            .iter()
            .map(|(name, &addr)| (addr, name.as_str()))
            .collect();
        sorted.sort();

        let mut by_block: BTreeMap<u32, BlockProfile> = BTreeMap::new();
        for (pc, counters) in sink.per_pc() {
            let (start_pc, label) = match sorted.iter().rev().find(|&&(addr, _)| addr <= pc) {
                Some(&(addr, name)) => (addr, name.to_string()),
                None => (0, String::from("<entry>")),
            };
            let block = by_block.entry(start_pc).or_insert_with(|| BlockProfile {
                label,
                start_pc,
                entries: 0,
                issue_cycles: 0,
                instructions: 0,
                squashed: 0,
                stalls: [0; 5],
                loads: 0,
                stores: 0,
            });
            if pc == start_pc {
                block.entries += counters.issues;
            }
            block.issue_cycles += counters.issues;
            block.instructions += counters.instructions;
            block.squashed += counters.squashed;
            for (total, &n) in block.stalls.iter_mut().zip(&counters.stalls) {
                *total += n;
            }
            block.loads += counters.loads;
            block.stores += counters.stores;
        }

        let mut blocks: Vec<BlockProfile> = by_block.into_values().collect();
        blocks.sort_by(|a, b| b.cost().cmp(&a.cost()).then(a.start_pc.cmp(&b.start_pc)));
        StallProfile {
            cycles: sink.cycles(),
            blocks,
        }
    }

    /// Stall cycles across all blocks, by cause.
    #[must_use]
    pub fn stall_totals(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for block in &self.blocks {
            for (total, &n) in totals.iter_mut().zip(&block.stalls) {
                *total += n;
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_sim::{StallCause, TraceSink};

    #[test]
    fn addresses_fold_into_the_nearest_label_at_or_below() {
        let mut sink = ProfileSink::default();
        sink.bundle_issue(0, 0, 1, 8); // before any label -> <entry>
        sink.bundle_issue(1, 4, 1, 8); // loop
        sink.bundle_issue(2, 5, 1, 8); // still loop
        sink.stall(3, 5, StallCause::DataHazard);
        sink.bundle_issue(4, 9, 1, 8); // done
        sink.cycle_retired(0);
        sink.cycle_retired(1);

        let labels = HashMap::from([(String::from("loop"), 4u32), (String::from("done"), 9u32)]);
        let profile = StallProfile::build(&sink, &labels);
        assert_eq!(profile.cycles, 2);
        assert_eq!(profile.blocks.len(), 3);
        let loop_block = profile
            .blocks
            .iter()
            .find(|b| b.label == "loop")
            .expect("loop block");
        assert_eq!(loop_block.issue_cycles, 2);
        assert_eq!(loop_block.entries, 1, "only address 4 starts the block");
        assert_eq!(loop_block.stalls[StallCause::DataHazard as usize], 1);
        assert_eq!(loop_block.cost(), 3);
        // Highest-cost block sorts first.
        assert_eq!(profile.blocks[0].label, "loop");
        assert!(profile.blocks.iter().any(|b| b.label == "<entry>"));
    }
}
