//! `epic-prof`: where did the cycles go?
//!
//! Compiles a built-in workload for one processor configuration, runs it
//! with the full observability stack plugged in (metrics registry, stall
//! profiler and — on request — the Perfetto trace writer), verifies the
//! output against the workload's golden model, and prints a per-basic-
//! block hot-spot and stall-attribution report:
//!
//! ```text
//! epic-prof <workload> [--alus N] [--issue-width N] [--paper]
//!           [--format text|json] [--perfetto <trace.json>]
//! ```
//!
//! The text report names the hottest blocks of the *compiled assembly*
//! and renders each as a rustc-style diagnostic pointing at the block's
//! label in the generated source (the same `epic_asm::Diagnostic`
//! plumbing `epic-lint` uses). `--format json` emits one machine-
//! readable object with the configuration, the simulator statistics,
//! the metrics registry and the block table. `--perfetto <path>` also
//! writes a Chrome trace-event file for <https://ui.perfetto.dev>.
//!
//! Before printing anything the tool reconciles the metrics registry
//! against the engine's own `SimStats` and exits nonzero on any
//! mismatch, so a report can never disagree with the simulator.

use epic_config::Config;
use epic_obs::{MetricsRegistry, PerfettoSink, ProfileSink, StallCause, StallProfile, TeeSink};
use epic_sim::SimStats;
use epic_workloads::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    workload: String,
    alus: usize,
    issue_width: usize,
    scale: Scale,
    format: Format,
    perfetto: Option<PathBuf>,
}

const USAGE: &str = "usage: epic-prof <workload> [--alus N] [--issue-width N] [--paper] \
                     [--format text|json] [--perfetto <trace.json>]";

fn parse_args() -> Result<Args, String> {
    let mut workload = None;
    let mut alus = 4usize;
    let mut issue_width = 4usize;
    let mut scale = Scale::Test;
    let mut format = Format::Text;
    let mut perfetto = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let parse_format = |text: &str| match text {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (text or json)")),
        };
        match arg.as_str() {
            "--alus" => {
                alus = iter
                    .next()
                    .ok_or("--alus needs a count")?
                    .parse()
                    .map_err(|e| format!("--alus: {e}"))?;
            }
            "--issue-width" => {
                issue_width = iter
                    .next()
                    .ok_or("--issue-width needs a count")?
                    .parse()
                    .map_err(|e| format!("--issue-width: {e}"))?;
            }
            "--paper" => scale = Scale::Paper,
            "--format" => {
                format = parse_format(&iter.next().ok_or("--format needs a value")?)?;
            }
            "--perfetto" => {
                perfetto = Some(PathBuf::from(iter.next().ok_or("--perfetto needs a path")?));
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    format = parse_format(value)?;
                } else if !other.starts_with('-') && workload.is_none() {
                    workload = Some(other.to_owned());
                } else {
                    return Err(format!("unknown flag `{other}`\n{USAGE}"));
                }
            }
        }
    }
    Ok(Args {
        workload: workload.ok_or_else(|| format!("no workload given\n{USAGE}"))?,
        alus,
        issue_width,
        scale,
        format,
        perfetto,
    })
}

fn stats_json(stats: &SimStats) -> String {
    format!(
        "{{\"cycles\":{},\"bundles\":{},\"instructions\":{},\"squashed\":{},\"nops\":{},\
         \"loads\":{},\"stores\":{},\"ipc\":{:.4},\"stalls\":{{\"data_hazard\":{},\
         \"unit_busy\":{},\"regfile_port\":{},\"branch_flush\":{},\"memory_contention\":{},\
         \"total\":{}}},\"fu_busy_cycles\":{{\"alu\":{},\"lsu\":{},\"cmpu\":{},\"bru\":{}}}}}",
        stats.cycles,
        stats.bundles,
        stats.instructions,
        stats.squashed,
        stats.nops,
        stats.loads,
        stats.stores,
        stats.ipc(),
        stats.stalls.data_hazard,
        stats.stalls.unit_busy,
        stats.stalls.regfile_port,
        stats.stalls.branch_flush,
        stats.stalls.memory_contention,
        stats.stalls.total(),
        stats.alu_busy_cycles,
        stats.lsu_busy_cycles,
        stats.cmpu_busy_cycles,
        stats.bru_busy_cycles,
    )
}

fn blocks_json(profile: &StallProfile) -> String {
    let rows: Vec<String> = profile
        .blocks
        .iter()
        .map(|block| {
            let stalls: Vec<String> = StallCause::ALL
                .iter()
                .map(|&cause| format!("\"{}\":{}", cause.name(), block.stalls[cause as usize]))
                .collect();
            format!(
                "{{\"label\":\"{}\",\"start_pc\":{},\"issue_cycles\":{},\"instructions\":{},\
                 \"squashed\":{},\"loads\":{},\"stores\":{},\"stalls\":{{{}}},\"cost\":{}}}",
                block.label,
                block.start_pc,
                block.issue_cycles,
                block.instructions,
                block.squashed,
                block.loads,
                block.stores,
                stalls.join(","),
                block.cost()
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// One block's static worst-case price next to what the run actually
/// paid — the raw material of the PRF002 diagnostic.
struct BoundGap {
    label: String,
    start_pc: u32,
    static_upper: u64,
    observed: u64,
}

impl BoundGap {
    fn gap(&self) -> u64 {
        self.static_upper.saturating_sub(self.observed)
    }
}

/// Prices every block with the static cost model (per-pc worst-case
/// contributions from the measured issue counts) and pairs that with the
/// block's observed cost (issue cycles + attributed stalls). Sorted by
/// gap, widest first: the top entries are where the static bound is most
/// pessimistic — or, when `observed` wins, where attribution found costs
/// the model missed.
fn bound_gaps(profile: &StallProfile, bounds: &epic_bound::CycleBounds) -> Vec<BoundGap> {
    let mut starts: Vec<(u32, &str)> = profile
        .blocks
        .iter()
        .map(|b| (b.start_pc, b.label.as_str()))
        .collect();
    starts.sort_unstable();
    let block_of = |pc: u32| -> Option<&str> {
        let idx = starts.partition_point(|&(start, _)| start <= pc);
        idx.checked_sub(1).map(|i| starts[i].1)
    };
    let mut upper_by_label: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for pb in &bounds.per_pc {
        if let Some(label) = block_of(pb.pc) {
            *upper_by_label.entry(label).or_default() += pb.contribution_hi().unwrap_or(0);
        }
    }
    let mut gaps: Vec<BoundGap> = profile
        .blocks
        .iter()
        .map(|block| BoundGap {
            label: block.label.clone(),
            start_pc: block.start_pc,
            static_upper: upper_by_label
                .get(block.label.as_str())
                .copied()
                .unwrap_or(0),
            observed: block.cost(),
        })
        .collect();
    gaps.sort_by(|a, b| b.gap().cmp(&a.gap()).then(a.start_pc.cmp(&b.start_pc)));
    gaps
}

fn gaps_json(gaps: &[BoundGap]) -> String {
    let rows: Vec<String> = gaps
        .iter()
        .map(|g| {
            format!(
                "{{\"label\":\"{}\",\"start_pc\":{},\"static_upper\":{},\"observed\":{},\
                 \"gap\":{}}}",
                g.label,
                g.start_pc,
                g.static_upper,
                g.observed,
                g.gap()
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// 1-based line of `label:` in the assembly source, 0 when absent.
fn label_line(source: &str, label: &str) -> usize {
    source
        .lines()
        .position(|line| {
            let code = match line.find(';') {
                Some(pos) => &line[..pos],
                None => line,
            };
            code.trim() == format!("{label}:")
        })
        .map_or(0, |idx| idx + 1)
}

fn dominant_cause(block: &epic_obs::BlockProfile) -> Option<StallCause> {
    StallCause::ALL
        .iter()
        .copied()
        .max_by_key(|&cause| block.stalls[cause as usize])
        .filter(|&cause| block.stalls[cause as usize] > 0)
}

fn text_report(
    args: &Args,
    stats: &SimStats,
    profile: &StallProfile,
    bounds: &epic_bound::CycleBounds,
    gaps: &[BoundGap],
    compiled: &epic_core::compiler::CompiledProgram,
) -> String {
    use std::fmt::Write as _;
    let assembly = compiled.assembly();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "epic-prof: {} on {} ALU / {}-wide EPIC ({:?} scale)\n",
        args.workload, args.alus, args.issue_width, args.scale
    );
    let _ = writeln!(out, "{stats}");
    let sched = compiled.stats().sched;
    let _ = writeln!(
        out,
        "occupancy           {:.1}% of issue slots filled ({} / {})\n",
        100.0 * sched.occupancy(),
        sched.slots_filled,
        sched.slots_available
    );
    let _ = writeln!(
        out,
        "cycle bound         [{}, {}] from measured issue counts; actual {}\n",
        bounds.lower,
        bounds
            .upper
            .map_or_else(|| "inf".to_owned(), |u| u.to_string()),
        stats.cycles
    );

    let _ = writeln!(
        out,
        "hot blocks (cost = issue cycles + attributed stall cycles):\n"
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>7} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "block", "cost", "%cyc", "issue", "stall", "data", "unit", "port", "flush", "mem"
    );
    for block in &profile.blocks {
        let percent = if profile.cycles == 0 {
            0.0
        } else {
            block.cost() as f64 * 100.0 / profile.cycles as f64
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>7} {:>5.1}% {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            block.label,
            block.cost(),
            percent,
            block.issue_cycles,
            block.stall_total(),
            block.stalls[StallCause::DataHazard as usize],
            block.stalls[StallCause::UnitBusy as usize],
            block.stalls[StallCause::RegfilePort as usize],
            block.stalls[StallCause::BranchFlush as usize],
            block.stalls[StallCause::MemoryContention as usize],
        );
    }
    out.push('\n');

    // The hottest stalling blocks, rendered as rustc-style diagnostics
    // against the compiled assembly (the same plumbing epic-lint uses).
    let origin = format!("{}.s", args.workload);
    for block in profile
        .blocks
        .iter()
        .filter(|b| b.stall_total() > 0)
        .take(3)
    {
        let Some(cause) = dominant_cause(block) else {
            continue;
        };
        let percent = if profile.cycles == 0 {
            0.0
        } else {
            block.stall_total() as f64 * 100.0 / profile.cycles as f64
        };
        let mut message = format!(
            "block `{}` loses {} cycle(s) to stalls ({percent:.1}% of the run), \
             mostly {}",
            block.label,
            block.stall_total(),
            cause.name()
        );
        // Branch- and latency-shaped stalls are what region scheduling
        // attacks: name the superblock trace through this block.
        if matches!(cause, StallCause::BranchFlush | StallCause::DataHazard) {
            if let Some(hint) = compiled.trace().and_then(|t| {
                t.functions.iter().find_map(|f| {
                    epic_core::compiler::suggest::superblock_hint(f, &block.label, None)
                })
            }) {
                if hint.applied {
                    let _ = write!(
                        message,
                        "; superblock region `{}` already absorbs it",
                        hint.path()
                    );
                } else {
                    let _ = write!(
                        message,
                        "; consider superblock scheduling: hot trace `{}`",
                        hint.path()
                    );
                }
            }
        }
        let diag = epic_asm::Diagnostic::warning("PRF001", message)
            .with_line(label_line(assembly, &block.label))
            .with_bundle(block.start_pc as usize, None);
        out.push_str(&diag.render(&origin, Some(assembly)));
    }

    // Where the static cost model is most pessimistic: blocks whose
    // worst-case price exceeds what the run actually paid. A wide gap
    // means the worst case (hazards unforwarded, ports saturated,
    // branches always flushing) did not materialise here — tightening
    // the bound starts at these blocks.
    let total_gap: u64 = gaps.iter().map(BoundGap::gap).sum();
    for gap in gaps.iter().filter(|g| g.gap() > 0).take(3) {
        let share = if total_gap > 0 {
            gap.gap() as f64 * 100.0 / total_gap as f64
        } else {
            0.0
        };
        let message = format!(
            "block `{}` is priced at {} worst-case cycle(s) but cost {} — the static \
             bound overestimates by {} cycle(s) ({share:.1}% of the pessimism)",
            gap.label,
            gap.static_upper,
            gap.observed,
            gap.gap()
        );
        let diag = epic_asm::Diagnostic::warning("PRF002", message)
            .with_line(label_line(assembly, &gap.label))
            .with_bundle(gap.start_pc as usize, None);
        out.push_str(&diag.render(&origin, Some(assembly)));
    }
    out
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let workloads = epic_workloads::all(args.scale);
    let workload = workloads
        .iter()
        .find(|w| w.name == args.workload)
        .ok_or_else(|| {
            let names: Vec<&str> = workloads.iter().map(|w| w.name.as_str()).collect();
            format!(
                "unknown workload `{}` (available: {})",
                args.workload,
                names.join(", ")
            )
        })?;
    let config = Config::builder()
        .num_alus(args.alus)
        .issue_width(args.issue_width)
        .build()
        .map_err(|e| format!("configuration: {e}"))?;

    let perfetto = args.perfetto.as_ref().map(|_| PerfettoSink::default());
    let mut sink = TeeSink(
        TeeSink(MetricsRegistry::default(), ProfileSink::default()),
        perfetto,
    );
    let run = epic_core::experiments::run_epic_workload_observed(workload, &config, &mut sink)
        .map_err(|e| e.to_string())?;
    let TeeSink(TeeSink(mut metrics, profiler), perfetto) = sink;

    // The report must never disagree with the engine: reconcile the
    // registry against SimStats before printing anything.
    metrics.finish();
    let stats = run.stats();
    metrics
        .reconcile(stats)
        .map_err(|e| format!("metrics/SimStats reconciliation failed:\n{e}"))?;
    let profile = StallProfile::build(&profiler, run.program.labels());
    let attributed: u64 = profile.stall_totals().iter().sum();
    if attributed != stats.stalls.total() {
        return Err(format!(
            "stall attribution ({attributed}) does not sum to SimStats.stalls ({})",
            stats.stalls.total()
        ));
    }

    // Price the program with the static cost model over the measured
    // issue counts, then line the per-block worst case up against what
    // the run actually paid (PRF002).
    let counts: std::collections::BTreeMap<u32, u64> =
        profiler.per_pc().map(|(pc, p)| (pc, p.issues)).collect();
    let model = epic_bound::CostModel::new(&config);
    let bounds = epic_bound::analyze_cycles(
        &config,
        run.program.bundles(),
        run.program.entry() as usize,
        &epic_bound::CountSource::Measured(&counts),
        &model,
        &epic_bound::BoundOptions::default(),
    );
    if !bounds.contains(stats.cycles) {
        return Err(format!(
            "static cycle interval [{}, {:?}] does not contain the run's {} cycles",
            bounds.lower, bounds.upper, stats.cycles
        ));
    }
    let gaps = bound_gaps(&profile, &bounds);

    if let (Some(path), Some(mut sink)) = (args.perfetto.as_ref(), perfetto) {
        std::fs::write(path, sink.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        if args.format == Format::Text {
            eprintln!(
                "epic-prof: wrote {} (open at https://ui.perfetto.dev)",
                path.display()
            );
        }
    }

    match args.format {
        Format::Text => {
            print!(
                "{}",
                text_report(args, stats, &profile, &bounds, &gaps, &run.compiled)
            );
        }
        Format::Json => {
            println!(
                "{{\"workload\":\"{}\",\"scale\":\"{:?}\",\"engine\":\"{}\",\
                 \"config\":{{\"alus\":{},\
                 \"issue_width\":{}}},\"stats\":{},\"metrics\":{},\"blocks\":{},\
                 \"bound\":{{\"lower\":{},\"upper\":{}}},\"bound_gaps\":{}}}",
                args.workload,
                args.scale,
                // Profiling needs the per-cycle event stream, and an
                // observing sink always gets the decoded engine (the
                // block engine stands down when observed).
                epic_sim::Engine::Decoded,
                args.alus,
                args.issue_width,
                stats_json(stats),
                metrics.to_json(),
                blocks_json(&profile),
                bounds.lower,
                bounds
                    .upper
                    .map_or_else(|| "null".to_owned(), |u| u.to_string()),
                gaps_json(&gaps)
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("epic-prof: {message}");
            ExitCode::FAILURE
        }
    }
}
