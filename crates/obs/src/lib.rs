//! Cycle-accurate observability for the EPIC simulator and toolchain.
//!
//! The paper's performance story (§4, Table 2) is a story about *stalls*
//! — register-port pressure at the 4× register-file controller, fetch
//! bandwidth at the 2× memory controller, branch flushes — yet aggregate
//! [`SimStats`] only says *how many* cycles were lost, not *where* or
//! *why over time*. This crate turns the simulator's per-cycle event
//! stream into explanations:
//!
//! * [`MetricsRegistry`] — counters and fixed-bucket histograms
//!   (stall-length, port-demand and bundle-occupancy distributions) that
//!   reconcile **exactly**, field for field, with the engine's own
//!   [`SimStats`] (enforced by `tests/reconcile.rs` across every
//!   workload × configuration × engine);
//! * [`PerfettoSink`] — a Chrome/Perfetto trace-event JSON writer (one
//!   track per functional unit plus stall and fetch tracks); open the
//!   output at <https://ui.perfetto.dev>;
//! * [`ProfileSink`] + [`StallProfile`] — per-bundle and per-basic-block
//!   issue/stall attribution, the engine behind the `epic-prof` binary;
//! * [`RecordingSink`] — the raw event log, for tests and ad-hoc tools.
//!
//! The seam itself — the [`TraceSink`] trait — lives in `epic-sim`
//! (re-exported here), because the execution engines are monomorphised
//! over it: the default [`NopSink`] path compiles to the exact code that
//! ran before observability existed, so tracing costs nothing unless a
//! real sink is plugged in. The `sim_throughput` bench holds that claim
//! to < 2%.
//!
//! # Examples
//!
//! ```
//! use epic_config::Config;
//! use epic_obs::MetricsRegistry;
//! use epic_sim::Simulator;
//!
//! let config = Config::default();
//! let program = epic_asm::assemble(
//!     "    MOVE r1, #40\n;;\n    ADD r1, r1, #2\n;;\n    HALT\n;;\n",
//!     &config,
//! )?;
//! let mut sim = Simulator::try_new(&config, program.bundles().to_vec(), program.entry())?;
//! let mut metrics = MetricsRegistry::default();
//! sim.run_with_sink(&mut metrics)?;
//! metrics.reconcile(sim.stats()).expect("metrics match SimStats exactly");
//! assert_eq!(metrics.counter("cycles"), sim.stats().cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod perfetto;
mod profile;
mod record;

pub use epic_sim::{NopSink, SimStats, StallCause, TeeSink, TraceSink};
pub use metrics::{Histogram, MetricsRegistry};
pub use perfetto::{PerfettoSink, TraceSpan};
pub use profile::{BlockProfile, PcProfile, ProfileSink, StallProfile};
pub use record::{RecordingSink, TraceEvent};
