//! Chrome/Perfetto trace-event JSON export.
//!
//! [`PerfettoSink`] turns the per-cycle event stream into a
//! `traceEvents` JSON document that <https://ui.perfetto.dev> (or
//! `chrome://tracing`) renders directly. The document holds one track
//! per functional-unit class (ALU, LSU, CMPU, BRU) plus a fetch track
//! (which bundle occupied the front end each cycle) and a stall track
//! (contiguous runs of lost cycles, labelled by cause). Timestamps are
//! processor cycles, written into the `ts` microsecond field — in the
//! UI one "µs" reads as one cycle.
//!
//! The schema (track ids, span names, B/E pairing rules) is documented
//! in `DESIGN.md` §11 and pinned by `tests/perfetto.rs` against a
//! golden file.

use epic_sim::{StallCause, TraceSink};

/// Trace track (Perfetto thread) identifiers, in display order.
const TRACKS: [(u32, &str); 6] = [
    (1, "fetch"),
    (2, "stall"),
    (3, "ALU"),
    (4, "LSU"),
    (5, "CMPU"),
    (6, "BRU"),
];

const TID_FETCH: u32 = 1;
const TID_STALL: u32 = 2;
/// `unit_ops` index → track id (ALU, LSU, CMPU, BRU).
const TID_UNIT: [u32; 4] = [3, 4, 5, 6];
const UNIT_NAMES: [&str; 4] = ["ALU", "LSU", "CMPU", "BRU"];

/// One closed span on one track: `[start, end)` in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Track (Perfetto `tid`) the span belongs to.
    pub tid: u32,
    /// Span label.
    pub name: String,
    /// First cycle covered.
    pub start: u64,
    /// One past the last cycle covered (`end > start` always).
    pub end: u64,
}

/// An in-progress run on one track, extended cycle by cycle.
#[derive(Debug, Clone)]
struct OpenRun {
    name: String,
    start: u64,
    last_cycle: u64,
}

/// Collects per-cycle events into spans and renders trace-event JSON.
#[derive(Debug, Default)]
pub struct PerfettoSink {
    spans: Vec<TraceSpan>,
    /// Open run per track, indexed by `tid - 1`.
    open: [Option<OpenRun>; 6],
}

impl PerfettoSink {
    /// Extends the open run on `tid` if `name` matches and `cycle` is
    /// adjacent; otherwise closes it and opens a new one.
    fn extend(&mut self, tid: u32, cycle: u64, name: String) {
        let slot = &mut self.open[(tid - 1) as usize];
        if let Some(run) = slot {
            if run.name == name && run.last_cycle + 1 == cycle {
                run.last_cycle = cycle;
                return;
            }
            let run = slot.take().expect("checked above");
            self.spans.push(TraceSpan {
                tid,
                name: run.name,
                start: run.start,
                end: run.last_cycle + 1,
            });
        }
        *slot = Some(OpenRun {
            name,
            start: cycle,
            last_cycle: cycle,
        });
    }

    /// Closes every open run. Idempotent; called by [`Self::to_json`].
    pub fn finish(&mut self) {
        for (index, slot) in self.open.iter_mut().enumerate() {
            if let Some(run) = slot.take() {
                self.spans.push(TraceSpan {
                    tid: index as u32 + 1,
                    name: run.name,
                    start: run.start,
                    end: run.last_cycle + 1,
                });
            }
        }
        // Renderers expect non-decreasing timestamps; runs close out of
        // order, so restore global order (stable: equal keys keep their
        // emission order).
        self.spans
            .sort_by_key(|span| (span.start, span.end, span.tid));
    }

    /// The collected spans (call [`Self::finish`] first to include
    /// still-open runs).
    #[must_use]
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Renders the Chrome trace-event JSON document.
    ///
    /// Emits `thread_name` metadata for every track, then a matched
    /// `B`/`E` pair per span, ordered by timestamp with `E` before `B`
    /// at equal timestamps so back-to-back spans never appear nested.
    #[must_use]
    pub fn to_json(&mut self) -> String {
        self.finish();

        // (ts, phase rank, tid, emission seq): rank 0 = E, 1 = B.
        let mut events: Vec<(u64, u8, u32, usize, &TraceSpan)> = Vec::new();
        for (seq, span) in self.spans.iter().enumerate() {
            events.push((span.start, 1, span.tid, seq, span));
            events.push((span.end, 0, span.tid, seq, span));
        }
        events.sort_by_key(|&(ts, rank, tid, seq, _)| (ts, rank, tid, seq));

        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"epic-sim\"}}",
        );
        for (tid, name) in TRACKS {
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
        for (ts, rank, tid, _, span) in events {
            let phase = if rank == 0 { "E" } else { "B" };
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"ph\":\"{phase}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                escape(&span.name)
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceSink for PerfettoSink {
    fn bundle_issue(&mut self, cycle: u64, pc: u32, _ports: usize, _budget: usize) {
        self.extend(TID_FETCH, cycle, format!("0x{pc:04x}"));
    }

    fn bundle_execute(
        &mut self,
        cycle: u64,
        _pc: u32,
        _instructions: u64,
        _nops: u64,
        unit_ops: &[u64; 4],
    ) {
        for (index, &ops) in unit_ops.iter().enumerate() {
            if ops > 0 {
                let name = if ops == 1 {
                    UNIT_NAMES[index].to_string()
                } else {
                    format!("{} x{ops}", UNIT_NAMES[index])
                };
                self.extend(TID_UNIT[index], cycle, name);
            }
        }
    }

    fn stall(&mut self, cycle: u64, _pc: u32, cause: StallCause) {
        self.extend(TID_STALL, cycle, cause.name().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_same_name_cycles_coalesce() {
        let mut sink = PerfettoSink::default();
        sink.stall(3, 0, StallCause::DataHazard);
        sink.stall(4, 0, StallCause::DataHazard);
        sink.stall(5, 0, StallCause::BranchFlush);
        sink.stall(9, 0, StallCause::BranchFlush);
        sink.finish();
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].start, spans[0].end), (3, 5));
        assert_eq!(spans[0].name, "data_hazard");
        assert_eq!((spans[1].start, spans[1].end), (5, 6));
        assert_eq!((spans[2].start, spans[2].end), (9, 10));
    }

    #[test]
    fn json_has_matched_begin_end_pairs() {
        let mut sink = PerfettoSink::default();
        sink.bundle_issue(0, 0, 3, 8);
        sink.bundle_execute(1, 0, 2, 2, &[1, 1, 0, 0]);
        sink.stall(2, 4, StallCause::MemoryContention);
        let json = sink.to_json();
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        assert!(json.contains("\"name\":\"fetch\""));
        assert!(json.contains("\"name\":\"memory_contention\""));
        assert!(json.contains("\"name\":\"ALU\""));
    }
}
