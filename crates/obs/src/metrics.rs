//! Counters and fixed-bucket histograms over the trace-event stream.

use epic_sim::{SimStats, StallCause, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram of `u64` samples.
///
/// `bounds[i]` is the **inclusive** upper edge of bucket `i`; one extra
/// overflow bucket collects everything above the last bound. The bucket
/// layout is fixed at construction, so recording is a branch-free scan
/// and two histograms with the same bounds can be compared bucket by
/// bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given inclusive upper bounds
    /// (must be strictly increasing).
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Inclusive upper bucket edges.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Bucket occupancies (`bounds().len() + 1` entries; last is
    /// overflow).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    fn to_json(&self) -> String {
        let join = |values: &[u64]| {
            values
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum\":{}}}",
            join(&self.bounds),
            join(&self.buckets),
            self.count,
            self.sum
        )
    }
}

/// An open run of consecutive stall cycles with one cause.
#[derive(Debug, Clone, Copy)]
struct StallRun {
    cause: StallCause,
    last_cycle: u64,
    length: u64,
}

/// The registry: named counters plus named fixed-bucket histograms, fed
/// directly as a [`TraceSink`].
///
/// Counter names mirror [`SimStats`] fields (`cycles`, `bundles`,
/// `instructions`, `squashed`, `nops`, `loads`, `stores`,
/// `fu.*_busy_cycles`, `stall.<cause>`); histograms are
/// `stall_length.<cause>` (length of each contiguous same-cause stall
/// run, in cycles), `port_demand` (register-file port operations per
/// issued bundle) and `bundle_occupancy` (non-`NOP` instructions per
/// executed bundle). [`reconcile`](MetricsRegistry::reconcile) proves
/// the totals equal the engine's own statistics field for field.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<String, Histogram>,
    run: Option<StallRun>,
}

/// Inclusive bucket edges for stall-run lengths (cycles).
const STALL_LENGTH_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Inclusive bucket edges for per-bundle register-file port demand.
const PORT_DEMAND_BOUNDS: [u64; 17] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
/// Inclusive bucket edges for non-`NOP` instructions per bundle.
const OCCUPANCY_BOUNDS: [u64; 9] = [0, 1, 2, 3, 4, 5, 6, 7, 8];

impl Default for MetricsRegistry {
    fn default() -> Self {
        let mut histograms = BTreeMap::new();
        for cause in StallCause::ALL {
            histograms.insert(
                format!("stall_length.{}", cause.name()),
                Histogram::new(&STALL_LENGTH_BOUNDS),
            );
        }
        histograms.insert(
            "port_demand".to_owned(),
            Histogram::new(&PORT_DEMAND_BOUNDS),
        );
        histograms.insert(
            "bundle_occupancy".to_owned(),
            Histogram::new(&OCCUPANCY_BOUNDS),
        );
        MetricsRegistry {
            counters: BTreeMap::new(),
            histograms,
            run: None,
        }
    }
}

impl MetricsRegistry {
    /// Reads a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    fn bump(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    fn flush_run(&mut self) {
        if let Some(run) = self.run.take() {
            let key = format!("stall_length.{}", run.cause.name());
            self.histograms
                .get_mut(&key)
                .expect("per-cause histogram pre-registered")
                .record(run.length);
        }
    }

    /// Closes any open stall run. Called automatically when the
    /// processor halts or issues again; call it by hand only when a run
    /// was aborted mid-stall (e.g. a simulator error).
    pub fn finish(&mut self) {
        self.flush_run();
    }

    /// Proves the registry's totals equal `stats` field for field:
    /// every counter against its [`SimStats`] field, and each
    /// `stall_length.<cause>` histogram's cycle sum against the
    /// engine's per-cause stall counter.
    ///
    /// # Errors
    ///
    /// Returns a message naming every mismatching field.
    pub fn reconcile(&self, stats: &SimStats) -> Result<(), String> {
        let mut errors = String::new();
        let mut check = |name: &str, got: u64, want: u64| {
            if got != want {
                let _ = writeln!(errors, "{name}: metrics {got} != SimStats {want}");
            }
        };
        check("cycles", self.counter("cycles"), stats.cycles);
        check("bundles", self.counter("bundles"), stats.bundles);
        check(
            "instructions",
            self.counter("instructions"),
            stats.instructions,
        );
        check("squashed", self.counter("squashed"), stats.squashed);
        check("nops", self.counter("nops"), stats.nops);
        check("loads", self.counter("loads"), stats.loads);
        check("stores", self.counter("stores"), stats.stores);
        check(
            "fu.alu_busy_cycles",
            self.counter("fu.alu_busy_cycles"),
            stats.alu_busy_cycles,
        );
        check(
            "fu.lsu_busy_cycles",
            self.counter("fu.lsu_busy_cycles"),
            stats.lsu_busy_cycles,
        );
        check(
            "fu.cmpu_busy_cycles",
            self.counter("fu.cmpu_busy_cycles"),
            stats.cmpu_busy_cycles,
        );
        check(
            "fu.bru_busy_cycles",
            self.counter("fu.bru_busy_cycles"),
            stats.bru_busy_cycles,
        );
        for cause in StallCause::ALL {
            let name = cause.name();
            let want = stats.stalls.by_cause(cause);
            check(&format!("stall.{name}"), self.stall_counter(cause), want);
            let hist = &self.histograms[&format!("stall_length.{name}")];
            check(&format!("stall_length.{name}.sum"), hist.sum(), want);
        }
        let occupancy = &self.histograms["bundle_occupancy"];
        check("bundle_occupancy.count", occupancy.count(), stats.bundles);
        check("bundle_occupancy.sum", occupancy.sum(), stats.instructions);
        check(
            "port_demand.count",
            self.histograms["port_demand"].count(),
            stats.bundles,
        );
        if self.run.is_some() {
            errors.push_str("open stall run: call finish() before reconcile()\n");
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn stall_counter(&self, cause: StallCause) -> u64 {
        let name = match cause {
            StallCause::DataHazard => "stall.data_hazard",
            StallCause::UnitBusy => "stall.unit_busy",
            StallCause::RegfilePort => "stall.regfile_port",
            StallCause::BranchFlush => "stall.branch_flush",
            StallCause::MemoryContention => "stall.memory_contention",
        };
        self.counter(name)
    }

    /// Renders the registry as one JSON object with stable field order
    /// (`{"counters":{...},"histograms":{...}}`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(name, hist)| format!("\"{name}\":{}", hist.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"counters\":{{{counters}}},\"histograms\":{{{histograms}}}}}")
    }
}

impl TraceSink for MetricsRegistry {
    fn bundle_issue(&mut self, _cycle: u64, _pc: u32, ports: usize, _budget: usize) {
        self.flush_run();
        self.histograms
            .get_mut("port_demand")
            .expect("pre-registered")
            .record(ports as u64);
    }

    fn bundle_execute(
        &mut self,
        _cycle: u64,
        _pc: u32,
        instructions: u64,
        nops: u64,
        unit_ops: &[u64; 4],
    ) {
        self.bump("bundles", 1);
        self.bump("instructions", instructions);
        self.bump("nops", nops);
        self.bump("fu.alu_busy_cycles", unit_ops[0]);
        self.bump("fu.lsu_busy_cycles", unit_ops[1]);
        self.bump("fu.cmpu_busy_cycles", unit_ops[2]);
        self.bump("fu.bru_busy_cycles", unit_ops[3]);
        self.histograms
            .get_mut("bundle_occupancy")
            .expect("pre-registered")
            .record(instructions);
    }

    fn squash(&mut self, _cycle: u64, _pc: u32) {
        self.bump("squashed", 1);
    }

    fn stall(&mut self, cycle: u64, _pc: u32, cause: StallCause) {
        let name = match cause {
            StallCause::DataHazard => "stall.data_hazard",
            StallCause::UnitBusy => "stall.unit_busy",
            StallCause::RegfilePort => "stall.regfile_port",
            StallCause::BranchFlush => "stall.branch_flush",
            StallCause::MemoryContention => "stall.memory_contention",
        };
        self.bump(name, 1);
        match &mut self.run {
            Some(run) if run.cause == cause && run.last_cycle + 1 == cycle => {
                run.last_cycle = cycle;
                run.length += 1;
            }
            _ => {
                self.flush_run();
                self.run = Some(StallRun {
                    cause,
                    last_cycle: cycle,
                    length: 1,
                });
            }
        }
    }

    fn mem_op(&mut self, _cycle: u64, _pc: u32, store: bool) {
        self.bump(if store { "stores" } else { "loads" }, 1);
    }

    fn halt(&mut self, _cycle: u64) {
        self.flush_run();
    }

    fn cycle_retired(&mut self, _cycle: u64) {
        self.bump("cycles", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[2, 1, 2, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 115);
    }

    #[test]
    fn stall_runs_coalesce_by_cause_and_adjacency() {
        let mut m = MetricsRegistry::default();
        // 3-cycle data-hazard run, then a 1-cycle flush, then issue.
        m.stall(10, 7, StallCause::DataHazard);
        m.stall(11, 7, StallCause::DataHazard);
        m.stall(12, 7, StallCause::DataHazard);
        m.stall(13, 7, StallCause::BranchFlush);
        m.bundle_issue(14, 7, 4, 8);
        assert_eq!(m.counter("stall.data_hazard"), 3);
        let lengths = m.histogram("stall_length.data_hazard").unwrap();
        assert_eq!(lengths.count(), 1, "one run of length 3");
        assert_eq!(lengths.sum(), 3);
        assert_eq!(m.histogram("stall_length.branch_flush").unwrap().count(), 1);
    }

    #[test]
    fn json_is_stable_and_parsable_shape() {
        let mut m = MetricsRegistry::default();
        m.cycle_retired(0);
        let text = m.to_json();
        assert!(text.starts_with("{\"counters\":{"));
        assert!(text.contains("\"cycles\":1"));
        assert!(text.contains("\"histograms\":{"));
    }
}
