//! Differential reconciliation: the metrics registry must agree with
//! the engine's own [`SimStats`] field for field, on **all four**
//! execution engines, for every workload across the full ALU ×
//! issue-width grid — and the engines must emit bit-identical
//! trace-event streams. The block-compiled and threaded-code engines
//! participate because an observing sink forces them off their fast
//! paths: observed, each must deliver the exact per-cycle event
//! sequence the decoded engine does.
//!
//! This is the contract that makes `epic-prof` trustworthy: every
//! number it prints is derived from the event stream, and this test
//! proves the event stream carries exactly the same information as the
//! counters the simulator maintains for itself.

use epic_core::compiler::{Compiler, Options};
use epic_core::config::Config;
use epic_core::workloads::{self, Scale};
use epic_obs::{MetricsRegistry, RecordingSink, TeeSink};
use epic_sim::{BlockSimulator, Memory, ReferenceSimulator, Simulator, ThreadedSimulator};

#[test]
fn metrics_reconcile_on_all_engines_across_the_grid() {
    for workload in workloads::all(Scale::Test) {
        let module = epic_core::ir::lower::lower(&workload.program).expect("workloads lower");
        let layout = module.layout().expect("layout");
        for alus in 1..=4usize {
            for width in 1..=4usize {
                let config = Config::builder()
                    .num_alus(alus)
                    .issue_width(width)
                    .build()
                    .expect("valid grid configuration");
                let point = format!("{} at {alus} ALU / {width}-wide", workload.name);
                let options = Options {
                    entry: workload.entry.clone(),
                    inline_hints: workload.inline_hints(),
                    ..Options::default()
                };
                let compiled = Compiler::new(config.clone())
                    .compile_with(&module, &options)
                    .unwrap_or_else(|e| panic!("{point}: compile: {e}"));
                let program = epic_core::asm::assemble(compiled.assembly(), &config)
                    .unwrap_or_else(|e| panic!("{point}: assemble: {e}"));
                let image = module.initial_memory(&layout);

                // Decoded engine.
                let mut decoded =
                    Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
                        .unwrap_or_else(|e| panic!("{point}: decode: {e}"));
                decoded.set_memory(Memory::from_image(image.clone()));
                let mut decoded_sink =
                    TeeSink(MetricsRegistry::default(), RecordingSink::default());
                decoded
                    .run_with_sink(&mut decoded_sink)
                    .unwrap_or_else(|e| panic!("{point}: decoded run: {e}"));
                let TeeSink(mut decoded_metrics, decoded_events) = decoded_sink;
                decoded_metrics.finish();
                decoded_metrics
                    .reconcile(decoded.stats())
                    .unwrap_or_else(|e| panic!("{point}: decoded engine does not reconcile:\n{e}"));

                // Block-compiled engine: the observing sink forces the
                // per-cycle fallback, which must reconcile and match the
                // decoded event stream exactly.
                let mut block =
                    BlockSimulator::try_new(&config, program.bundles().to_vec(), program.entry())
                        .unwrap_or_else(|e| panic!("{point}: block compile: {e}"));
                block.set_memory(Memory::from_image(image.clone()));
                let mut block_sink = TeeSink(MetricsRegistry::default(), RecordingSink::default());
                block
                    .run_with_sink(&mut block_sink)
                    .unwrap_or_else(|e| panic!("{point}: block run: {e}"));
                let TeeSink(mut block_metrics, block_events) = block_sink;
                block_metrics.finish();
                block_metrics
                    .reconcile(block.stats())
                    .unwrap_or_else(|e| panic!("{point}: block engine does not reconcile:\n{e}"));
                assert_eq!(
                    block.fast_block_execs(),
                    0,
                    "{point}: block engine took the fast path under an observing sink"
                );

                // Threaded-code engine: likewise forced off chaining by
                // the observing sink.
                let mut threaded = ThreadedSimulator::try_new(
                    &config,
                    program.bundles().to_vec(),
                    program.entry(),
                )
                .unwrap_or_else(|e| panic!("{point}: threaded translation: {e}"));
                threaded.set_memory(Memory::from_image(image.clone()));
                let mut threaded_sink =
                    TeeSink(MetricsRegistry::default(), RecordingSink::default());
                threaded
                    .run_with_sink(&mut threaded_sink)
                    .unwrap_or_else(|e| panic!("{point}: threaded run: {e}"));
                let TeeSink(mut threaded_metrics, threaded_events) = threaded_sink;
                threaded_metrics.finish();
                threaded_metrics
                    .reconcile(threaded.stats())
                    .unwrap_or_else(|e| {
                        panic!("{point}: threaded engine does not reconcile:\n{e}")
                    });
                assert_eq!(
                    threaded.fast_block_execs() + threaded.chained_execs(),
                    0,
                    "{point}: threaded engine took a fast path under an observing sink"
                );

                // Frozen reference engine.
                let mut reference =
                    ReferenceSimulator::new(&config, program.bundles().to_vec(), program.entry());
                reference.set_memory(Memory::from_image(image));
                let mut reference_sink =
                    TeeSink(MetricsRegistry::default(), RecordingSink::default());
                reference
                    .run_with_sink(&mut reference_sink)
                    .unwrap_or_else(|e| panic!("{point}: reference run: {e}"));
                let TeeSink(mut reference_metrics, reference_events) = reference_sink;
                reference_metrics.finish();
                reference_metrics
                    .reconcile(reference.stats())
                    .unwrap_or_else(|e| {
                        panic!("{point}: reference engine does not reconcile:\n{e}")
                    });

                // The engines agree with each other, event for event.
                assert_eq!(
                    decoded.stats(),
                    reference.stats(),
                    "{point}: engines disagree on statistics"
                );
                assert_eq!(
                    decoded.stats(),
                    block.stats(),
                    "{point}: block engine disagrees on statistics"
                );
                assert_eq!(
                    decoded.stats(),
                    threaded.stats(),
                    "{point}: threaded engine disagrees on statistics"
                );
                let block_events = block_events.into_events();
                let threaded_events = threaded_events.into_events();
                let (decoded_events, reference_events) =
                    (decoded_events.into_events(), reference_events.into_events());
                assert_eq!(
                    decoded_events, block_events,
                    "{point}: block engine event stream diverged from decoded"
                );
                assert_eq!(
                    decoded_events, threaded_events,
                    "{point}: threaded engine event stream diverged from decoded"
                );
                assert_eq!(
                    decoded_events.len(),
                    reference_events.len(),
                    "{point}: engines emitted different event counts"
                );
                if let Some(position) = decoded_events
                    .iter()
                    .zip(&reference_events)
                    .position(|(a, b)| a != b)
                {
                    panic!(
                        "{point}: event streams diverge at event {position}:\n  \
                         decoded:   {:?}\n  reference: {:?}",
                        decoded_events[position], reference_events[position]
                    );
                }
            }
        }
    }
}
