//! Differential reconciliation: the metrics registry must agree with
//! the engine's own [`SimStats`] field for field, on **both** execution
//! engines, for every workload across the full ALU × issue-width grid —
//! and the two engines must emit bit-identical trace-event streams.
//!
//! This is the contract that makes `epic-prof` trustworthy: every
//! number it prints is derived from the event stream, and this test
//! proves the event stream carries exactly the same information as the
//! counters the simulator maintains for itself.

use epic_core::compiler::{Compiler, Options};
use epic_core::config::Config;
use epic_core::workloads::{self, Scale};
use epic_obs::{MetricsRegistry, RecordingSink, TeeSink};
use epic_sim::{Memory, ReferenceSimulator, Simulator};

#[test]
fn metrics_reconcile_on_both_engines_across_the_grid() {
    for workload in workloads::all(Scale::Test) {
        let module = epic_core::ir::lower::lower(&workload.program).expect("workloads lower");
        let layout = module.layout().expect("layout");
        for alus in 1..=4usize {
            for width in 1..=4usize {
                let config = Config::builder()
                    .num_alus(alus)
                    .issue_width(width)
                    .build()
                    .expect("valid grid configuration");
                let point = format!("{} at {alus} ALU / {width}-wide", workload.name);
                let options = Options {
                    entry: workload.entry.clone(),
                    inline_hints: workload.inline_hints(),
                    ..Options::default()
                };
                let compiled = Compiler::new(config.clone())
                    .compile_with(&module, &options)
                    .unwrap_or_else(|e| panic!("{point}: compile: {e}"));
                let program = epic_core::asm::assemble(compiled.assembly(), &config)
                    .unwrap_or_else(|e| panic!("{point}: assemble: {e}"));
                let image = module.initial_memory(&layout);

                // Decoded engine.
                let mut decoded =
                    Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
                        .unwrap_or_else(|e| panic!("{point}: decode: {e}"));
                decoded.set_memory(Memory::from_image(image.clone()));
                let mut decoded_sink =
                    TeeSink(MetricsRegistry::default(), RecordingSink::default());
                decoded
                    .run_with_sink(&mut decoded_sink)
                    .unwrap_or_else(|e| panic!("{point}: decoded run: {e}"));
                let TeeSink(mut decoded_metrics, decoded_events) = decoded_sink;
                decoded_metrics.finish();
                decoded_metrics
                    .reconcile(decoded.stats())
                    .unwrap_or_else(|e| panic!("{point}: decoded engine does not reconcile:\n{e}"));

                // Frozen reference engine.
                let mut reference =
                    ReferenceSimulator::new(&config, program.bundles().to_vec(), program.entry());
                reference.set_memory(Memory::from_image(image));
                let mut reference_sink =
                    TeeSink(MetricsRegistry::default(), RecordingSink::default());
                reference
                    .run_with_sink(&mut reference_sink)
                    .unwrap_or_else(|e| panic!("{point}: reference run: {e}"));
                let TeeSink(mut reference_metrics, reference_events) = reference_sink;
                reference_metrics.finish();
                reference_metrics
                    .reconcile(reference.stats())
                    .unwrap_or_else(|e| {
                        panic!("{point}: reference engine does not reconcile:\n{e}")
                    });

                // The engines agree with each other, event for event.
                assert_eq!(
                    decoded.stats(),
                    reference.stats(),
                    "{point}: engines disagree on statistics"
                );
                let (decoded_events, reference_events) =
                    (decoded_events.into_events(), reference_events.into_events());
                assert_eq!(
                    decoded_events.len(),
                    reference_events.len(),
                    "{point}: engines emitted different event counts"
                );
                if let Some(position) = decoded_events
                    .iter()
                    .zip(&reference_events)
                    .position(|(a, b)| a != b)
                {
                    panic!(
                        "{point}: event streams diverge at event {position}:\n  \
                         decoded:   {:?}\n  reference: {:?}",
                        decoded_events[position], reference_events[position]
                    );
                }
            }
        }
    }
}
