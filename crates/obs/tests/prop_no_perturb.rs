//! Observation must not perturb execution: running a random program
//! with the full recording stack plugged in (metrics registry + raw
//! event log + stall profiler) must leave statistics, registers and
//! memory bit-identical to the unobserved [`NopSink`] run.
//!
//! The generator mirrors `tests/differential_prop.rs` at the workspace
//! root: random straight-line arithmetic, loads/stores into a scratch
//! global, if/else and bounded loops, through the full compile →
//! assemble → simulate pipeline.

use epic_core::config::Config;
use epic_core::ir::ast::{Expr, FunctionDef, Program, Stmt};
use epic_core::ir::{lower, Global};
use epic_core::Toolchain;
use epic_obs::{MetricsRegistry, ProfileSink, RecordingSink, StallProfile, TeeSink};
use proptest::prelude::*;

const NUM_VARS: usize = 4;
const BUF_WORDS: i64 = 8;

#[derive(Debug, Clone)]
enum Op {
    Bin(usize, &'static str, usize, usize),
    BinImm(usize, &'static str, usize, i32),
    Store(i64, usize),
    Load(usize, i64),
    IfElse(usize, &'static str, usize, usize, usize),
    Loop(usize, usize, u8),
}

fn apply(op: &'static str, a: Expr, b: Expr) -> Expr {
    match op {
        "add" => a + b,
        "sub" => a - b,
        "mul" => a * b,
        "div" => a.div(b),
        "xor" => a ^ b,
        "shl" => a << (b & Expr::lit(31)),
        "lt" => a.lt_s(b),
        "eq" => a.eq(b),
        other => unreachable!("unknown operator {other}"),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let var = 0..NUM_VARS;
    let name = prop::sample::select(vec!["add", "sub", "mul", "div", "xor", "shl", "lt", "eq"]);
    prop_oneof![
        (var.clone(), name.clone(), var.clone(), var.clone())
            .prop_map(|(d, o, a, b)| Op::Bin(d, o, a, b)),
        (var.clone(), name, var.clone(), -50i32..50)
            .prop_map(|(d, o, a, l)| Op::BinImm(d, o, a, l)),
        (0..BUF_WORDS, var.clone()).prop_map(|(i, a)| Op::Store(i, a)),
        (var.clone(), 0..BUF_WORDS).prop_map(|(d, i)| Op::Load(d, i)),
        (
            var.clone(),
            prop::sample::select(vec!["lt", "eq"]),
            var.clone(),
            var.clone(),
            var.clone()
        )
            .prop_map(|(c, o, d, a, b)| Op::IfElse(c, o, d, a, b)),
        (var.clone(), var, 1u8..5).prop_map(|(d, a, n)| Op::Loop(d, a, n)),
    ]
}

fn var_name(i: usize) -> String {
    format!("x{i}")
}

fn build_program(seeds: &[i32], ops: &[Op]) -> Program {
    let mut body: Vec<Stmt> = Vec::new();
    for (i, seed) in seeds.iter().enumerate() {
        body.push(Stmt::let_(var_name(i), Expr::lit(i64::from(*seed))));
    }
    for (k, op) in ops.iter().enumerate() {
        match op {
            Op::Bin(d, o, a, b) => body.push(Stmt::assign(
                var_name(*d),
                apply(o, Expr::var(var_name(*a)), Expr::var(var_name(*b))),
            )),
            Op::BinImm(d, o, a, l) => body.push(Stmt::assign(
                var_name(*d),
                apply(o, Expr::var(var_name(*a)), Expr::lit(i64::from(*l))),
            )),
            Op::Store(i, a) => body.push(Stmt::store_word(
                Expr::global("buf") + Expr::lit(i * 4),
                Expr::var(var_name(*a)),
            )),
            Op::Load(d, i) => body.push(Stmt::assign(
                var_name(*d),
                (Expr::global("buf") + Expr::lit(i * 4)).load_word(),
            )),
            Op::IfElse(c, o, d, a, b) => body.push(Stmt::if_else(
                apply(o, Expr::var(var_name(*c)), Expr::lit(0)),
                [Stmt::assign(var_name(*d), Expr::var(var_name(*a)))],
                [Stmt::assign(var_name(*d), Expr::var(var_name(*b)))],
            )),
            Op::Loop(d, a, n) => body.push(Stmt::for_(
                format!("i{k}"),
                Expr::lit(0),
                Expr::lit(i64::from(*n)),
                [Stmt::assign(
                    var_name(*d),
                    Expr::var(var_name(*d)) + Expr::var(var_name(*a)) + Expr::var(format!("i{k}")),
                )],
            )),
        }
    }
    let mut result = Expr::var(var_name(0));
    for i in 1..NUM_VARS {
        result = result ^ Expr::var(var_name(i));
    }
    body.push(Stmt::ret(result));
    Program::new()
        .global(Global::zeroed("buf", (BUF_WORDS * 4) as u32))
        .function(FunctionDef::new("main", [] as [&str; 0]).body(body))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn recording_sinks_do_not_perturb_execution(
        seeds in prop::collection::vec(-500i32..500, NUM_VARS),
        ops in prop::collection::vec(op_strategy(), 1..16),
        alus in 1usize..=4,
    ) {
        let program = build_program(&seeds, &ops);
        let module = lower::lower(&program).expect("generated programs lower");
        let config = Config::builder().num_alus(alus).build().expect("config");
        let toolchain = Toolchain::new(config.clone());
        let options = epic_core::compiler::Options {
            entry: "main".to_owned(),
            ..epic_core::compiler::Options::default()
        };

        // Unobserved baseline (NopSink path).
        let bare = toolchain
            .run_module_with(&module, &options)
            .expect("unobserved pipeline runs");

        // The same pipeline with every recording sink attached.
        let mut sink = TeeSink(
            MetricsRegistry::default(),
            TeeSink(RecordingSink::default(), ProfileSink::default()),
        );
        let observed = toolchain
            .run_module_observed(&module, &options, &mut sink)
            .expect("observed pipeline runs");
        let TeeSink(mut metrics, TeeSink(events, profiler)) = sink;

        // Bit-identical architectural outcome.
        prop_assert_eq!(observed.stats(), bare.stats(), "statistics perturbed");
        for reg in 0..config.num_gprs() {
            prop_assert_eq!(
                observed.simulator.gpr(reg),
                bare.simulator.gpr(reg),
                "gpr r{} perturbed", reg
            );
        }
        prop_assert_eq!(
            observed.simulator.memory().bytes(),
            bare.simulator.memory().bytes(),
            "memory perturbed"
        );

        // And the observations themselves are complete and consistent.
        metrics.finish();
        let reconciled = metrics.reconcile(observed.stats());
        prop_assert!(
            reconciled.is_ok(),
            "metrics reconcile: {}",
            reconciled.unwrap_err()
        );
        prop_assert!(!events.events().is_empty(), "event stream empty");
        let profile = StallProfile::build(&profiler, observed.program.labels());
        prop_assert_eq!(profile.cycles, observed.stats().cycles, "profiler cycle count");
        let attributed: u64 = profile.stall_totals().iter().sum();
        prop_assert_eq!(attributed, observed.stats().stalls.total(), "stall attribution");
    }
}
