//! Perfetto export: golden-file pin plus structural invariants.
//!
//! A small fixed assembly program (a counted loop with loads, stores,
//! compares and a conditional branch — enough to light up every track)
//! is simulated with the [`PerfettoSink`] attached. The resulting
//! Chrome trace-event JSON is pinned byte-for-byte against
//! `tests/golden/trace.json` (regenerate with `EPIC_BLESS=1 cargo test
//! -p epic-obs --test perfetto`) and checked structurally: timestamps
//! non-decreasing, every `B` matched by an `E` on the same track, and
//! the six track names stable.

use epic_config::Config;
use epic_obs::PerfettoSink;
use epic_sim::{Memory, Simulator};
use std::path::PathBuf;

/// Four loop iterations of load → add → store over buf[0..4], then halt.
const SOURCE: &str = "\
.entry main
main:
    MOVE r1, #0
    MOVE r2, #16
    PBR b1, @loop
;;
loop:
    LW r3, r1, #0
;;
    ADD r3, r3, #1
;;
    SW r3, r1, #0
    ADD r1, r1, #4
;;
    CMP_LT p1, p2, r1, r2
;;
    BRCT b1 (p1)
;;
    HALT
;;
";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace.json")
}

fn trace_json() -> String {
    let config = Config::default();
    let program = epic_asm::assemble(SOURCE, &config).expect("fixture assembles");
    let mut simulator = Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
        .expect("fixture decodes");
    simulator.set_memory(Memory::from_image(vec![0; 64]));
    let mut sink = PerfettoSink::default();
    simulator.run_with_sink(&mut sink).expect("fixture runs");
    sink.to_json()
}

/// Minimal field scraper for the flat, self-generated event lines: every
/// event object is one line, so `"key":value` lookups are unambiguous.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).expect("event fields end with , or }");
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn trace_matches_golden_file() {
    let path = golden_path();
    let current = trace_json();
    if std::env::var_os("EPIC_BLESS").is_some() {
        std::fs::write(&path, &current).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `EPIC_BLESS=1 cargo test -p epic-obs --test perfetto` to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, current,
        "Perfetto trace drifted; if intentional, regenerate with \
         `EPIC_BLESS=1 cargo test -p epic-obs --test perfetto`"
    );
}

#[test]
fn trace_is_structurally_valid() {
    let json = trace_json();
    let events: Vec<&str> = json
        .lines()
        .filter(|line| line.contains("\"ph\":"))
        .collect();
    assert!(!events.is_empty(), "trace has no events");

    // Track names are stable, each declared exactly once.
    let mut tracks: Vec<&str> = events
        .iter()
        .filter(|line| line.contains("\"thread_name\""))
        .map(|line| {
            let args = line
                .find("\"args\":")
                .expect("thread_name events carry args");
            field(&line[args..], "name").expect("thread_name args carry a name")
        })
        .collect();
    tracks.sort_unstable();
    assert_eq!(tracks, ["ALU", "BRU", "CMPU", "LSU", "fetch", "stall"]);

    // Timestamps are non-decreasing and every B has its E, per track,
    // with no nesting (the machine issues one bundle at a time).
    let mut last_ts = 0u64;
    let mut open: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for line in &events {
        let phase = field(line, "ph").expect("every event has a phase");
        if phase == "M" {
            continue;
        }
        let ts: u64 = field(line, "ts")
            .expect("B/E events carry ts")
            .parse()
            .expect("ts is an integer");
        assert!(ts >= last_ts, "timestamps regressed: {ts} after {last_ts}");
        last_ts = ts;
        let tid = field(line, "tid").expect("B/E events carry tid");
        let depth = open.entry(tid).or_insert(0);
        match phase {
            "B" => {
                assert_eq!(*depth, 0, "nested span on track {tid}");
                *depth = 1;
            }
            "E" => {
                assert_eq!(*depth, 1, "E without open B on track {tid}");
                *depth = 0;
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, depth) in open {
        assert_eq!(depth, 0, "unclosed span on track {tid}");
    }

    // The fixture exercises every track.
    for track in ["fetch", "stall", "ALU", "LSU", "CMPU", "BRU"] {
        let tid = match track {
            "fetch" => "1",
            "stall" => "2",
            "ALU" => "3",
            "LSU" => "4",
            "CMPU" => "5",
            _ => "6",
        };
        assert!(
            events
                .iter()
                .any(|line| { field(line, "ph") == Some("B") && field(line, "tid") == Some(tid) }),
            "no spans on the {track} track"
        );
    }
}
