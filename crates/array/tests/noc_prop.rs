//! Property tests for the mesh interconnect: for random mesh
//! geometries, timing parameters and injection schedules,
//!
//! * every injected message is delivered **exactly once** (no loss, no
//!   duplication — checked by unique message ids);
//! * deliveries between one (src, dst) pair arrive in injection order
//!   (FIFO links + a fixed XY route make reordering impossible);
//! * every end-to-end latency is at least `(hops + 1) · link_latency`,
//!   where `hops` is the Manhattan distance — the lower bound of the
//!   timing model with an empty network;
//! * the statistics counters agree with the observed traffic and the
//!   network is idle once everything is delivered.
//!
//! The driver mirrors the array's lockstep exchange: each cycle ejects
//! (one delivery per node), advances, then injects — with refused
//! injections retried next cycle, exactly like a committed TX mailbox.

use epic_array::{Noc, NocConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scheduled message: src/dst picked modulo the node count, a
/// payload length, and an idle gap before its source offers it.
type Plan = (usize, usize, usize, u64);

fn schedule_strategy() -> impl Strategy<Value = (usize, usize, NocConfig, Vec<Plan>)> {
    (
        1usize..=4,
        1usize..=4,
        1u64..=3,
        1usize..=3,
        prop::collection::vec((0usize..64, 0usize..64, 1usize..=4, 0u64..=3), 1..24),
    )
        .prop_map(|(width, height, link_latency, link_capacity, plans)| {
            (
                width,
                height,
                NocConfig {
                    link_latency,
                    link_capacity,
                },
                plans,
            )
        })
}

fn manhattan(src: usize, dst: usize, width: usize) -> usize {
    let (sx, sy) = (src % width, src / width);
    let (dx, dy) = (dst % width, dst / width);
    sx.abs_diff(dx) + sy.abs_diff(dy)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn random_traffic_is_delivered_exactly_once_in_order_and_on_time(
        (width, height, config, plans) in schedule_strategy(),
    ) {
        let nodes = width * height;
        let mut noc = Noc::new(width, height, config);

        // Materialise the schedule: unique id in payload[0], sources
        // offer their messages in plan order (per-source FIFO, like a
        // core's TX mailbox).
        struct Msg {
            id: u32,
            dst: usize,
            payload: Vec<u32>,
            earliest: u64,
        }
        let mut queues: Vec<Vec<Msg>> = (0..nodes).map(|_| Vec::new()).collect();
        let mut expected: HashMap<u32, (usize, usize, Vec<u32>)> = HashMap::new();
        let mut clock = 0u64;
        for (id, &(s, d, len, gap)) in plans.iter().enumerate() {
            let id = id as u32;
            let (src, dst) = (s % nodes, d % nodes);
            let payload: Vec<u32> = std::iter::once(id)
                .chain((1..len as u32).map(|w| id * 100 + w))
                .collect();
            clock += gap;
            expected.insert(id, (src, dst, payload.clone()));
            queues[src].push(Msg { id, dst, payload, earliest: clock });
        }
        let total = plans.len() as u64;

        // Lockstep drive: eject → advance → inject, retrying refusals —
        // the same phase order and per-source one-offer-per-cycle
        // discipline as the array's exchange.
        let mut deliveries = Vec::new();
        let mut now = 0u64;
        while (deliveries.len() as u64) < total {
            for node in 0..nodes {
                if let Some(d) = noc.eject(now, node) {
                    prop_assert_eq!(d.dst, node, "ejected at the wrong node");
                    deliveries.push(d);
                }
            }
            noc.advance(now);
            for (src, queue) in queues.iter_mut().enumerate() {
                let ready = queue.first().is_some_and(|m| m.earliest <= now);
                if ready && noc.try_inject(now, src, queue[0].dst, queue[0].payload.clone()) {
                    queue.remove(0);
                }
            }
            now += 1;
            prop_assert!(now < 100_000, "traffic did not drain");
        }
        prop_assert!(noc.is_idle(), "deliveries complete but messages in flight");

        // Exactly once: the set of delivered ids is exactly the set of
        // injected ids, each with the payload and endpoints it was
        // injected with.
        prop_assert_eq!(deliveries.len(), expected.len(), "delivery count");
        let mut seen = HashMap::new();
        for d in &deliveries {
            let id = d.payload[0];
            prop_assert!(seen.insert(id, ()).is_none(), "message {} delivered twice", id);
            let (src, dst, payload) = &expected[&id];
            prop_assert_eq!(d.src, *src, "message {} wrong source", id);
            prop_assert_eq!(d.dst, *dst, "message {} wrong destination", id);
            prop_assert_eq!(&d.payload, payload, "message {} corrupted", id);

            // Timing: hops is the Manhattan distance, and the message
            // spent at least link_latency in each of its hops+1 queues.
            prop_assert_eq!(d.hops, manhattan(d.src, d.dst, width), "hop count");
            let floor = (d.hops as u64 + 1) * config.link_latency;
            prop_assert!(
                d.delivered_at - d.injected_at >= floor,
                "message {} latency {} below the {} floor",
                id,
                d.delivered_at - d.injected_at,
                floor
            );
        }

        // Per-pair FIFO: for each (src, dst), delivered ids ascend —
        // ids were assigned in plan order, which is injection order.
        let mut last: HashMap<(usize, usize), u32> = HashMap::new();
        for d in &deliveries {
            if let Some(prev) = last.insert((d.src, d.dst), d.payload[0]) {
                prop_assert!(
                    prev < d.payload[0],
                    "pair ({}, {}) reordered: {} after {}",
                    d.src,
                    d.dst,
                    d.payload[0],
                    prev
                );
            }
        }

        // Counters match the observed traffic.
        let stats = noc.stats();
        prop_assert_eq!(stats.messages_injected, total);
        prop_assert_eq!(stats.messages_delivered, total);
        prop_assert_eq!(
            stats.payload_words,
            deliveries.iter().map(|d| d.payload.len() as u64).sum::<u64>()
        );
        prop_assert_eq!(
            stats.total_hops,
            deliveries.iter().map(|d| d.hops as u64).sum::<u64>()
        );
        prop_assert_eq!(
            stats.total_latency,
            deliveries
                .iter()
                .map(|d| d.delivered_at - d.injected_at)
                .sum::<u64>()
        );
        prop_assert_eq!(stats.latencies.len() as u64, total);
    }
}
