//! `epic-array` — an N×M many-core array of customisable EPIC cores.
//!
//! The paper's customisation flow sizes a *single* core; this crate
//! scales the same simulated cores out into a mesh-connected
//! many-core array, so the cost/performance trade-offs of the
//! customisation space can be explored at the parallel-workload level
//! too. The array instantiates one execution engine per core — any of
//! the four bit-identical engines from `epic-sim` (reference,
//! decoded, block-compiled, threaded-code) — each with a **private** local memory,
//! and joins them with a cycle-lockstep mesh interconnect:
//!
//! * [`Noc`] — XY-routed point-to-point messages with per-hop latency
//!   and bounded link buffers (see [`noc`] module docs for the timing
//!   model and its delivery guarantees);
//! * [`mailbox`] — the memory-mapped send/recv window a mesh program
//!   uses to talk to the NoC with ordinary loads and stores;
//! * [`ArraySimulator`] — the lockstep driver: every core advances one
//!   cycle, then a serial exchange phase moves mailbox traffic. The
//!   compute phase fans out over host threads (via `rayon`), and the
//!   result is **grid-index deterministic**: byte-identical per-core
//!   stats and final memories at any host thread count (the
//!   determinism argument is spelled out in [`sim`]'s module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mailbox;
pub mod noc;
pub mod sim;

pub use noc::{link_name, Delivery, Noc, NocConfig, NocStats};
pub use sim::{ArrayError, ArrayOutcome, ArraySimulator, CoreSim, MeshSpec};
