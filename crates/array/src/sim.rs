//! The many-core array simulator: one engine per core, private local
//! memories, and a cycle-lockstep mesh exchange.
//!
//! # Lockstep schedule
//!
//! Every global cycle has two phases:
//!
//! 1. **Compute** — every core advances exactly one processor cycle.
//!    Cores are partitioned into contiguous index chunks over a fixed
//!    worker fan-out; within a chunk cores step in index order. Cores
//!    share nothing (each owns its memory), so chunk execution order
//!    cannot influence results.
//! 2. **Exchange** — worker 0 alone, between two barriers, runs the
//!    serial mesh phase in a fixed order: ejection into free RX
//!    mailboxes (core index order), link advancement (link id order),
//!    then injection from committed TX mailboxes (core index order).
//!
//! # Determinism argument
//!
//! The only cross-core state is the NoC, and every NoC transition
//! happens inside the serial exchange phase in a fixed iteration
//! order. The worker count changes *which host thread* steps a core,
//! never *when* in the lockstep schedule it steps — and a single-
//! worker run goes through the identical code path. Hence per-core
//! stats, registers and final memories are byte-identical for any host
//! thread count, which `tests/manycore_determinism.rs` pins down.

use crate::mailbox;
use crate::noc::{Noc, NocConfig, NocStats};
use epic_config::Config;
use epic_isa::Instruction;
use epic_sim::{
    BlockSimulator, Engine, Memory, ReferenceSimulator, SimError, SimStats, Simulator,
    ThreadedSimulator,
};
use rayon::prelude::*;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Geometry, engine and timing parameters of a many-core array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshSpec {
    /// Cores per row.
    pub width: usize,
    /// Rows of cores.
    pub height: usize,
    /// Execution engine instantiated in every core.
    pub engine: Engine,
    /// Interconnect timing/capacity parameters.
    pub noc: NocConfig,
    /// Global cycle budget before the array reports a timeout.
    pub max_cycles: u64,
}

impl MeshSpec {
    /// A `width`×`height` mesh with the default engine, NoC timing and
    /// a 10M-cycle budget.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        MeshSpec {
            width,
            height,
            engine: Engine::default(),
            noc: NocConfig::default(),
            max_cycles: 10_000_000,
        }
    }

    /// Replaces the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the NoC parameters.
    #[must_use]
    pub fn with_noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Replaces the cycle budget.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Cores in the mesh.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.width * self.height
    }
}

/// One core's engine — any of the four bit-identical simulators.
#[derive(Debug, Clone)]
pub enum CoreSim {
    /// The interpret-every-cycle golden model.
    Reference(Box<ReferenceSimulator>),
    /// The decode-once per-cycle engine.
    Decoded(Box<Simulator>),
    /// The block-compiled engine on its per-cycle path.
    Block(Box<BlockSimulator>),
    /// The threaded-code engine on its per-cycle path.
    Threaded(Box<ThreadedSimulator>),
}

impl CoreSim {
    fn build(
        engine: Engine,
        config: &Config,
        bundles: &[Vec<Instruction>],
        entry: u32,
    ) -> Result<Self, SimError> {
        Ok(match engine {
            Engine::Reference => CoreSim::Reference(Box::new(ReferenceSimulator::new(
                config,
                bundles.to_vec(),
                entry,
            ))),
            Engine::Decoded => CoreSim::Decoded(Box::new(Simulator::try_new(
                config,
                bundles.to_vec(),
                entry,
            )?)),
            Engine::Block => CoreSim::Block(Box::new(BlockSimulator::try_new(
                config,
                bundles.to_vec(),
                entry,
            )?)),
            Engine::Threaded => CoreSim::Threaded(Box::new(ThreadedSimulator::try_new(
                config,
                bundles.to_vec(),
                entry,
            )?)),
        })
    }

    fn step(&mut self) -> Result<bool, SimError> {
        match self {
            CoreSim::Reference(s) => s.step(),
            CoreSim::Decoded(s) => s.step(),
            CoreSim::Block(s) => s.step(),
            CoreSim::Threaded(s) => s.step(),
        }
    }

    fn set_memory(&mut self, memory: Memory) {
        match self {
            CoreSim::Reference(s) => s.set_memory(memory),
            CoreSim::Decoded(s) => s.set_memory(memory),
            CoreSim::Block(s) => s.set_memory(memory),
            CoreSim::Threaded(s) => s.set_memory(memory),
        }
    }

    fn set_cycle_limit(&mut self, limit: u64) {
        match self {
            CoreSim::Reference(s) => s.set_cycle_limit(limit),
            CoreSim::Decoded(s) => s.set_cycle_limit(limit),
            CoreSim::Block(s) => s.set_cycle_limit(limit),
            CoreSim::Threaded(s) => s.set_cycle_limit(limit),
        }
    }

    /// The core's data memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        match self {
            CoreSim::Reference(s) => s.memory(),
            CoreSim::Decoded(s) => s.memory(),
            CoreSim::Block(s) => s.memory(),
            CoreSim::Threaded(s) => s.memory(),
        }
    }

    fn memory_mut(&mut self) -> &mut Memory {
        match self {
            CoreSim::Reference(s) => s.memory_mut(),
            CoreSim::Decoded(s) => s.memory_mut(),
            CoreSim::Block(s) => s.memory_mut(),
            CoreSim::Threaded(s) => s.memory_mut(),
        }
    }

    /// A general-purpose register.
    #[must_use]
    pub fn gpr(&self, index: usize) -> u32 {
        match self {
            CoreSim::Reference(s) => s.gpr(index),
            CoreSim::Decoded(s) => s.gpr(index),
            CoreSim::Block(s) => s.gpr(index),
            CoreSim::Threaded(s) => s.gpr(index),
        }
    }

    /// A predicate register.
    #[must_use]
    pub fn pred(&self, index: usize) -> bool {
        match self {
            CoreSim::Reference(s) => s.pred(index),
            CoreSim::Decoded(s) => s.pred(index),
            CoreSim::Block(s) => s.pred(index),
            CoreSim::Threaded(s) => s.pred(index),
        }
    }

    /// A branch-target register.
    #[must_use]
    pub fn btr(&self, index: usize) -> u32 {
        match self {
            CoreSim::Reference(s) => s.btr(index),
            CoreSim::Decoded(s) => s.btr(index),
            CoreSim::Block(s) => s.btr(index),
            CoreSim::Threaded(s) => s.btr(index),
        }
    }

    /// Whether the core has executed `HALT`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        match self {
            CoreSim::Reference(s) => s.is_halted(),
            CoreSim::Decoded(s) => s.is_halted(),
            CoreSim::Block(s) => s.is_halted(),
            CoreSim::Threaded(s) => s.is_halted(),
        }
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match self {
            CoreSim::Reference(s) => s.stats(),
            CoreSim::Decoded(s) => s.stats(),
            CoreSim::Block(s) => s.stats(),
            CoreSim::Threaded(s) => s.stats(),
        }
    }

    /// Basic blocks executed on the block or threaded engine's fast
    /// path (0 on the per-cycle engines; the lockstep array always
    /// steps per cycle, so this stays 0 for every engine).
    #[must_use]
    pub fn fast_block_execs(&self) -> u64 {
        match self {
            CoreSim::Block(s) => s.fast_block_execs(),
            CoreSim::Threaded(s) => s.fast_block_execs(),
            _ => 0,
        }
    }
}

/// One core plus its lockstep bookkeeping.
#[derive(Debug, Clone)]
struct Core {
    sim: CoreSim,
    halted: bool,
    error: Option<SimError>,
}

impl Core {
    /// Advances one cycle; halting latches and an error parks the core
    /// for worker 0 to report deterministically.
    fn step_once(&mut self) {
        if self.halted || self.error.is_some() {
            return;
        }
        match self.sim.step() {
            Ok(true) => {}
            Ok(false) => self.halted = true,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Error raised while running a many-core array.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrayError {
    /// The mesh geometry or mailbox placement is unusable.
    Setup(String),
    /// A core's simulator faulted; the lowest-index faulting core is
    /// reported (deterministic under any host thread count).
    Core {
        /// Linear index of the faulting core.
        core: usize,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A committed TX mailbox held an invalid destination or length.
    BadMessage {
        /// Linear index of the offending core.
        core: usize,
        /// Global cycle of the attempted injection.
        cycle: u64,
        /// What was wrong.
        detail: String,
    },
    /// The global cycle budget ran out before every core halted.
    Timeout {
        /// The exhausted budget.
        cycle: u64,
    },
    /// Every core halted while messages were still in flight — a
    /// protocol bug in the workload (messages must be conserved).
    Undelivered {
        /// Messages injected but never ejected.
        in_flight: u64,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::Setup(msg) => write!(f, "array setup: {msg}"),
            ArrayError::Core { core, source } => write!(f, "core {core}: {source}"),
            ArrayError::BadMessage {
                core,
                cycle,
                detail,
            } => write!(
                f,
                "core {core} committed a bad message at cycle {cycle}: {detail}"
            ),
            ArrayError::Timeout { cycle } => {
                write!(f, "array cycle budget exhausted at cycle {cycle}")
            }
            ArrayError::Undelivered { in_flight } => write!(
                f,
                "all cores halted with {in_flight} message(s) still in flight"
            ),
        }
    }
}

impl std::error::Error for ArrayError {}

/// What a completed array run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayOutcome {
    /// Global lockstep cycles executed.
    pub cycles: u64,
    /// Per-core execution statistics, in core index order.
    pub per_core: Vec<SimStats>,
    /// Per-core return values (`r1` at halt), in core index order.
    pub return_values: Vec<u32>,
    /// Total fast-path block executions over all cores (always 0 in
    /// lockstep runs; kept so reports can prove it).
    pub fast_block_execs: u64,
    /// Interconnect statistics.
    pub noc: NocStats,
}

impl ArrayOutcome {
    /// Sum of per-core architectural cycles (the "work" the array did).
    #[must_use]
    pub fn aggregate_core_cycles(&self) -> u64 {
        self.per_core.iter().map(|s| s.cycles).sum()
    }
}

/// A sense-reversing spin barrier for the lockstep worker fan-out.
///
/// Workers synchronise twice per cycle; a `std::sync::Barrier` parks
/// threads in the kernel and is an order of magnitude too slow at that
/// cadence. With one worker every wait is a no-op, which keeps the
/// single-threaded run on the identical code path.
struct SpinBarrier {
    total: usize,
    /// More waiters than host CPUs: spinning only burns the quantum the
    /// straggler needs, so yield to the scheduler immediately.
    oversubscribed: bool,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        SpinBarrier {
            total,
            oversubscribed: total > cpus,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset the count (everyone else is still
            // spinning on the generation) and release the cohort.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.saturating_add(1);
                if !self.oversubscribed && spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// An N×M array of EPIC cores with private memories, joined by a mesh
/// NoC and stepped in cycle lockstep (see the module docs).
///
/// ```
/// use epic_array::{ArraySimulator, MeshSpec};
/// use epic_config::Config;
///
/// let config = Config::default();
/// let source = ".entry main\nmain:\n    MOVIL r1, #7\n;;\n    HALT\n;;\n";
/// let program = epic_asm::assemble(source, &config).unwrap();
/// let mut array = ArraySimulator::new(
///     &config,
///     program.bundles(),
///     program.entry(),
///     &vec![0u8; 4096],
///     0, // mailbox window at address 0
///     &MeshSpec::new(2, 2),
/// )
/// .unwrap();
/// let outcome = array.run().unwrap();
/// assert_eq!(outcome.per_core.len(), 4);
/// assert!(outcome.return_values.iter().all(|&r| r == 7));
/// ```
#[derive(Debug)]
pub struct ArraySimulator {
    spec: MeshSpec,
    mailbox_base: u32,
    cores: Vec<Mutex<Core>>,
    noc: Mutex<Noc>,
    cycle: u64,
}

fn mb_peek(memory: &Memory, base: u32, offset: u32) -> u32 {
    memory
        .peek_word(base + offset * 4)
        .expect("mailbox window validated at construction")
}

fn mb_poke(memory: &mut Memory, base: u32, offset: u32, value: u32) {
    assert!(
        memory.poke_word(base + offset * 4, value),
        "mailbox window validated at construction"
    );
}

impl ArraySimulator {
    /// Builds a mesh of identical cores: the program is decoded (and,
    /// on the block engine, block-compiled) **once**, then cloned per
    /// core; every core gets a private copy of `initial_memory` with
    /// its identity words ([`mailbox::CORE_ID`], [`mailbox::MESH_WIDTH`],
    /// [`mailbox::MESH_HEIGHT`]) poked into the mailbox window at
    /// `mailbox_base`.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::Setup`] for a degenerate mesh or a
    /// mailbox window that is misaligned or out of bounds, and
    /// [`ArrayError::Core`] if the program is illegal for the
    /// configuration.
    pub fn new(
        config: &Config,
        bundles: &[Vec<Instruction>],
        entry: u32,
        initial_memory: &[u8],
        mailbox_base: u32,
        spec: &MeshSpec,
    ) -> Result<Self, ArrayError> {
        if spec.width == 0 || spec.height == 0 {
            return Err(ArrayError::Setup(format!(
                "mesh must have positive dimensions, got {}x{}",
                spec.width, spec.height
            )));
        }
        if spec.noc.link_latency == 0 || spec.noc.link_capacity == 0 {
            return Err(ArrayError::Setup(
                "link latency and capacity must be >= 1".into(),
            ));
        }
        if !mailbox_base.is_multiple_of(4) {
            return Err(ArrayError::Setup(format!(
                "mailbox base {mailbox_base:#x} is not word-aligned"
            )));
        }
        let end = mailbox_base as usize + mailbox::MAILBOX_BYTES as usize;
        if end > initial_memory.len() {
            return Err(ArrayError::Setup(format!(
                "mailbox window [{mailbox_base:#x}, {end:#x}) exceeds the \
                 {} byte memory image",
                initial_memory.len()
            )));
        }
        let ncores = spec.cores();
        let prototype = CoreSim::build(spec.engine, config, bundles, entry)
            .map_err(|source| ArrayError::Core { core: 0, source })?;
        let mut cores = Vec::with_capacity(ncores);
        for idx in 0..ncores {
            let mut sim = prototype.clone();
            sim.set_memory(Memory::from_image(initial_memory.to_vec()));
            // The array's own budget must fire first so timeouts are
            // reported as a global condition, not a per-core fault.
            sim.set_cycle_limit(spec.max_cycles.saturating_add(2));
            let memory = sim.memory_mut();
            mb_poke(memory, mailbox_base, mailbox::CORE_ID, idx as u32);
            mb_poke(memory, mailbox_base, mailbox::MESH_WIDTH, spec.width as u32);
            mb_poke(
                memory,
                mailbox_base,
                mailbox::MESH_HEIGHT,
                spec.height as u32,
            );
            cores.push(Mutex::new(Core {
                sim,
                halted: false,
                error: None,
            }));
        }
        Ok(ArraySimulator {
            spec: *spec,
            mailbox_base,
            cores,
            noc: Mutex::new(Noc::new(spec.width, spec.height, spec.noc)),
            cycle: 0,
        })
    }

    /// The mesh parameters the array was built with.
    #[must_use]
    pub fn spec(&self) -> &MeshSpec {
        &self.spec
    }

    /// Global lockstep cycles executed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Read-only access to one core's engine (registers, memory,
    /// stats) — for tests and reports after [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `core` is off-mesh.
    #[must_use]
    pub fn core(&mut self, core: usize) -> &CoreSim {
        &self.cores[core].get_mut().expect("core mutex poisoned").sim
    }

    /// Runs the array to completion: loops the lockstep schedule until
    /// every core halts and the NoC drains, fanning the compute phase
    /// out over `min(rayon::current_num_threads(), cores)` workers.
    /// Call once per array.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Core`] for the lowest-index faulting core,
    /// [`ArrayError::BadMessage`] for an invalid committed TX mailbox,
    /// [`ArrayError::Timeout`] when `max_cycles` runs out, and
    /// [`ArrayError::Undelivered`] if every core halts with messages
    /// still in flight. All are deterministic for a given program and
    /// mesh, regardless of host thread count.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked and poisoned a core mutex.
    pub fn run(&mut self) -> Result<ArrayOutcome, ArrayError> {
        let ncores = self.cores.len();
        let workers = rayon::current_num_threads().min(ncores).max(1);
        let chunk = ncores.div_ceil(workers);
        let barrier = SpinBarrier::new(workers);
        let stop = AtomicBool::new(false);
        let verdict: Mutex<Option<Result<(), ArrayError>>> = Mutex::new(None);
        let cycles_done = AtomicU64::new(self.cycle);
        let start = self.cycle;
        let this: &ArraySimulator = self;
        let _: Vec<()> = (0..workers)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|w| {
                let lo = (w * chunk).min(ncores);
                let hi = ((w + 1) * chunk).min(ncores);
                let mut now = start;
                while !stop.load(Ordering::Acquire) {
                    for idx in lo..hi {
                        this.cores[idx]
                            .lock()
                            .expect("core mutex poisoned")
                            .step_once();
                    }
                    barrier.wait();
                    if w == 0 {
                        let status = this.exchange(now);
                        let finished = match &status {
                            Ok(true) | Err(_) => true,
                            Ok(false) => now + 1 >= this.spec.max_cycles,
                        };
                        if finished {
                            cycles_done.store(now + 1, Ordering::Relaxed);
                            *verdict.lock().expect("verdict mutex poisoned") = Some(match status {
                                Ok(true) => Ok(()),
                                Ok(false) => Err(ArrayError::Timeout { cycle: now + 1 }),
                                Err(e) => Err(e),
                            });
                            stop.store(true, Ordering::Release);
                        }
                    }
                    barrier.wait();
                    now += 1;
                }
            })
            .collect();
        self.cycle = cycles_done.load(Ordering::Relaxed);
        verdict
            .into_inner()
            .expect("verdict mutex poisoned")
            .expect("worker 0 always decides before stopping")?;
        let mut per_core = Vec::with_capacity(ncores);
        let mut return_values = Vec::with_capacity(ncores);
        let mut fast_block_execs = 0;
        for core in &mut self.cores {
            let core = core.get_mut().expect("core mutex poisoned");
            per_core.push(*core.sim.stats());
            return_values.push(core.sim.gpr(1));
            fast_block_execs += core.sim.fast_block_execs();
        }
        Ok(ArrayOutcome {
            cycles: self.cycle,
            per_core,
            return_values,
            fast_block_execs,
            noc: self
                .noc
                .get_mut()
                .expect("noc mutex poisoned")
                .stats()
                .clone(),
        })
    }

    /// The serial per-cycle mesh phase (worker 0 only): report core
    /// faults, eject into free RX mailboxes, advance the links, inject
    /// from committed TX mailboxes. Returns `Ok(true)` when every core
    /// has halted and the NoC is drained.
    fn exchange(&self, now: u64) -> Result<bool, ArrayError> {
        let base = self.mailbox_base;
        let ncores = self.cores.len();
        let mut noc = self.noc.lock().expect("noc mutex poisoned");
        let mut all_halted = true;
        for idx in 0..ncores {
            let mut core = self.cores[idx].lock().expect("core mutex poisoned");
            if let Some(source) = core.error.take() {
                return Err(ArrayError::Core { core: idx, source });
            }
            all_halted &= core.halted;
            let memory = core.sim.memory_mut();
            if mb_peek(memory, base, mailbox::RX_STATUS) == 0 {
                if let Some(delivery) = noc.eject(now, idx) {
                    mb_poke(memory, base, mailbox::RX_SRC, delivery.src as u32);
                    mb_poke(memory, base, mailbox::RX_LEN, delivery.payload.len() as u32);
                    for (i, &word) in delivery.payload.iter().enumerate() {
                        mb_poke(memory, base, mailbox::RX_DATA + i as u32, word);
                    }
                    mb_poke(memory, base, mailbox::RX_STATUS, 1);
                }
            }
        }
        noc.advance(now);
        let mut committed_tx = false;
        for idx in 0..ncores {
            let mut core = self.cores[idx].lock().expect("core mutex poisoned");
            let memory = core.sim.memory_mut();
            if mb_peek(memory, base, mailbox::TX_STATUS) != 1 {
                continue;
            }
            committed_tx = true;
            let dest = mb_peek(memory, base, mailbox::TX_DEST);
            let len = mb_peek(memory, base, mailbox::TX_LEN);
            if dest as usize >= ncores {
                return Err(ArrayError::BadMessage {
                    core: idx,
                    cycle: now,
                    detail: format!("destination {dest} is off the {ncores}-core mesh"),
                });
            }
            if len == 0 || len > mailbox::MAX_PAYLOAD_WORDS {
                return Err(ArrayError::BadMessage {
                    core: idx,
                    cycle: now,
                    detail: format!(
                        "payload length {len} outside 1..={}",
                        mailbox::MAX_PAYLOAD_WORDS
                    ),
                });
            }
            let payload: Vec<u32> = (0..len)
                .map(|i| mb_peek(memory, base, mailbox::TX_DATA + i))
                .collect();
            if noc.try_inject(now, idx, dest as usize, payload) {
                mb_poke(memory, base, mailbox::TX_STATUS, 0);
            }
            // A refused injection stays committed; retried next cycle.
        }
        if all_halted {
            let stats = noc.stats();
            // A committed TX on a fully-halted mesh counts as in
            // flight: nobody is left to receive it.
            let in_flight =
                stats.messages_injected - stats.messages_delivered + u64::from(committed_tx);
            if in_flight > 0 || !noc.is_idle() {
                return Err(ArrayError::Undelivered { in_flight });
            }
            return Ok(true);
        }
        Ok(false)
    }
}
