//! The memory-mapped mailbox window shared between a core's program
//! and the array harness.
//!
//! Each core's private memory contains one mailbox — an ordinary
//! program global (named [`GLOBAL`] by convention) whose address the
//! host discovers from the module layout. The program reads and writes
//! it with plain loads and stores; the harness peeks and pokes the
//! same words **between** simulated cycles, during the serial mesh
//! exchange phase. Neither side ever races the other, so no atomics or
//! extra architectural state are needed — and the accesses ride the
//! existing memory-debt machinery like any other load/store.
//!
//! All constants below are **word offsets** from the mailbox base.
//!
//! Handshake protocol (status words own the direction of travel):
//!
//! * **Send** — the program waits for `TX_STATUS == 0`, fills
//!   `TX_DEST`/`TX_LEN`/`TX_DATA`, then stores `TX_STATUS = 1` *last*
//!   (through a call boundary, so the compiler cannot reorder the
//!   commit above the payload stores). The harness injects the message
//!   once the NoC accepts it and clears `TX_STATUS`.
//! * **Receive** — the harness delivers into a mailbox whose
//!   `RX_STATUS` is `0`: it fills `RX_SRC`/`RX_LEN`/`RX_DATA`, then
//!   sets `RX_STATUS = 1`. The program polls `RX_STATUS`, consumes the
//!   payload, and stores `RX_STATUS = 0` to free the slot.

/// Word holding this core's linear index (poked by the harness before
/// cycle 0; reads 0 when the program runs outside an array).
pub const CORE_ID: u32 = 0;
/// Word holding the mesh width in cores (0 outside an array).
pub const MESH_WIDTH: u32 = 1;
/// Word holding the mesh height in cores (0 outside an array).
pub const MESH_HEIGHT: u32 = 2;
/// Send handshake word: program sets 1 to commit, harness clears to 0
/// when the message has been accepted by the NoC.
pub const TX_STATUS: u32 = 3;
/// Destination core's linear index for the outgoing message.
pub const TX_DEST: u32 = 4;
/// Payload length in words (1..=[`MAX_PAYLOAD_WORDS`]).
pub const TX_LEN: u32 = 5;
/// First word of the outgoing payload.
pub const TX_DATA: u32 = 6;
/// Maximum payload length in words.
pub const MAX_PAYLOAD_WORDS: u32 = 32;
/// Receive handshake word: harness sets 1 on delivery, program clears
/// to 0 after consuming the payload.
pub const RX_STATUS: u32 = TX_DATA + MAX_PAYLOAD_WORDS;
/// Sender core's linear index of the delivered message.
pub const RX_SRC: u32 = RX_STATUS + 1;
/// Delivered payload length in words.
pub const RX_LEN: u32 = RX_SRC + 1;
/// First word of the delivered payload.
pub const RX_DATA: u32 = RX_LEN + 1;
/// Total size of the mailbox window in words.
pub const MAILBOX_WORDS: u32 = RX_DATA + MAX_PAYLOAD_WORDS;
/// Total size of the mailbox window in bytes.
pub const MAILBOX_BYTES: u32 = MAILBOX_WORDS * 4;
/// Conventional name of the mailbox global in mesh programs.
pub const GLOBAL: &str = "mesh_ctl";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        assert_eq!(RX_STATUS, 38);
        assert_eq!(RX_DATA, 41);
        assert_eq!(MAILBOX_WORDS, 73);
        assert_eq!(MAILBOX_BYTES, 292);
    }
}
