//! The mesh interconnect: XY-routed point-to-point messages with
//! per-hop latency and bounded link buffers.
//!
//! The model is a 2-D mesh of router output queues — four per node
//! (east, west, south, north) plus one ejection queue per node. A
//! message carries its full XY route (all east/west hops first, then
//! all south/north hops — deterministic and deadlock-free on a mesh)
//! and moves at most one queue per cycle, gated by two resources:
//!
//! * **per-hop latency** — a message that entered a queue at cycle `t`
//!   may not leave before `t + link_latency`;
//! * **bounded buffers** — a move is blocked while the next queue holds
//!   `link_capacity` messages (credit-based backpressure), and only the
//!   *head* of a queue may move each cycle (one flit of bandwidth per
//!   link per cycle).
//!
//! Together with FIFO queue order these give the properties the NoC
//! property tests pin down: every injected message is delivered exactly
//! once, deliveries between one (src, dst) pair stay in injection
//! order, and end-to-end latency is at least
//! `(hops + 1) · link_latency`.
//!
//! All state transitions happen in [`Noc::advance`] /
//! [`Noc::try_inject`] / [`Noc::eject`], called serially by one host
//! thread in a fixed order — the interconnect is deliberately free of
//! interior parallelism so the array's lockstep loop stays
//! grid-index deterministic.

use std::collections::VecDeque;

/// Timing/capacity parameters of the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Cycles a message spends in every queue it enters (≥ 1).
    pub link_latency: u64,
    /// Messages a link or ejection queue can buffer (≥ 1).
    pub link_capacity: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            link_latency: 2,
            link_capacity: 4,
        }
    }
}

/// A message delivered to its destination's ejection port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Linear index of the sending node.
    pub src: usize,
    /// Linear index of the receiving node.
    pub dst: usize,
    /// Payload words.
    pub payload: Vec<u32>,
    /// Cycle the message was injected.
    pub injected_at: u64,
    /// Cycle the message left the ejection queue.
    pub delivered_at: u64,
    /// Links the message traversed (the XY hop count).
    pub hops: usize,
}

/// A message somewhere between injection and ejection.
#[derive(Debug, Clone)]
struct InFlight {
    src: usize,
    dst: usize,
    payload: Vec<u32>,
    injected_at: u64,
    /// Output-queue ids the message traverses, in order.
    route: Vec<usize>,
    /// Index into `route` of the queue currently holding the message.
    hop: usize,
    /// Earliest cycle the message may leave its current queue.
    ready_at: u64,
}

/// Aggregate interconnect statistics, including the per-link transfer
/// counters behind the link-utilisation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocStats {
    /// Messages accepted by [`Noc::try_inject`].
    pub messages_injected: u64,
    /// Messages handed out by [`Noc::eject`].
    pub messages_delivered: u64,
    /// Total payload words injected.
    pub payload_words: u64,
    /// Total link hops over all injected messages' routes.
    pub total_hops: u64,
    /// Sum of per-message end-to-end latencies (delivered − injected).
    pub total_latency: u64,
    /// Messages that entered each link queue (index `node·4 + dir`).
    pub link_transfers: Vec<u64>,
    /// Per-delivery end-to-end latency samples, in delivery order
    /// (raw, so the reporting layer can bucket them into `epic-obs`
    /// histograms without this crate depending on it).
    pub latencies: Vec<u64>,
}

impl NocStats {
    fn new(links: usize) -> Self {
        NocStats {
            messages_injected: 0,
            messages_delivered: 0,
            payload_words: 0,
            total_hops: 0,
            total_latency: 0,
            link_transfers: vec![0; links],
            latencies: Vec::new(),
        }
    }

    /// Links that carried at least one message.
    #[must_use]
    pub fn links_used(&self) -> usize {
        self.link_transfers.iter().filter(|&&t| t > 0).count()
    }

    /// The busiest link's transfer count.
    #[must_use]
    pub fn max_link_transfers(&self) -> u64 {
        self.link_transfers.iter().copied().max().unwrap_or(0)
    }
}

/// Output-port directions, in link-id order.
const DIR_EAST: usize = 0;
const DIR_WEST: usize = 1;
const DIR_SOUTH: usize = 2;
const DIR_NORTH: usize = 3;

/// Human-readable name of a link id (`"(x,y)→E"` style), for reports.
#[must_use]
pub fn link_name(link: usize, width: usize) -> String {
    let node = link / 4;
    let dir = ["E", "W", "S", "N"][link % 4];
    format!("({},{})→{dir}", node % width, node / width)
}

/// The mesh interconnect state: link queues, ejection queues and
/// counters. See the module docs for the timing model.
#[derive(Debug, Clone)]
pub struct Noc {
    width: usize,
    height: usize,
    config: NocConfig,
    links: Vec<VecDeque<InFlight>>,
    eject: Vec<VecDeque<InFlight>>,
    stats: NocStats,
}

impl Noc {
    /// Creates an idle `width`×`height` mesh.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry or configuration (zero
    /// dimension, latency or capacity) — construction parameters, not
    /// runtime data.
    #[must_use]
    pub fn new(width: usize, height: usize, config: NocConfig) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(config.link_latency >= 1, "link latency must be >= 1");
        assert!(config.link_capacity >= 1, "link capacity must be >= 1");
        let nodes = width * height;
        Noc {
            width,
            height,
            config,
            links: vec![VecDeque::new(); nodes * 4],
            eject: vec![VecDeque::new(); nodes],
            stats: NocStats::new(nodes * 4),
        }
    }

    /// Nodes in the mesh.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Statistics gathered so far.
    #[must_use]
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Whether no message is in flight anywhere.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.links.iter().all(VecDeque::is_empty) && self.eject.iter().all(VecDeque::is_empty)
    }

    /// The XY route from `src` to `dst` as output-queue ids: all
    /// east/west hops, then all south/north hops (empty for a
    /// self-send, which goes straight to the ejection queue).
    #[must_use]
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let (mut x, mut y) = (src % self.width, src / self.width);
        let (dx, dy) = (dst % self.width, dst / self.width);
        let mut out = Vec::new();
        while x != dx {
            let dir = if x < dx { DIR_EAST } else { DIR_WEST };
            out.push((y * self.width + x) * 4 + dir);
            if x < dx {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if y < dy { DIR_SOUTH } else { DIR_NORTH };
            out.push((y * self.width + x) * 4 + dir);
            if y < dy {
                y += 1;
            } else {
                y -= 1;
            }
        }
        out
    }

    /// Offers a message at `src`'s injection port at cycle `now`.
    /// Returns whether the first queue had room (a refused message can
    /// simply be offered again next cycle).
    ///
    /// # Panics
    ///
    /// Panics when `src`/`dst` are outside the mesh or the payload is
    /// empty — caller bugs, not backpressure.
    pub fn try_inject(&mut self, now: u64, src: usize, dst: usize, payload: Vec<u32>) -> bool {
        assert!(src < self.nodes() && dst < self.nodes(), "node off-mesh");
        assert!(!payload.is_empty(), "empty payload");
        let route = self.route(src, dst);
        let first_has_room = match route.first() {
            Some(&link) => self.links[link].len() < self.config.link_capacity,
            None => self.eject[dst].len() < self.config.link_capacity,
        };
        if !first_has_room {
            return false;
        }
        self.stats.messages_injected += 1;
        self.stats.payload_words += payload.len() as u64;
        self.stats.total_hops += route.len() as u64;
        let msg = InFlight {
            src,
            dst,
            payload,
            injected_at: now,
            hop: 0,
            ready_at: now + self.config.link_latency,
            route,
        };
        match msg.route.first() {
            Some(&link) => {
                self.stats.link_transfers[link] += 1;
                self.links[link].push_back(msg);
            }
            None => self.eject[dst].push_back(msg),
        }
        true
    }

    /// Moves message heads one queue onward where latency has elapsed
    /// and the next queue has room. Call once per cycle, after
    /// ejection and before injection; iteration over links is in fixed
    /// id order, so the outcome is a pure function of the state.
    pub fn advance(&mut self, now: u64) {
        for link in 0..self.links.len() {
            let Some(head) = self.links[link].front() else {
                continue;
            };
            if head.ready_at > now {
                continue;
            }
            let next = head.route.get(head.hop + 1).copied();
            let has_room = match next {
                Some(l) => self.links[l].len() < self.config.link_capacity,
                None => self.eject[head.dst].len() < self.config.link_capacity,
            };
            if !has_room {
                continue;
            }
            let mut msg = self.links[link].pop_front().expect("head exists");
            msg.hop += 1;
            msg.ready_at = now + self.config.link_latency;
            match next {
                Some(l) => {
                    self.stats.link_transfers[l] += 1;
                    self.links[l].push_back(msg);
                }
                None => self.eject[msg.dst].push_back(msg),
            }
        }
    }

    /// Pops the head of `dst`'s ejection queue if its latency has
    /// elapsed — at most one delivery per node per cycle (a single
    /// ejection port).
    pub fn eject(&mut self, now: u64, dst: usize) -> Option<Delivery> {
        if self.eject[dst].front()?.ready_at > now {
            return None;
        }
        let msg = self.eject[dst].pop_front()?;
        let latency = now - msg.injected_at;
        self.stats.messages_delivered += 1;
        self.stats.total_latency += latency;
        self.stats.latencies.push(latency);
        Some(Delivery {
            src: msg.src,
            dst: msg.dst,
            hops: msg.route.len(),
            payload: msg.payload,
            injected_at: msg.injected_at,
            delivered_at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_one(noc: &mut Noc, dst: usize, cap: u64) -> Delivery {
        let mut now = 0;
        loop {
            if let Some(d) = noc.eject(now, dst) {
                return d;
            }
            noc.advance(now);
            now += 1;
            assert!(now < cap, "message never delivered");
        }
    }

    #[test]
    fn self_send_takes_at_least_one_link_latency() {
        let mut noc = Noc::new(1, 1, NocConfig::default());
        assert!(noc.try_inject(0, 0, 0, vec![42]));
        let d = drain_one(&mut noc, 0, 100);
        assert_eq!(d.payload, vec![42]);
        assert_eq!(d.hops, 0);
        assert!(d.delivered_at - d.injected_at >= noc.config.link_latency);
        assert!(noc.is_idle());
    }

    #[test]
    fn xy_route_goes_x_first() {
        let noc = Noc::new(4, 4, NocConfig::default());
        // (1,1) -> (3,2): two east hops, then one south hop.
        let route = noc.route(5, 11);
        assert_eq!(route.len(), 3);
        assert_eq!(route[0] % 4, DIR_EAST);
        assert_eq!(route[1] % 4, DIR_EAST);
        assert_eq!(route[2] % 4, DIR_SOUTH);
    }

    #[test]
    fn latency_respects_per_hop_cost() {
        let cfg = NocConfig {
            link_latency: 3,
            link_capacity: 2,
        };
        let mut noc = Noc::new(3, 1, cfg);
        assert!(noc.try_inject(0, 0, 2, vec![1, 2]));
        let d = drain_one(&mut noc, 2, 1000);
        assert_eq!(d.hops, 2);
        assert!(d.delivered_at - d.injected_at >= (d.hops as u64 + 1) * cfg.link_latency);
    }

    #[test]
    fn bounded_buffers_refuse_injection() {
        let cfg = NocConfig {
            link_latency: 1,
            link_capacity: 1,
        };
        let mut noc = Noc::new(2, 1, cfg);
        assert!(noc.try_inject(0, 0, 1, vec![1]));
        // The single east-link slot is taken; a second offer bounces.
        assert!(!noc.try_inject(0, 0, 1, vec![2]));
        let d = drain_one(&mut noc, 1, 100);
        assert_eq!(d.payload, vec![1]);
    }

    #[test]
    fn per_pair_order_is_preserved() {
        let mut noc = Noc::new(4, 1, NocConfig::default());
        let mut now = 0;
        let mut pending = vec![vec![10u32], vec![20], vec![30]];
        let mut got = Vec::new();
        while got.len() < 3 {
            if let Some(d) = noc.eject(now, 3) {
                got.push(d.payload[0]);
            }
            noc.advance(now);
            if !pending.is_empty() && noc.try_inject(now, 0, 3, pending[0].clone()) {
                pending.remove(0);
            }
            now += 1;
            assert!(now < 10_000);
        }
        assert_eq!(got, vec![10, 20, 30]);
        assert_eq!(noc.stats().messages_delivered, 3);
        assert_eq!(noc.stats().total_hops, 9);
    }
}
