//! Worklist fixpoint solver over the bundle CFG.
//!
//! One solver serves every analysis in the crate: an [`Analysis`]
//! supplies the lattice state, the per-bundle transfer function, the
//! propagation [`Direction`] and (for forward, timing-relative analyses)
//! an edge aging hook; the solver iterates to the least fixpoint with a
//! plain worklist. Analyses whose lattices have unbounded ascending
//! chains (value intervals) opt into widening after a visit budget.

use crate::cfg::Cfg;
use crate::lattice::Lattice;
use epic_isa::Instruction;

/// Propagation direction of an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along control-flow edges.
    Forward,
    /// Facts flow from exits against control-flow edges.
    Backward,
}

/// One dataflow analysis: state lattice, boundary condition and
/// transfer function.
pub trait Analysis {
    /// The per-bundle dataflow state.
    type State: Clone + Lattice;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The state at the boundary: the entry bundle's input state
    /// (forward) or the state past every program exit (backward).
    fn boundary(&self) -> Self::State;

    /// The least lattice element — the identity of join. Backward
    /// solving requires it (successor facts accumulate into it);
    /// forward solving never calls it.
    fn bottom(&self) -> Self::State {
        self.boundary()
    }

    /// Applies one bundle to the state: input→output for forward
    /// analyses, output→input for backward ones.
    fn transfer(&self, bi: usize, bundle: &[Instruction], state: &Self::State) -> Self::State;

    /// Ages a state across an edge of `delta` cycles (forward,
    /// timing-relative analyses only; default is a no-op).
    fn age(&self, _state: &mut Self::State, _delta: u32) {}

    /// After how many joins into one node widening kicks in (`None`
    /// disables widening; finite lattices terminate without it).
    fn widen_after(&self) -> Option<u32> {
        None
    }

    /// Coarsens a state to force convergence (called on a node's input
    /// once its visit count exceeds [`Analysis::widen_after`]).
    fn widen(&self, _state: &mut Self::State) {}
}

/// The fixpoint of a forward analysis: each bundle's input state, in
/// bundle-address order (`None` = unreachable from the entry).
pub fn solve_forward<A: Analysis>(
    analysis: &A,
    cfg: &Cfg,
    bundles: &[Vec<Instruction>],
    entry: usize,
) -> Vec<Option<A::State>> {
    debug_assert_eq!(analysis.direction(), Direction::Forward);
    let mut flow_in: Vec<Option<A::State>> = vec![None; bundles.len()];
    if entry >= bundles.len() {
        return flow_in;
    }
    let mut visits = vec![0u32; bundles.len()];
    flow_in[entry] = Some(analysis.boundary());
    let mut worklist = vec![entry];
    while let Some(bi) = worklist.pop() {
        let input = flow_in[bi].clone().expect("worklist entries have state");
        let output = analysis.transfer(bi, &bundles[bi], &input);
        for edge in cfg.succs(bi) {
            let mut candidate = output.clone();
            analysis.age(&mut candidate, edge.delta);
            let slot = &mut flow_in[edge.to];
            let changed = match slot {
                Some(existing) => existing.join(&candidate),
                None => {
                    *slot = Some(candidate);
                    true
                }
            };
            if changed {
                visits[edge.to] += 1;
                if let Some(budget) = analysis.widen_after() {
                    if visits[edge.to] > budget {
                        if let Some(state) = slot.as_mut() {
                            analysis.widen(state);
                        }
                    }
                }
                if !worklist.contains(&edge.to) {
                    worklist.push(edge.to);
                }
            }
        }
    }
    flow_in
}

/// The fixpoint of a backward analysis.
#[derive(Debug, Clone)]
pub struct BackwardSolution<S> {
    /// Each bundle's input state (facts live *before* the bundle).
    pub flow_in: Vec<S>,
    /// Each bundle's output state (facts live *after* the bundle).
    pub flow_out: Vec<S>,
}

/// Solves a backward analysis over every bundle.
///
/// The boundary state applies past every program exit: bundles with no
/// successors and bundles containing a `HALT`. A *guarded* `HALT` may
/// stop the machine even though fall-through successors exist, so its
/// bundle joins the boundary *and* its successors' facts.
pub fn solve_backward<A: Analysis>(
    analysis: &A,
    cfg: &Cfg,
    bundles: &[Vec<Instruction>],
) -> BackwardSolution<A::State> {
    debug_assert_eq!(analysis.direction(), Direction::Backward);
    let n = bundles.len();
    let boundary = analysis.boundary();
    let mut is_exit = vec![false; n];
    for &h in cfg.halt_bundles() {
        is_exit[h] = true;
    }
    for (bi, exit) in is_exit.iter_mut().enumerate() {
        if cfg.succs(bi).is_empty() {
            *exit = true;
        }
    }

    let mut flow_in: Vec<A::State> = (0..n).map(|_| analysis.bottom()).collect();
    let mut flow_out: Vec<A::State> = (0..n).map(|_| analysis.bottom()).collect();

    let mut worklist: Vec<usize> = (0..n).collect();
    while let Some(bi) = worklist.pop() {
        let mut out = analysis.bottom();
        if is_exit[bi] {
            out.join(&boundary);
        }
        for edge in cfg.succs(bi) {
            out.join(&flow_in[edge.to]);
        }
        let input = analysis.transfer(bi, &bundles[bi], &out);
        flow_out[bi] = out;
        if flow_in[bi].join(&input) {
            for edge in cfg.preds(bi) {
                if !worklist.contains(&edge.to) {
                    worklist.push(edge.to);
                }
            }
        }
    }

    BackwardSolution { flow_in, flow_out }
}
