//! The static cost model behind the cycle-interval analysis, and the
//! seeded-mutant corpus that keeps it honest.
//!
//! A [`CostModel`] precomputes, from one configuration, every per-bundle
//! price the cycle analysis folds: result latencies (plus the
//! no-forwarding penalty), register-file port serialisation against the
//! controller budget, the taken-branch penalty and loop trip bounds.
//! Each price is derived once at construction — which is exactly where a
//! [`Mutation`] injects a deliberate, realistic bug. Two independent
//! nets must catch every mutant:
//!
//! * [`CostModel::audit`] re-derives every price from the machine
//!   description and first principles and reports mismatches, and
//! * the differential oracle (`tests/mutants.rs`) runs crafted programs
//!   whose simulated cycle counts escape the mutated interval.
//!
//! A mutant that survives both would be a soundness hole; the test suite
//! requires all of them caught.

use epic_config::Config;
use epic_isa::Opcode;
use epic_mdes::{MachineDescription, StaticBundleCost};

/// A deliberate bug injected into the static cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The faithful model.
    #[default]
    None,
    /// Loads priced at a single cycle regardless of the configured
    /// memory latency.
    WrongLoadLatency,
    /// The register-file port budget is never charged.
    IgnorePortBudget,
    /// Taken branches cost nothing.
    DropBranchPenalty,
    /// Loop trip bounds drop the final iteration and the staleness
    /// slack (the classic off-by-one at the exit test).
    LoopBoundOffByOne,
    /// Interval widening narrows instead of widening (drops values).
    UnsoundWidening,
}

impl Mutation {
    /// Every seeded mutant.
    pub const ALL: [Mutation; 5] = [
        Mutation::WrongLoadLatency,
        Mutation::IgnorePortBudget,
        Mutation::DropBranchPenalty,
        Mutation::LoopBoundOffByOne,
        Mutation::UnsoundWidening,
    ];

    /// A short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::WrongLoadLatency => "wrong-load-latency",
            Mutation::IgnorePortBudget => "ignore-port-budget",
            Mutation::DropBranchPenalty => "drop-branch-penalty",
            Mutation::LoopBoundOffByOne => "loop-bound-off-by-one",
            Mutation::UnsoundWidening => "unsound-widening",
        }
    }
}

/// Per-configuration static prices, precomputed at construction (where a
/// [`Mutation`] can corrupt them) and consumed by the cycle analysis.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: Config,
    mdes: MachineDescription,
    mutation: Mutation,
    /// Extra result cycles when forwarding is disabled.
    fwd_extra: u64,
    /// Load result latency (possibly mutated).
    load_latency: u32,
    /// Stalls per taken branch (possibly mutated): the redirect cycle
    /// plus one flush bubble per pipeline stage beyond two.
    branch_penalty: u64,
    /// Whether port serialisation is charged (mutation hook).
    charge_ports: bool,
}

impl CostModel {
    /// The faithful cost model for a configuration.
    #[must_use]
    pub fn new(config: &Config) -> CostModel {
        CostModel::mutated(config, Mutation::None)
    }

    /// A cost model with one seeded bug (or [`Mutation::None`]).
    #[must_use]
    pub fn mutated(config: &Config, mutation: Mutation) -> CostModel {
        CostModel {
            config: config.clone(),
            mdes: MachineDescription::new(config),
            mutation,
            fwd_extra: u64::from(!config.forwarding()),
            load_latency: if mutation == Mutation::WrongLoadLatency {
                1
            } else {
                config.load_latency()
            },
            branch_penalty: if mutation == Mutation::DropBranchPenalty {
                0
            } else {
                config.pipeline_stages() as u64 - 1
            },
            charge_ports: mutation != Mutation::IgnorePortBudget,
        }
    }

    /// The configuration this model prices.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The machine description this model prices against.
    #[must_use]
    pub fn mdes(&self) -> &MachineDescription {
        &self.mdes
    }

    /// The seeded mutation, if any.
    #[must_use]
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }

    /// Cycles after execute until an operation's GPR result may be
    /// consumed without stalling (the scoreboard's booking).
    #[must_use]
    pub fn ready_after(&self, opcode: Opcode) -> u64 {
        let latency = if opcode.is_load() {
            self.load_latency
        } else {
            self.mdes.latency(opcode)
        };
        u64::from(latency) + self.fwd_extra
    }

    /// Cycles the iterative divider blocks its ALU.
    #[must_use]
    pub fn div_occupancy(&self) -> u64 {
        u64::from(self.config.div_latency())
    }

    /// Upper bound on register-file port stalls per execution of a
    /// bundle: no forwarding discount, every read charged.
    #[must_use]
    pub fn port_stall_hi(&self, cost: &StaticBundleCost) -> u64 {
        if self.charge_ports {
            u64::from(cost.extra_port_cycles(self.config.regfile_ops_per_cycle()))
        } else {
            0
        }
    }

    /// Lower bound on port stalls per execution: with forwarding every
    /// read may bypass the file, leaving only the writes; without it the
    /// static count is exact.
    #[must_use]
    pub fn port_stall_lo(&self, cost: &StaticBundleCost, write_ports: usize) -> u64 {
        if !self.charge_ports {
            return 0;
        }
        let ops = if self.config.forwarding() {
            write_ports
        } else {
            cost.port_ops
        };
        let budget = self.config.regfile_ops_per_cycle().max(1);
        (ops.div_ceil(budget).max(1) - 1) as u64
    }

    /// Stalls per taken branch: one redirect cycle plus the flush
    /// bubbles (`pipeline_stages - 1` total).
    #[must_use]
    pub fn branch_penalty(&self) -> u64 {
        self.branch_penalty
    }

    /// Applies the loop-bound mutation to a statically derived trip
    /// bound.
    #[must_use]
    pub fn loop_trips(&self, trips: Option<u64>) -> Option<u64> {
        match self.mutation {
            Mutation::LoopBoundOffByOne => trips.map(|t| t.saturating_sub(3)),
            _ => trips,
        }
    }

    /// Whether value-range widening should (unsoundly) narrow — wired
    /// into [`crate::ranges::ValueAnalysis`] by the cycle analysis.
    #[must_use]
    pub fn unsound_widening(&self) -> bool {
        self.mutation == Mutation::UnsoundWidening
    }

    /// Re-derives every price from the machine description and first
    /// principles; each mismatch is one finding. The faithful model
    /// audits clean, every seeded [`Mutation`] is reported.
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut findings = Vec::new();

        // Latencies come from the machine description, nowhere else.
        for opcode in [
            Opcode::Add,
            Opcode::Mull,
            Opcode::Div,
            Opcode::Lw,
            Opcode::Lb,
            Opcode::Sw,
            Opcode::Cmp(epic_isa::CmpCond::Lt),
        ] {
            let expected =
                u64::from(self.mdes.latency(opcode)) + u64::from(!self.config.forwarding());
            let got = self.ready_after(opcode);
            if got != expected {
                findings.push(format!(
                    "latency of {:?}: model books {got} cycles, machine description says {expected}",
                    opcode
                ));
            }
        }

        // Port serialisation must match the shared static-cost formula.
        let budget = self.config.regfile_ops_per_cycle();
        for port_ops in 0..=24 {
            let cost = StaticBundleCost {
                port_ops,
                ..StaticBundleCost::default()
            };
            let expected = u64::from(cost.extra_port_cycles(budget));
            let got = self.port_stall_hi(&cost);
            if got != expected {
                findings.push(format!(
                    "port budget: {port_ops} ops against {budget}/cycle \
                     costs {expected} stalls, model charges {got}"
                ));
            }
            if self.port_stall_lo(&cost, port_ops) > got {
                findings.push(format!(
                    "port bounds inverted at {port_ops} ops: lower exceeds upper"
                ));
            }
        }

        // Taken-branch penalty: redirect + flush bubbles.
        let expected_penalty = self.config.pipeline_stages() as u64 - 1;
        if self.branch_penalty() != expected_penalty {
            findings.push(format!(
                "taken branch: {} pipeline stages cost {expected_penalty} stalls, model charges {}",
                self.config.pipeline_stages(),
                self.branch_penalty()
            ));
        }

        // Trip bounds: brute-force the induction recurrence (with the
        // worst-case one-iteration-stale compare operand) and demand the
        // closed form dominates it.
        for (start, step, limit) in [(0u64, 1u64, 10i64), (3, 2, 40), (0, 5, 7), (9, 1, 3)] {
            for cond in [epic_isa::CmpCond::Lt, epic_isa::CmpCond::Ltu] {
                let Some(closed) =
                    crate::loops::trip_bound(cond, start, start as u32, limit, step, 1)
                else {
                    findings.push(format!(
                        "trip bound: counted shape r={start} +{step} while <{limit} not solved"
                    ));
                    continue;
                };
                let brute = brute_force_trips(start, step, limit as u64);
                if self.loop_trips(Some(closed)).unwrap_or(0) < brute {
                    findings.push(format!(
                        "trip bound: loop r={start} +{step} while <{limit} runs {brute} \
                         iterations, model bounds it at {:?}",
                        self.loop_trips(Some(closed))
                    ));
                }
            }
        }

        // Widening must be extensive: the widened interval contains the
        // original.
        let analysis = {
            let mut a = crate::ranges::ValueAnalysis::new(&self.config);
            a.narrow_instead_of_widen = self.unsound_widening();
            a
        };
        use crate::solver::Analysis as _;
        for interval in [
            crate::lattice::Interval { lo: 0, hi: 200 },
            crate::lattice::Interval { lo: 5, hi: 6 },
            crate::lattice::Interval {
                lo: 100,
                hi: u32::MAX,
            },
        ] {
            let mut state = analysis.boundary();
            state.gprs[1] = interval;
            let before = state.gprs[1];
            analysis.widen(&mut state);
            if !state.gprs[1].includes(&before) {
                findings.push(format!(
                    "widening is not extensive: [{}, {}] widened to [{}, {}]",
                    before.lo, before.hi, state.gprs[1].lo, state.gprs[1].hi
                ));
            }
        }

        findings
    }
}

/// Iterations of `r = start; loop { r += step; continue while seen < limit }`
/// where the exit test may observe `r` one add late.
fn brute_force_trips(start: u64, step: u64, limit: u64) -> u64 {
    let mut iterations = 0u64;
    loop {
        iterations += 1;
        // Worst case the compare saw the counter before this
        // iteration's add.
        let seen = start + (iterations - 1) * step;
        if seen >= limit || iterations > 1_000_000 {
            return iterations;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_model_audits_clean() {
        for config in [
            Config::default(),
            Config::builder().forwarding(false).build().unwrap(),
            Config::builder()
                .pipeline_stages(4)
                .regfile_ops_per_cycle(4)
                .build()
                .unwrap(),
        ] {
            let model = CostModel::new(&config);
            let findings = model.audit();
            assert!(findings.is_empty(), "clean model flagged: {findings:?}");
        }
    }

    #[test]
    fn every_mutation_is_caught_by_the_audit() {
        let config = Config::default();
        for mutation in Mutation::ALL {
            let model = CostModel::mutated(&config, mutation);
            let findings = model.audit();
            assert!(
                !findings.is_empty(),
                "mutation {} survived the audit",
                mutation.name()
            );
        }
    }

    #[test]
    fn prices_follow_the_configuration() {
        let config = Config::builder()
            .load_latency(3)
            .forwarding(false)
            .pipeline_stages(4)
            .build()
            .unwrap();
        let model = CostModel::new(&config);
        assert_eq!(model.ready_after(Opcode::Lw), 4, "load latency + no-fwd");
        assert_eq!(model.ready_after(Opcode::Add), 2);
        assert_eq!(model.branch_penalty(), 3);
    }
}
