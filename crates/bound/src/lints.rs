//! Dataflow-backed lints (`BND001`–`BND003`).
//!
//! These consume the analyses in this crate and report through the same
//! [`Diagnostic`] type the assembler and verifier use, so `epic-lint`
//! renders and JSON-encodes them uniformly:
//!
//! * **BND001** — dead store: an unconditional GPR write that no path
//!   reads before overwriting (liveness, all-live at exits).
//! * **BND002** — unreachable code: a bundle no CFG path reaches, or an
//!   instruction whose guard the value analysis proves always-false.
//! * **BND003** — unnecessary speculation: a fault-tolerant `LW.S`
//!   whose address interval is provably in-bounds and aligned, so a
//!   plain `LW` behaves identically.

use crate::cfg::Cfg;
use crate::lattice::PredVal;
use crate::liveness::gpr_liveness;
use crate::ranges::{ValueAnalysis, Values};
use epic_asm::Diagnostic;
use epic_config::Config;
use epic_isa::{Instruction, Opcode, TRUE_PRED};

/// Options for [`lint_bundles`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Data-memory size in bytes, for the `BND003` in-bounds proof.
    /// `None` disables BND003 (nothing is provable without a size).
    pub mem_size: Option<u32>,
}

/// Runs every dataflow lint over an assembled program.
#[must_use]
pub fn lint_bundles(
    config: &Config,
    bundles: &[Vec<Instruction>],
    entry: usize,
    options: &LintOptions,
) -> Vec<Diagnostic> {
    let cfg = Cfg::build(config, bundles);
    let liveness = gpr_liveness(config, &cfg, bundles);
    let ranges = ValueAnalysis::new(config);
    let values = ranges.solve(&cfg, bundles, entry);

    let mut out = Vec::new();
    for (bi, bundle) in bundles.iter().enumerate() {
        if values[bi].is_none() {
            out.push(
                Diagnostic::warning(
                    "BND002",
                    format!("bundle {bi} is unreachable from the entry point"),
                )
                .with_bundle(bi, None),
            );
            continue;
        }
        let state = values[bi].as_ref().expect("checked above");
        for (slot, instr) in bundle.iter().enumerate() {
            dead_store(&liveness.flow_out[bi], bi, slot, instr, &mut out);
            squashed_guard(state, bi, slot, instr, &mut out);
            safe_speculation(state, options, bi, slot, instr, &mut out);
        }
    }
    out
}

fn dead_store(
    live_out: &[bool],
    bi: usize,
    slot: usize,
    instr: &Instruction,
    out: &mut Vec<Diagnostic>,
) {
    // Loads and stores have architectural effects beyond the register
    // write; only pure ALU/move results can be dead.
    if instr.pred != TRUE_PRED || instr.opcode.is_load() || instr.opcode.is_store() {
        return;
    }
    if let Some(r) = instr.gpr_write() {
        if !live_out[r.0 as usize] {
            out.push(
                Diagnostic::warning(
                    "BND001",
                    format!(
                        "dead store: r{} is overwritten on every path before being read",
                        r.0
                    ),
                )
                .with_bundle(bi, Some(slot)),
            );
        }
    }
}

fn squashed_guard(
    state: &Values,
    bi: usize,
    slot: usize,
    instr: &Instruction,
    out: &mut Vec<Diagnostic>,
) {
    if instr.opcode == Opcode::Nop {
        return;
    }
    if state.guard(instr.pred) == PredVal::False {
        out.push(
            Diagnostic::warning(
                "BND002",
                format!(
                    "guard p{} is provably false here: the operation is always squashed",
                    instr.pred.0
                ),
            )
            .with_bundle(bi, Some(slot)),
        );
    }
}

fn safe_speculation(
    state: &Values,
    options: &LintOptions,
    bi: usize,
    slot: usize,
    instr: &Instruction,
    out: &mut Vec<Diagnostic>,
) {
    if instr.opcode != Opcode::LwS {
        return;
    }
    let Some(mem_size) = options.mem_size else {
        return;
    };
    // A squashed speculative load cannot fault either way.
    if state.guard(instr.pred) == PredVal::False {
        return;
    }
    let addr = state.operand(instr.src1).add(&state.operand(instr.src2));
    let width = 4u32;
    let in_bounds = u64::from(addr.hi) + u64::from(width) <= u64::from(mem_size);
    // Alignment is provable when the whole interval is one value (or the
    // interval stride is unknowable — then only a constant helps).
    let aligned = addr.lo == addr.hi && addr.lo.is_multiple_of(width);
    if in_bounds && aligned {
        out.push(
            Diagnostic::warning(
                "BND003",
                format!(
                    "speculative load is provably safe (address {} in [0, {})): \
                     a plain LW behaves identically",
                    addr.lo, mem_size
                ),
            )
            .with_bundle(bi, Some(slot)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn lints(source: &str, mem_size: Option<u32>) -> Vec<Diagnostic> {
        let config = Config::default();
        let program = assemble(source, &config).expect("assembles");
        lint_bundles(
            &config,
            program.bundles(),
            program.entry() as usize,
            &LintOptions { mem_size },
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dead_store_is_flagged() {
        let d = lints("MOVE r1, #1\n;;\nMOVE r1, #2\n;;\nHALT\n;;\n", None);
        assert_eq!(codes(&d), vec!["BND001"]);
        assert_eq!(d[0].bundle, Some(0));
    }

    #[test]
    fn a_live_store_is_not_flagged() {
        let d = lints("MOVE r1, #1\n;;\nADD r2, r1, #1\n;;\nHALT\n;;\n", None);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn provably_false_guard_is_flagged() {
        // p1 is never written: it stays 0 (false) from reset.
        let d = lints("ADD r1, r1, #1 (p1)\n;;\nHALT\n;;\n", None);
        assert_eq!(codes(&d), vec!["BND002"]);
    }

    #[test]
    fn unreachable_bundle_is_flagged() {
        let d = lints("HALT\n;;\nMOVE r1, #1\n;;\nHALT\n;;\n", None);
        assert!(
            d.iter().any(|d| d.code == "BND002" && d.bundle == Some(1)),
            "unexpected: {d:?}"
        );
    }

    #[test]
    fn provably_safe_speculative_load_is_flagged() {
        let d = lints("MOVE r1, #8\n;;\nLWS r2, r1, #4\n;;\nHALT\n;;\n", Some(64));
        assert_eq!(codes(&d), vec!["BND003"]);
        // Without a memory size nothing is provable.
        let none = lints("MOVE r1, #8\n;;\nLWS r2, r1, #4\n;;\nHALT\n;;\n", None);
        assert!(none.is_empty());
    }

    #[test]
    fn possibly_unsafe_speculative_load_is_quiet() {
        // r1 is loaded from memory: its range is unknown.
        let d = lints(
            "LW r1, r0, #0\n;;\nLWS r2, r1, #4\n;;\nHALT\n;;\n",
            Some(64),
        );
        assert!(d.is_empty(), "unexpected: {d:?}");
    }
}
