//! Static cycle-interval analysis: `[lower, upper]` bounds on a whole
//! run's simulated cycle count.
//!
//! The simulator's cycle identity is exact: every cycle is either one
//! bundle issue, one counted stall (data hazard, busy unit, port
//! serialisation, branch flush, memory contention) or the single final
//! halt-execute cycle. The analysis therefore bounds cycles by bounding
//! issues and stalls separately:
//!
//! * **Per-execution stall bounds** come from a forward residual
//!   fixpoint over the CFG mirroring the scoreboard: GPR writes book
//!   `latency (+1 without forwarding)` cycles, divider ops book their
//!   ALU for the division latency, and states age by each edge's
//!   *minimum* execute-to-execute distance — the actual distance is
//!   never smaller, so aged residuals upper-bound the live scoreboard.
//!   Port and branch costs are per-bundle constants from the
//!   [`CostModel`].
//! * **Execution counts** either come from a profiling run (exact), or
//!   from the static loop analysis (trip bounds folded over the SCC
//!   condensation). An unbounded loop leaves the upper end open.
//! * **The lower bound** is a shortest path: Dijkstra over edge deltas
//!   plus unavoidable per-bundle stalls (write-port serialisation,
//!   always-taken branch flushes), or — with measured counts — the
//!   issue total plus those same unavoidable stalls.
//!
//! Soundness is enforced empirically by the differential oracle
//! (`tests/oracle.rs`): for every workload × configuration grid point,
//! all four simulation engines' cycle counts must land inside the interval.

use crate::cfg::Cfg;
use crate::cost::CostModel;
use crate::lattice::Lattice;
use crate::loops::LoopAnalysis;
use crate::ranges::ValueAnalysis;
use crate::solver::{solve_forward, Analysis, Direction};
use epic_config::Config;
use epic_isa::{Instruction, Opcode, Unit, TRUE_PRED};
use std::collections::BTreeMap;

/// Where per-bundle execution counts come from.
#[derive(Debug, Clone)]
pub enum CountSource<'a> {
    /// Exact per-bundle issue counts from a profiling run (pc → issues).
    /// Bundles absent from the map count zero.
    Measured(&'a BTreeMap<u32, u64>),
    /// Derive counts from the static loop-bound analysis.
    Static,
}

/// Options of [`analyze_cycles`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundOptions {
    /// Assumed body executions per entry for loops the static analysis
    /// cannot bound (`None` leaves them unbounded). An *assumption*,
    /// not a proof: the resulting upper bound is conditional on it.
    pub assume_trips: Option<u64>,
}

/// Static bounds for one bundle address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcBound {
    /// Bundle address.
    pub pc: u32,
    /// Execution-count upper bound (`None` = unbounded).
    pub count: Option<u64>,
    /// Worst-case data-hazard stalls per execution.
    pub data_hi: u64,
    /// Worst-case busy-unit stalls per execution.
    pub unit_hi: u64,
    /// Worst-case register-file port stalls per execution.
    pub port_hi: u64,
    /// Guaranteed port stalls per execution.
    pub port_lo: u64,
    /// Worst-case branch-flush stalls per execution.
    pub branch_hi: u64,
    /// Guaranteed branch-flush stalls per execution (always-taken
    /// branches).
    pub branch_lo: u64,
    /// Data-memory operations per execution.
    pub mem_ops: u64,
}

impl PcBound {
    /// Worst-case cycles one execution of this bundle adds, excluding
    /// memory contention (folded globally): the issue cycle plus every
    /// stall bound.
    #[must_use]
    pub fn cost_hi(&self) -> u64 {
        1 + self.data_hi + self.unit_hi + self.port_hi + self.branch_hi
    }

    /// This bundle's contribution to the upper bound, including its
    /// (per-bundle floored) share of memory-contention stalls.
    #[must_use]
    pub fn contribution_hi(&self) -> Option<u64> {
        let count = self.count?;
        Some(count.saturating_mul(self.cost_hi()) + count.saturating_mul(self.mem_ops) / 2)
    }
}

/// A whole-program cycle interval with its per-bundle breakdown.
#[derive(Debug, Clone)]
pub struct CycleBounds {
    /// Cycles every run needs at least.
    pub lower: u64,
    /// Cycles no run exceeds (`None` when some reachable loop is
    /// unbounded).
    pub upper: Option<u64>,
    /// Per-bundle bounds, in bundle-address order.
    pub per_pc: Vec<PcBound>,
    /// Human-readable notes: unbounded loops and their reasons.
    pub notes: Vec<String>,
}

impl CycleBounds {
    /// Whether a simulated cycle count lands inside the interval.
    #[must_use]
    pub fn contains(&self, cycles: u64) -> bool {
        self.lower <= cycles && self.upper.is_none_or(|u| cycles <= u)
    }
}

/// Per-bundle static facts the timing fixpoint and the fold consume.
struct BundleFacts {
    gpr_reads: Vec<u16>,
    gpr_writes: Vec<(u16, u64)>,
    alu_wanted: usize,
    div_ops: usize,
    port_hi: u64,
    port_lo: u64,
    mem_ops: u64,
    may_take_branch: bool,
    always_takes_branch: bool,
}

impl BundleFacts {
    fn build(bundle: &[Instruction], model: &CostModel) -> BundleFacts {
        let cost = model.mdes().bundle_cost(bundle);
        let mut facts = BundleFacts {
            gpr_reads: Vec::new(),
            gpr_writes: Vec::new(),
            alu_wanted: cost.demand(Unit::Alu),
            div_ops: 0,
            port_hi: model.port_stall_hi(&cost),
            port_lo: 0,
            mem_ops: 0,
            may_take_branch: false,
            always_takes_branch: false,
        };
        let mut write_ports = 0;
        for instr in bundle {
            for r in instr.gpr_reads() {
                facts.gpr_reads.push(r.0);
            }
            if let Some(r) = instr.gpr_write() {
                facts
                    .gpr_writes
                    .push((r.0, model.ready_after(instr.opcode)));
                write_ports += 1;
            }
            if matches!(instr.opcode, Opcode::Div | Opcode::Rem) {
                facts.div_ops += 1;
            }
            if instr.opcode.is_load() || instr.opcode.is_store() {
                facts.mem_ops += 1;
            }
            match instr.opcode {
                Opcode::Br | Opcode::Brl | Opcode::Brct => {
                    facts.may_take_branch = true;
                    if instr.pred == TRUE_PRED {
                        facts.always_takes_branch = true;
                    }
                }
                Opcode::Brcf if instr.pred != TRUE_PRED => facts.may_take_branch = true,
                _ => {}
            }
        }
        facts.port_lo = model.port_stall_lo(&cost, write_ports);
        facts
    }
}

/// Scoreboard residuals relative to the current bundle's execute cycle.
#[derive(Clone, PartialEq, Eq)]
struct Timing {
    /// Remaining cycles until each GPR's pending result is consumable.
    gpr: Vec<u64>,
    /// Remaining busy cycles per ALU instance, sorted descending.
    alu: Vec<u64>,
}

impl Lattice for Timing {
    fn join(&mut self, other: &Timing) -> bool {
        let mut changed = false;
        for (a, b) in self.gpr.iter_mut().zip(&other.gpr) {
            if *b > *a {
                *a = *b;
                changed = true;
            }
        }
        // Both sides sorted descending: the pointwise max dominates
        // every "w-th busiest instance" query of either operand.
        for (a, b) in self.alu.iter_mut().zip(&other.alu) {
            if *b > *a {
                *a = *b;
                changed = true;
            }
        }
        changed
    }
}

struct TimingAnalysis<'a> {
    facts: &'a [BundleFacts],
    num_gprs: usize,
    num_alus: usize,
    div_occupancy: u64,
}

impl Analysis for TimingAnalysis<'_> {
    type State = Timing;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Timing {
        Timing {
            gpr: vec![0; self.num_gprs],
            alu: vec![0; self.num_alus],
        }
    }

    fn transfer(&self, bi: usize, _bundle: &[Instruction], state: &Timing) -> Timing {
        let facts = &self.facts[bi];
        let mut out = state.clone();
        for &(r, ready_after) in &facts.gpr_writes {
            // The scoreboard overwrites the booking unconditionally.
            out.gpr[r as usize] = ready_after;
        }
        if facts.div_ops > 0 {
            // Each divider op claims a free ALU; abstractly, occupy the
            // least-busy instances. Residuals never exceed the division
            // occupancy, so this preserves sorted dominance.
            let n = out.alu.len();
            for slot in out.alu[n.saturating_sub(facts.div_ops)..].iter_mut() {
                *slot = self.div_occupancy;
            }
            out.alu.sort_unstable_by(|a, b| b.cmp(a));
        }
        out
    }

    fn age(&self, state: &mut Timing, delta: u32) {
        for v in state.gpr.iter_mut().chain(state.alu.iter_mut()) {
            *v = v.saturating_sub(u64::from(delta));
        }
    }
}

/// Computes the static cycle interval of a program on a configuration.
///
/// With [`CountSource::Measured`] the interval is specific to the
/// profiled input; with [`CountSource::Static`] it holds for every
/// input (upper open when a loop resists the trip-bound analysis and no
/// [`BoundOptions::assume_trips`] is given).
#[must_use]
pub fn analyze_cycles(
    config: &Config,
    bundles: &[Vec<Instruction>],
    entry: usize,
    counts: &CountSource<'_>,
    model: &CostModel,
    options: &BoundOptions,
) -> CycleBounds {
    let cfg = Cfg::build(config, bundles);
    let facts: Vec<BundleFacts> = bundles
        .iter()
        .map(|b| BundleFacts::build(b, model))
        .collect();

    // Residual fixpoint for data-hazard and busy-unit stall bounds.
    let timing = TimingAnalysis {
        facts: &facts,
        num_gprs: config.num_gprs(),
        num_alus: config.num_alus(),
        div_occupancy: model.div_occupancy(),
    };
    let flows = solve_forward(&timing, &cfg, bundles, entry);

    let mut notes = Vec::new();
    let per_count: Vec<Option<u64>> = match counts {
        CountSource::Measured(map) => (0..bundles.len())
            .map(|bi| Some(map.get(&(bi as u32)).copied().unwrap_or(0)))
            .collect(),
        CountSource::Static => {
            let ranges = ValueAnalysis::with_model(config, model);
            let values = ranges.solve(&cfg, bundles, entry);
            let mut la = LoopAnalysis::analyze(config, &cfg, bundles, entry, &values, &ranges);
            for l in &mut la.loops {
                l.trips = model.loop_trips(l.trips);
                if l.trips.is_none() && options.assume_trips.is_none() {
                    notes.push(format!(
                        "loop at bundle {} is unbounded: {}",
                        l.header, l.reason
                    ));
                }
            }
            la.static_counts(&cfg, entry, options.assume_trips)
        }
    };

    let branch_penalty = model.branch_penalty();
    let per_pc: Vec<PcBound> = (0..bundles.len())
        .map(|bi| {
            let f = &facts[bi];
            let (data_hi, unit_hi) = match &flows[bi] {
                None => (0, 0), // unreachable
                Some(state) => {
                    let data = f
                        .gpr_reads
                        .iter()
                        .map(|&r| state.gpr[r as usize])
                        .max()
                        .unwrap_or(0);
                    let unit = if f.alu_wanted == 0 {
                        0
                    } else {
                        // Issue waits until the w-th least-busy ALU
                        // frees: the w-th smallest residual.
                        let w = f.alu_wanted.min(state.alu.len());
                        state.alu[state.alu.len() - w]
                    };
                    (data, unit)
                }
            };
            PcBound {
                pc: bi as u32,
                count: per_count[bi],
                data_hi,
                unit_hi,
                port_hi: f.port_hi,
                port_lo: f.port_lo,
                branch_hi: if f.may_take_branch { branch_penalty } else { 0 },
                branch_lo: if f.always_takes_branch {
                    branch_penalty
                } else {
                    0
                },
                mem_ops: f.mem_ops,
            }
        })
        .collect();

    // ---- upper: fold counts × per-execution costs ----------------------
    let mut upper: Option<u64> = Some(1);
    let mut total_mem_ops: u64 = 0;
    for b in &per_pc {
        match (upper, b.count) {
            (Some(acc), Some(count)) => {
                upper = Some(acc.saturating_add(count.saturating_mul(b.cost_hi())));
                total_mem_ops = total_mem_ops.saturating_add(count.saturating_mul(b.mem_ops));
            }
            _ => upper = None,
        }
    }
    if config.memory_contention() {
        // Every two outstanding data-memory accesses steal one fetch
        // cycle; the debt never decays, so the total is exactly bounded.
        upper = upper.map(|u| u.saturating_add(total_mem_ops / 2));
    }

    // ---- lower ---------------------------------------------------------
    let lower = match counts {
        CountSource::Measured(_) => {
            // Exact issues plus unavoidable per-execution stalls.
            let mut acc: u64 = 1;
            for b in &per_pc {
                let count = b.count.unwrap_or(0);
                acc = acc.saturating_add(count.saturating_mul(1 + b.port_lo + b.branch_lo));
            }
            acc
        }
        CountSource::Static => shortest_run(&cfg, &per_pc, entry),
    };

    CycleBounds {
        lower,
        upper,
        per_pc,
        notes,
    }
}

/// Dijkstra over `edge delta + unavoidable stalls at the target`: the
/// cheapest possible execute cycle of any halting bundle, plus the final
/// halt cycle.
fn shortest_run(cfg: &Cfg, per_pc: &[PcBound], entry: usize) -> u64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if entry >= cfg.len() {
        return 0;
    }
    let unavoidable = |bi: usize| per_pc[bi].port_lo + per_pc[bi].branch_lo_pre_issue();
    let mut dist: Vec<Option<u64>> = vec![None; cfg.len()];
    let mut heap = BinaryHeap::new();
    // The entry issues at cycle `port_lo` and executes one cycle later.
    let start = 1 + per_pc[entry].port_lo;
    dist[entry] = Some(start);
    heap.push(Reverse((start, entry)));
    while let Some(Reverse((d, bi))) = heap.pop() {
        if dist[bi] != Some(d) {
            continue;
        }
        for edge in cfg.succs(bi) {
            let nd = d + u64::from(edge.delta) + unavoidable(edge.to);
            if dist[edge.to].is_none_or(|old| nd < old) {
                dist[edge.to] = Some(nd);
                heap.push(Reverse((nd, edge.to)));
            }
        }
    }
    cfg.halt_bundles()
        .iter()
        .filter_map(|&h| dist[h])
        .min()
        .map_or(0, |d| d + 1)
}

impl PcBound {
    /// Stalls guaranteed *before this bundle's own issue* on the
    /// cheapest path — branch flushes burn cycles after the branch, so
    /// they are charged on the edge, not here.
    fn branch_lo_pre_issue(&self) -> u64 {
        0
    }
}

/// Expands per-block weights (block leader pc, weight) into a per-pc
/// count map: every pc inherits its enclosing block's weight. Control
/// only enters a block at its leader, so the leader's execution count
/// upper-bounds every member's.
#[must_use]
pub fn counts_from_block_weights(starts: &[(u32, u64)], len: usize) -> BTreeMap<u32, u64> {
    let mut sorted: Vec<(u32, u64)> = starts.to_vec();
    sorted.sort_unstable();
    let mut map = BTreeMap::new();
    let mut current = 0u64;
    let mut next_ix = 0usize;
    for pc in 0..len as u32 {
        while next_ix < sorted.len() && sorted[next_ix].0 == pc {
            current = sorted[next_ix].1;
            next_ix += 1;
        }
        map.insert(pc, current);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn bounds(source: &str, config: &Config, counts: &CountSource<'_>) -> CycleBounds {
        let program = assemble(source, config).expect("assembles");
        let model = CostModel::new(config);
        analyze_cycles(
            config,
            program.bundles(),
            program.entry() as usize,
            counts,
            &model,
            &BoundOptions::default(),
        )
    }

    #[test]
    fn straight_line_lower_matches_the_machine() {
        // Three bundles, no stalls: the simulator takes exactly 4 cycles
        // (3 issues + final halt-execute).
        let config = Config::default();
        let b = bounds(
            "MOVE r1, #1\n;;\nADD r2, r1, #1\n;;\nHALT\n;;\n",
            &config,
            &CountSource::Static,
        );
        assert_eq!(b.lower, 4);
        assert_eq!(b.upper, Some(4), "no hazards: the bound is exact");
    }

    #[test]
    fn load_use_hazard_raises_the_upper_bound() {
        let config = Config::default(); // load latency 2
        let b = bounds(
            "LW r1, r0, #0\n;;\nADD r2, r1, #1\n;;\nHALT\n;;\n",
            &config,
            &CountSource::Static,
        );
        // The consumer stalls one cycle on the load's latency.
        assert_eq!(b.per_pc[1].data_hi, 1);
        // 3 issues + 1 hazard stall + final halt cycle; one memory op
        // leaves the contention debt below the 2-op threshold.
        assert_eq!(b.upper, Some(5));
    }

    #[test]
    fn counted_loop_gets_a_finite_upper_bound() {
        let config = Config::default();
        let b = bounds(
            "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\nCMP_LT p1, p0, r1, #10\n;;\n\
             BRCT b1 (p1)\n;;\nHALT\n;;\n",
            &config,
            &CountSource::Static,
        );
        let upper = b.upper.expect("counted loop is bounded");
        // 10 real iterations × (3 issues + 1 taken-branch penalty) ≈ 40
        // cycles; the bound adds two slack iterations.
        assert!((40..=60).contains(&upper), "upper = {upper}");
        assert!(
            b.lower <= 10,
            "one fall-through traversal, lower = {}",
            b.lower
        );
    }

    #[test]
    fn unbounded_loop_leaves_the_interval_open() {
        let config = Config::default();
        let b = bounds(
            "PBR b1, @loop\n;;\nloop:\nLW r1, r2, #0\n;;\nCMP_EQ p1, p0, r1, #0\n;;\n\
             BRCT b1 (p1)\n;;\nHALT\n;;\n",
            &config,
            &CountSource::Static,
        );
        assert_eq!(b.upper, None);
        assert!(!b.notes.is_empty(), "the unbounded loop is explained");
        assert!(b.lower >= 5);
    }

    #[test]
    fn measured_counts_tighten_both_ends() {
        let config = Config::default();
        let mut counts = BTreeMap::new();
        for (pc, n) in [(0u32, 1u64), (1, 10), (2, 10), (3, 10), (4, 1)] {
            counts.insert(pc, n);
        }
        let b = bounds(
            "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\nCMP_LT p1, p0, r1, #10\n;;\n\
             BRCT b1 (p1)\n;;\nHALT\n;;\n",
            &config,
            &CountSource::Measured(&counts),
        );
        // 32 issues + 1 halt cycle at least; at most 9 or 10 taken
        // branches of 1 penalty cycle each.
        assert!(b.lower >= 33, "lower = {}", b.lower);
        assert_eq!(b.upper, Some(43), "32 issues + 10 flushes + 1");
    }

    #[test]
    fn block_weights_expand_to_member_pcs() {
        let counts = counts_from_block_weights(&[(0, 1), (2, 50)], 5);
        assert_eq!(counts[&0], 1);
        assert_eq!(counts[&1], 1);
        assert_eq!(counts[&2], 50);
        assert_eq!(counts[&4], 50);
    }
}
