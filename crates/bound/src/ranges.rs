//! Value-range analysis: per-GPR intervals and per-predicate constants.
//!
//! A forward analysis pairing an unsigned [`Interval`] per GPR with a
//! constant-propagation [`PredVal`] per predicate register. The machine
//! resets every register to zero, so the entry boundary is perfectly
//! known: all GPRs `[0,0]`, all predicates false (`p0` hard-wired true).
//! Transfer functions model the cheap, commonly bounding operations
//! (moves, literal materialisation, add/sub, zero-extends, masks) and
//! fall to `⊤` for everything else; compares against decidable intervals
//! produce predicate constants, which in turn let the analysis skip
//! instructions guarded by a known-false predicate.
//!
//! Interval lattices have tall ascending chains, so the analysis opts
//! into the solver's widening hook: once a node keeps changing, any
//! interval wider than a small cap blows to `⊤`, which bounds every
//! chain and terminates the fixpoint.

use crate::cfg::Cfg;
use crate::lattice::{Interval, Lattice, PredVal};
use crate::solver::{solve_forward, Analysis, Direction};
use epic_config::Config;
use epic_isa::{CmpCond, Dest, Instruction, Opcode, Operand, PredReg};

/// Interval width beyond which widening gives up on a still-changing
/// node. Loop-invariant facts stabilise before widening triggers; only
/// genuinely growing induction values are coarsened.
const WIDEN_WIDTH: u32 = 64;

/// Joint value state: one interval per GPR, one constant per predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Values {
    /// Per-GPR unsigned value interval.
    pub gprs: Vec<Interval>,
    /// Per-predicate constant fact.
    pub preds: Vec<PredVal>,
}

impl Values {
    /// The interval of a source operand under this state.
    #[must_use]
    pub fn operand(&self, op: Operand) -> Interval {
        match op {
            Operand::Gpr(r) => self
                .gprs
                .get(r.0 as usize)
                .copied()
                .unwrap_or_else(Interval::top),
            Operand::Lit(v) => Interval::constant(v as u32),
            _ => Interval::top(),
        }
    }

    /// The known truth value of a guard predicate (`p0` is always true).
    #[must_use]
    pub fn guard(&self, p: PredReg) -> PredVal {
        if p.0 == 0 {
            PredVal::True
        } else {
            self.preds
                .get(p.0 as usize)
                .copied()
                .unwrap_or(PredVal::Top)
        }
    }
}

impl Lattice for Values {
    fn join(&mut self, other: &Values) -> bool {
        let a = self.gprs.join(&other.gprs);
        let b = self.preds.join(&other.preds);
        a || b
    }
}

/// The value-range analysis over one configuration's register files.
pub struct ValueAnalysis {
    num_gprs: usize,
    num_preds: usize,
    /// Mutation hook: replace sound widening with an unsound narrowing
    /// (collapse to the lower end). Exists so the mutant corpus can
    /// prove the audit and the differential oracle catch it.
    pub(crate) narrow_instead_of_widen: bool,
}

impl ValueAnalysis {
    /// Builds the analysis for a configuration.
    #[must_use]
    pub fn new(config: &Config) -> ValueAnalysis {
        ValueAnalysis {
            num_gprs: config.num_gprs(),
            num_preds: config.num_pred_regs(),
            narrow_instead_of_widen: false,
        }
    }

    /// Builds the analysis priced by a [`CostModel`], inheriting its
    /// seeded mutation (if any) — this is how the mutant corpus drives
    /// the unsound-widening variant.
    #[must_use]
    pub fn with_model(config: &Config, model: &crate::cost::CostModel) -> ValueAnalysis {
        let mut analysis = ValueAnalysis::new(config);
        analysis.narrow_instead_of_widen = model.unsound_widening();
        analysis
    }

    /// Solves to fixpoint; index by bundle address for each bundle's
    /// input state (`None` = unreachable).
    #[must_use]
    pub fn solve(
        &self,
        cfg: &Cfg,
        bundles: &[Vec<Instruction>],
        entry: usize,
    ) -> Vec<Option<Values>> {
        solve_forward(self, cfg, bundles, entry)
    }
}

/// Decides a comparison between two intervals, if possible.
///
/// Signed conditions are only decided when both intervals sit in
/// `[0, i32::MAX]`, where signed and unsigned order coincide.
#[must_use]
pub fn compare_intervals(cond: CmpCond, a: Interval, b: Interval) -> PredVal {
    if a.is_bottom() || b.is_bottom() {
        return PredVal::Top;
    }
    let unsigned = |cond: CmpCond| match cond {
        CmpCond::Ltu => {
            if a.hi < b.lo {
                PredVal::True
            } else if a.lo >= b.hi {
                PredVal::False
            } else {
                PredVal::Top
            }
        }
        CmpCond::Leu => {
            if a.hi <= b.lo {
                PredVal::True
            } else if a.lo > b.hi {
                PredVal::False
            } else {
                PredVal::Top
            }
        }
        CmpCond::Gtu => {
            if a.lo > b.hi {
                PredVal::True
            } else if a.hi <= b.lo {
                PredVal::False
            } else {
                PredVal::Top
            }
        }
        CmpCond::Geu => {
            if a.lo >= b.hi {
                PredVal::True
            } else if a.hi < b.lo {
                PredVal::False
            } else {
                PredVal::Top
            }
        }
        _ => PredVal::Top,
    };
    match cond {
        CmpCond::Eq => {
            if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                PredVal::True
            } else if a.hi < b.lo || b.hi < a.lo {
                PredVal::False
            } else {
                PredVal::Top
            }
        }
        CmpCond::Ne => compare_intervals(CmpCond::Eq, a, b).not(),
        CmpCond::Ltu | CmpCond::Leu | CmpCond::Gtu | CmpCond::Geu => unsigned(cond),
        CmpCond::Lt | CmpCond::Le | CmpCond::Gt | CmpCond::Ge => {
            let non_negative = Interval {
                lo: 0,
                hi: i32::MAX as u32,
            };
            if non_negative.includes(&a) && non_negative.includes(&b) {
                let as_unsigned = match cond {
                    CmpCond::Lt => CmpCond::Ltu,
                    CmpCond::Le => CmpCond::Leu,
                    CmpCond::Gt => CmpCond::Gtu,
                    _ => CmpCond::Geu,
                };
                unsigned(as_unsigned)
            } else {
                PredVal::Top
            }
        }
    }
}

/// Abstract result of one value-producing instruction against the
/// bundle's input state.
fn eval(instr: &Instruction, state: &Values) -> Interval {
    let a = state.operand(instr.src1);
    let b = state.operand(instr.src2);
    match instr.opcode {
        Opcode::Move | Opcode::Movil => a,
        Opcode::Add => a.add(&b),
        Opcode::Sub => a.sub(&b),
        Opcode::MovPg => Interval { lo: 0, hi: 1 },
        Opcode::Zxtb => clamp_width(a, 0xFF),
        Opcode::Zxth => clamp_width(a, 0xFFFF),
        // `x & y ≤ min(x, y)` for unsigned values.
        Opcode::And if !a.is_bottom() && !b.is_bottom() => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        // A logical right shift never grows the value.
        Opcode::Shr if !a.is_bottom() => Interval { lo: 0, hi: a.hi },
        _ => Interval::top(),
    }
}

fn clamp_width(a: Interval, mask: u32) -> Interval {
    if !a.is_bottom() && a.hi <= mask {
        a
    } else {
        Interval { lo: 0, hi: mask }
    }
}

impl Analysis for ValueAnalysis {
    type State = Values;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Values {
        let mut preds = vec![PredVal::False; self.num_preds];
        if let Some(p0) = preds.get_mut(0) {
            *p0 = PredVal::True;
        }
        Values {
            gprs: vec![Interval::constant(0); self.num_gprs],
            preds,
        }
    }

    fn transfer(&self, _bi: usize, bundle: &[Instruction], state: &Values) -> Values {
        let mut out = state.clone();
        for instr in bundle {
            let guard = state.guard(instr.pred);
            if guard == PredVal::False {
                continue; // squashed: no architectural effect
            }
            // A guard that may be false makes every write a weak update.
            let strong = guard == PredVal::True;
            if let Some(r) = instr.gpr_write() {
                let value = eval(instr, state);
                if let Some(slot) = out.gprs.get_mut(r.0 as usize) {
                    if strong {
                        *slot = value;
                    } else {
                        slot.join(&value);
                    }
                }
            }
            let pred_result = match instr.opcode {
                Opcode::Cmp(cond) => Some(compare_intervals(
                    cond,
                    state.operand(instr.src1),
                    state.operand(instr.src2),
                )),
                Opcode::PredSet => Some(PredVal::True),
                Opcode::PredClr => Some(PredVal::False),
                Opcode::MovGp => {
                    let a = state.operand(instr.src1);
                    Some(if a.is_bottom() {
                        PredVal::Top
                    } else if !a.contains(0) {
                        PredVal::True
                    } else if a.lo == 0 && a.hi == 0 {
                        PredVal::False
                    } else {
                        PredVal::Top
                    })
                }
                _ => None,
            };
            if let Some(outcome) = pred_result {
                let write = |out: &mut Values, dest: Dest, v: PredVal| {
                    if let Dest::Pred(p) = dest {
                        if p.0 != 0 {
                            if let Some(slot) = out.preds.get_mut(p.0 as usize) {
                                if strong {
                                    *slot = v;
                                } else {
                                    slot.join(&v);
                                }
                            }
                        }
                    }
                };
                write(&mut out, instr.dest1, outcome);
                if let Opcode::Cmp(_) = instr.opcode {
                    write(&mut out, instr.dest2, outcome.not());
                }
            }
        }
        out
    }

    fn widen_after(&self) -> Option<u32> {
        Some(8)
    }

    fn widen(&self, state: &mut Values) {
        for interval in &mut state.gprs {
            if interval.is_bottom() {
                continue;
            }
            if self.narrow_instead_of_widen {
                // Deliberately unsound: drops values instead of adding
                // them. Only reachable through `Mutation::UnsoundWidening`.
                interval.hi = interval.lo;
            } else if interval.hi - interval.lo > WIDEN_WIDTH {
                *interval = Interval::top();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn solve(source: &str) -> (Cfg, Vec<Option<Values>>) {
        let config = Config::default();
        let program = assemble(source, &config).expect("assembles");
        let cfg = Cfg::build(&config, program.bundles());
        let analysis = ValueAnalysis::new(&config);
        let states = analysis.solve(&cfg, program.bundles(), program.entry() as usize);
        (cfg, states)
    }

    #[test]
    fn entry_state_is_all_zero_registers() {
        let (_, states) = solve("HALT\n;;\n");
        let entry = states[0].as_ref().expect("entry reachable");
        assert!(entry.gprs.iter().all(|i| *i == Interval::constant(0)));
        assert_eq!(entry.guard(PredReg(0)), PredVal::True);
        assert_eq!(entry.guard(PredReg(1)), PredVal::False);
    }

    #[test]
    fn constants_propagate_through_moves_and_adds() {
        let (cfg, states) = solve("MOVE r1, #7\n;;\nADD r2, r1, #3\n;;\nHALT\n;;\n");
        let halt = *cfg.halt_bundles().first().unwrap();
        let at_halt = states[halt].as_ref().expect("reachable");
        assert_eq!(at_halt.gprs[1], Interval::constant(7));
        assert_eq!(at_halt.gprs[2], Interval::constant(10));
    }

    #[test]
    fn decidable_compare_yields_predicate_constants() {
        let (cfg, states) =
            solve("MOVE r1, #7\n;;\nCMP_LT p1, p2, r1, #10\n;;\nMOVE r3, #99 (p2)\n;;\nHALT\n;;\n");
        let halt = *cfg.halt_bundles().first().unwrap();
        let at_halt = states[halt].as_ref().expect("reachable");
        assert_eq!(at_halt.guard(PredReg(1)), PredVal::True);
        assert_eq!(at_halt.guard(PredReg(2)), PredVal::False);
        // The p2-guarded move is squashed, so r3 keeps its reset value.
        assert_eq!(at_halt.gprs[3], Interval::constant(0));
    }

    #[test]
    fn loop_counter_widens_but_stays_sound() {
        // r1 counts 0..100; the fixpoint must terminate and keep an
        // interval containing every value the counter takes.
        let (cfg, states) = solve(
            "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\nCMP_LT p1, p0, r1, #100\n;;\n\
             BRCT b1 (p1)\n;;\nHALT\n;;\n",
        );
        let halt = *cfg.halt_bundles().first().unwrap();
        let at_halt = states[halt].as_ref().expect("reachable");
        for v in [1u32, 50, 100] {
            assert!(at_halt.gprs[1].contains(v), "{v} must stay in range");
        }
    }

    #[test]
    fn compare_decisions_respect_signedness() {
        use CmpCond::*;
        let small = Interval { lo: 0, hi: 5 };
        let big = Interval { lo: 10, hi: 20 };
        let negative = Interval {
            lo: 0x8000_0000,
            hi: 0x8000_0001,
        };
        assert_eq!(compare_intervals(Lt, small, big), PredVal::True);
        assert_eq!(compare_intervals(Geu, big, small), PredVal::True);
        assert_eq!(compare_intervals(Eq, small, big), PredVal::False);
        assert_eq!(compare_intervals(Ne, small, big), PredVal::True);
        assert_eq!(
            compare_intervals(Lt, negative, small),
            PredVal::Top,
            "signed order of a negative value is not decided"
        );
        assert_eq!(
            compare_intervals(Ltu, small, negative),
            PredVal::True,
            "unsigned order is decided directly"
        );
    }
}
