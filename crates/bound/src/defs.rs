//! Reaching definitions and predicate-aware definedness of GPRs.
//!
//! Two related forward analyses over the same solver:
//!
//! * [`ReachingDefs`] — the textbook analysis: for every bundle, which
//!   write sites (bundle address, slot) may have produced each GPR's
//!   current value. Small per-register site sets, capped to keep the
//!   lattice finite.
//! * [`Definedness`] — the condensation `epic-verify`'s VER013 needs,
//!   refined with guard predicates: per GPR a *may* bit (some path
//!   writes it) and a [`MustDef`] fact (on every path it is written
//!   unconditionally, written only under one guard, or possibly not at
//!   all). Sequential writes under the two complementary targets of one
//!   compare promote to `Always` — the if-conversion pattern
//!   (`CMP p1,p2,…; MOVE r (p1); MOVE r (p2)`) a path-insensitive
//!   analysis cannot see through.

use crate::cfg::Cfg;
use crate::lattice::{Lattice, MustDef};
use crate::solver::{solve_forward, Analysis, Direction};
use epic_config::Config;
use epic_isa::{Instruction, Opcode, PredReg, TRUE_PRED};

/// Cap on tracked write sites per register; larger sets widen to `Top`.
const MAX_SITES: usize = 8;

/// The write sites that may reach a point, for one GPR.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DefSites {
    /// No write reaches (the register still holds its reset value).
    #[default]
    None,
    /// Exactly these `(bundle, slot)` sites may reach.
    Sites(Vec<(u32, u32)>),
    /// Too many sites to track.
    Top,
}

impl Lattice for DefSites {
    fn join(&mut self, other: &DefSites) -> bool {
        match (&mut *self, other) {
            (_, DefSites::None) => false,
            (DefSites::Top, _) => false,
            (slot @ DefSites::None, _) => {
                *slot = other.clone();
                true
            }
            (slot @ DefSites::Sites(_), DefSites::Top) => {
                *slot = DefSites::Top;
                true
            }
            (DefSites::Sites(mine), DefSites::Sites(theirs)) => {
                let mut changed = false;
                for site in theirs {
                    if !mine.contains(site) {
                        mine.push(*site);
                        changed = true;
                    }
                }
                if mine.len() > MAX_SITES {
                    *self = DefSites::Top;
                    return true;
                }
                if changed {
                    mine.sort_unstable();
                }
                changed
            }
        }
    }
}

/// Per-bundle state of [`ReachingDefs`]: one [`DefSites`] per GPR.
pub type ReachingState = Vec<DefSites>;

/// The classic reaching-definitions analysis over GPRs.
pub struct ReachingDefs {
    num_gprs: usize,
}

impl Analysis for ReachingDefs {
    type State = ReachingState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> ReachingState {
        vec![DefSites::None; self.num_gprs]
    }

    fn transfer(&self, bi: usize, bundle: &[Instruction], state: &ReachingState) -> ReachingState {
        let mut out = state.clone();
        for (slot, instr) in bundle.iter().enumerate() {
            if let Some(r) = instr.gpr_write() {
                if let Some(sites) = out.get_mut(r.0 as usize) {
                    let site = (bi as u32, slot as u32);
                    if instr.pred == TRUE_PRED {
                        // An unconditional write kills everything before.
                        *sites = DefSites::Sites(vec![site]);
                    } else {
                        // A guarded write may or may not land: add it.
                        sites.join(&DefSites::Sites(vec![site]));
                    }
                }
            }
        }
        out
    }
}

impl ReachingDefs {
    /// Solves reaching definitions; index result by bundle address for
    /// each bundle's *input* state (`None` = unreachable).
    #[must_use]
    pub fn solve(
        config: &Config,
        cfg: &Cfg,
        bundles: &[Vec<Instruction>],
        entry: usize,
    ) -> Vec<Option<ReachingState>> {
        let analysis = ReachingDefs {
            num_gprs: config.num_gprs(),
        };
        solve_forward(&analysis, cfg, bundles, entry)
    }
}

/// Per-GPR definedness facts at one bundle's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GprDefs {
    /// Some path from the entry writes the register.
    pub may: Vec<bool>,
    /// Guard-refined must-definedness.
    pub must: Vec<MustDef>,
}

impl Lattice for GprDefs {
    fn join(&mut self, other: &GprDefs) -> bool {
        let a = self.may.join(&other.may);
        let b = self.must.join(&other.must);
        a || b
    }
}

/// Predicate-aware GPR definedness (the VER013 engine).
pub struct Definedness {
    num_gprs: usize,
    /// `complement[p] = Some(q)` when predicates `p` and `q` are each
    /// written by exactly one instruction program-wide: the two targets
    /// of one compare. Their guards then cover all outcomes.
    complement: Vec<Option<PredReg>>,
}

impl Definedness {
    /// Builds the analysis, scanning the program once for complementary
    /// compare targets.
    #[must_use]
    pub fn new(config: &Config, bundles: &[Vec<Instruction>]) -> Definedness {
        let num_preds = config.num_pred_regs();
        let mut write_count = vec![0usize; num_preds];
        let mut pair: Vec<Option<PredReg>> = vec![None; num_preds];
        for bundle in bundles {
            for instr in bundle {
                for p in instr.pred_writes() {
                    if p.0 != 0 {
                        if let Some(count) = write_count.get_mut(p.0 as usize) {
                            *count += 1;
                        }
                    }
                }
                if let Opcode::Cmp(_) = instr.opcode {
                    if let (epic_isa::Dest::Pred(t), epic_isa::Dest::Pred(f)) =
                        (instr.dest1, instr.dest2)
                    {
                        if t.0 != 0 && f.0 != 0 && t != f {
                            if let Some(slot) = pair.get_mut(t.0 as usize) {
                                *slot = Some(f);
                            }
                            if let Some(slot) = pair.get_mut(f.0 as usize) {
                                *slot = Some(t);
                            }
                        }
                    }
                }
            }
        }
        // The complement relation is only sound when both predicates
        // have a single (shared) producer: otherwise `p` and `q` may
        // hold values from different executions.
        let complement = pair
            .iter()
            .enumerate()
            .map(|(p, q)| {
                q.filter(|q| write_count[p] == 1 && write_count.get(q.0 as usize) == Some(&1))
            })
            .collect();
        Definedness {
            num_gprs: config.num_gprs(),
            complement,
        }
    }

    /// Solves definedness; index by bundle address for each bundle's
    /// input facts (`None` = unreachable).
    #[must_use]
    pub fn solve(
        &self,
        cfg: &Cfg,
        bundles: &[Vec<Instruction>],
        entry: usize,
    ) -> Vec<Option<GprDefs>> {
        solve_forward(self, cfg, bundles, entry)
    }

    fn complement_of(&self, p: PredReg) -> Option<PredReg> {
        self.complement.get(p.0 as usize).copied().flatten()
    }
}

impl Analysis for Definedness {
    type State = GprDefs;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> GprDefs {
        GprDefs {
            may: vec![false; self.num_gprs],
            must: vec![MustDef::No; self.num_gprs],
        }
    }

    fn transfer(&self, _bi: usize, bundle: &[Instruction], state: &GprDefs) -> GprDefs {
        let mut out = state.clone();
        for instr in bundle {
            let Some(r) = instr.gpr_write() else {
                continue;
            };
            let Some(may) = out.may.get_mut(r.0 as usize) else {
                continue;
            };
            *may = true;
            let must = &mut out.must[r.0 as usize];
            if instr.pred == TRUE_PRED {
                *must = MustDef::Always;
            } else {
                *must = match *must {
                    MustDef::Always => MustDef::Always,
                    MustDef::Under(p) if p == instr.pred => MustDef::Under(p),
                    // Earlier write under `p`, this one under its
                    // complement: together they always fire.
                    MustDef::Under(p) if self.complement_of(p) == Some(instr.pred) => {
                        MustDef::Always
                    }
                    // A write under an unrelated guard cannot weaken an
                    // existing guarantee; keep the stronger fact.
                    MustDef::Under(p) => MustDef::Under(p),
                    MustDef::No => MustDef::Under(instr.pred),
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn defs_at_halt(source: &str) -> GprDefs {
        let config = Config::default();
        let program = assemble(source, &config).expect("assembles");
        let cfg = Cfg::build(&config, program.bundles());
        let analysis = Definedness::new(&config, program.bundles());
        let states = analysis.solve(&cfg, program.bundles(), program.entry() as usize);
        let halt = *cfg.halt_bundles().first().expect("program halts");
        states[halt].clone().expect("halt reachable")
    }

    #[test]
    fn unconditional_write_is_always_defined() {
        let d = defs_at_halt("MOVE r1, #1\n;;\nHALT\n;;\n");
        assert!(d.may[1]);
        assert_eq!(d.must[1], MustDef::Always);
        assert!(!d.may[2]);
        assert_eq!(d.must[2], MustDef::No);
    }

    #[test]
    fn guarded_write_is_defined_only_under_its_guard() {
        let d = defs_at_halt("CMP_LT p1, p2, r0, #1\n;;\nMOVE r1, #1 (p1)\n;;\nHALT\n;;\n");
        assert!(d.may[1]);
        assert_eq!(d.must[1], MustDef::Under(PredReg(1)));
    }

    #[test]
    fn complementary_guards_promote_to_always() {
        let d = defs_at_halt(
            "CMP_LT p1, p2, r0, #1\n;;\nMOVE r1, #1 (p1)\n;;\nMOVE r1, #2 (p2)\n;;\nHALT\n;;\n",
        );
        assert_eq!(d.must[1], MustDef::Always, "if-conversion covers both arms");
    }

    #[test]
    fn reused_predicates_disable_complement_promotion() {
        // p1/p2 are written twice: the second compare may have replaced
        // one half, so the two guarded writes need not cover all paths.
        let d = defs_at_halt(
            "CMP_LT p1, p2, r0, #1\n;;\nCMP_LT p1, p2, r0, #2\n;;\n\
             MOVE r1, #1 (p1)\n;;\nMOVE r1, #2 (p2)\n;;\nHALT\n;;\n",
        );
        assert_eq!(d.must[1], MustDef::Under(PredReg(1)));
    }

    #[test]
    fn reaching_defs_tracks_kill_and_merge() {
        let config = Config::default();
        let program = assemble(
            "MOVE r1, #1\n;;\nMOVE r1, #2\n;;\nMOVE r2, #3 (p1)\n;;\nHALT\n;;\n",
            &config,
        )
        .expect("assembles");
        let cfg = Cfg::build(&config, program.bundles());
        let states = ReachingDefs::solve(&config, &cfg, program.bundles(), 0);
        let at_halt = states[3].as_ref().expect("reachable");
        assert_eq!(
            at_halt[1],
            DefSites::Sites(vec![(1, 0)]),
            "second write killed the first"
        );
        assert_eq!(
            at_halt[2],
            DefSites::Sites(vec![(2, 0)]),
            "guarded write reaches without killing"
        );
        assert_eq!(at_halt[3], DefSites::None);
    }
}
