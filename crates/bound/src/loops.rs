//! Loop detection and static trip-count bounds.
//!
//! Strongly connected components of the bundle CFG are the loops; for
//! each the analysis tries to prove a *trip bound*: the maximum number
//! of times the loop body can execute per entry. The provable shape is
//! the counted loop every scheduler emits — a single induction register
//! stepped by an unguarded `ADD r, r, #c`, compared once against a
//! literal, steering the single back-edge branch — with conservative
//! slack for in-bundle operand staleness. Anything fancier (nested
//! loops, data-dependent exits, decreasing counters) stays unbounded,
//! which the cycle analysis reports as an open upper interval unless the
//! caller supplies an assumed bound.
//!
//! [`LoopAnalysis::static_counts`] folds trip bounds over the SCC
//! condensation in topological order into a per-bundle *execution count
//! upper bound*, the multiplier the static cycle analysis needs.

use crate::cfg::Cfg;
use crate::lattice::Interval;
use crate::ranges::{ValueAnalysis, Values};
use crate::solver::Analysis;
use epic_config::Config;
use epic_isa::{CmpCond, Dest, Gpr, Instruction, Opcode, Operand, PredReg, TRUE_PRED};

/// One natural loop (nontrivial SCC) and what the analysis proved.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// The single external-entry bundle, when one exists.
    pub header: usize,
    /// The bundle sourcing the back edge to the header.
    pub back_edge_source: usize,
    /// All bundle addresses in the SCC, sorted.
    pub body: Vec<usize>,
    /// Maximum body executions per loop entry, when provable.
    pub trips: Option<u64>,
    /// Why `trips` is `None`, or `"counted"` when it is not.
    pub reason: &'static str,
}

/// The program's loop structure with per-bundle execution-count bounds.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// One summary per nontrivial SCC.
    pub loops: Vec<LoopSummary>,
    scc_of: Vec<usize>,
    sccs: Vec<Vec<usize>>,
    nontrivial: Vec<bool>,
    loop_of_scc: Vec<Option<usize>>,
}

impl LoopAnalysis {
    /// Finds loops and attempts a trip bound for each, using the solved
    /// value ranges to bound induction start values.
    #[must_use]
    pub fn analyze(
        _config: &Config,
        cfg: &Cfg,
        bundles: &[Vec<Instruction>],
        entry: usize,
        values: &[Option<Values>],
        value_analysis: &ValueAnalysis,
    ) -> LoopAnalysis {
        let (scc_of, sccs) = strongly_connected_components(cfg);
        let mut nontrivial = vec![false; sccs.len()];
        for (id, members) in sccs.iter().enumerate() {
            nontrivial[id] = members.len() > 1
                || members
                    .iter()
                    .any(|&n| cfg.succs(n).iter().any(|e| e.to == n));
        }
        let mut loops = Vec::new();
        let mut loop_of_scc = vec![None; sccs.len()];
        for (id, members) in sccs.iter().enumerate() {
            if !nontrivial[id] {
                continue;
            }
            let summary = summarize_loop(
                cfg,
                bundles,
                entry,
                members,
                &scc_of,
                id,
                values,
                value_analysis,
            );
            loop_of_scc[id] = Some(loops.len());
            loops.push(summary);
        }
        LoopAnalysis {
            loops,
            scc_of,
            sccs,
            nontrivial,
            loop_of_scc,
        }
    }

    /// The loop summary owning a bundle, if the bundle is in one.
    #[must_use]
    pub fn loop_of(&self, bi: usize) -> Option<&LoopSummary> {
        self.loop_of_scc
            .get(self.scc_of.get(bi).copied()?)
            .copied()
            .flatten()
            .map(|ix| &self.loops[ix])
    }

    /// Upper bound on each bundle's execution count over a whole run
    /// (`None` = unbounded). Loops without a proven trip bound use
    /// `assume_trips` body executions per entry when supplied.
    #[must_use]
    pub fn static_counts(
        &self,
        cfg: &Cfg,
        entry: usize,
        assume_trips: Option<u64>,
    ) -> Vec<Option<u64>> {
        let n = cfg.len();
        let mut counts: Vec<Option<u64>> = vec![Some(0); n];
        if entry >= n {
            return counts;
        }
        let num_sccs = self.sccs.len();
        // Kahn's algorithm over the condensation multigraph.
        let mut indegree = vec![0usize; num_sccs];
        for u in 0..n {
            for e in cfg.succs(u) {
                if self.scc_of[u] != self.scc_of[e.to] {
                    indegree[self.scc_of[e.to]] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..num_sccs).filter(|&s| indegree[s] == 0).collect();
        let mut topo = Vec::with_capacity(num_sccs);
        while let Some(s) = ready.pop() {
            topo.push(s);
            for &u in &self.sccs[s] {
                for e in cfg.succs(u) {
                    let t = self.scc_of[e.to];
                    if t != s {
                        indegree[t] -= 1;
                        if indegree[t] == 0 {
                            ready.push(t);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(topo.len(), num_sccs, "condensation is a DAG");

        let mut enter_of: Vec<Option<u64>> = vec![Some(0); num_sccs];
        for &s in &topo {
            // Entries into the SCC: one per crossing-edge traversal,
            // plus one when the program entry starts inside it. An edge
            // leaving a loop is traversed at most once per loop *entry*
            // (control must re-enter between traversals), so a
            // predecessor inside a loop contributes its SCC's entry
            // count, not its own execution count.
            let mut enter: Option<u64> = Some(u64::from(self.scc_of[entry] == s));
            for &v in &self.sccs[s] {
                for pe in cfg.preds(v) {
                    let u = pe.to;
                    if self.scc_of[u] != s {
                        let traversals = if self.nontrivial[self.scc_of[u]] {
                            enter_of[self.scc_of[u]]
                        } else {
                            counts[u]
                        };
                        enter = match (enter, traversals) {
                            (Some(a), Some(b)) => Some(a.saturating_add(b)),
                            _ => None,
                        };
                    }
                }
            }
            enter_of[s] = enter;
            let per_member = if !self.nontrivial[s] {
                enter
            } else if enter == Some(0) {
                Some(0) // statically unreachable loop
            } else {
                let trips = self.loop_of_scc[s]
                    .and_then(|ix| self.loops[ix].trips)
                    .or(assume_trips);
                match (enter, trips) {
                    (Some(e), Some(t)) => Some(e.saturating_mul(t)),
                    _ => None,
                }
            };
            for &v in &self.sccs[s] {
                counts[v] = per_member;
            }
        }
        // Statically unreachable bundles never execute.
        let reachable = cfg.reachable_from(entry);
        for (bi, r) in reachable.iter().enumerate() {
            if !r {
                counts[bi] = Some(0);
            }
        }
        counts
    }
}

/// Kosaraju's algorithm: `(scc_of, sccs)` over every bundle.
fn strongly_connected_components(cfg: &Cfg) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = cfg.len();
    // Pass 1: forward DFS finishing order (iterative, post-order).
    let mut finish = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        seen[start] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(edge) = cfg.succs(node).get(*next) {
                *next += 1;
                if !seen[edge.to] {
                    seen[edge.to] = true;
                    stack.push((edge.to, 0));
                }
            } else {
                finish.push(node);
                stack.pop();
            }
        }
    }
    // Pass 2: DFS on the transpose in reverse finishing order.
    let mut scc_of = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &root in finish.iter().rev() {
        if scc_of[root] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = vec![root];
        scc_of[root] = id;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for edge in cfg.preds(node) {
                if scc_of[edge.to] == usize::MAX {
                    scc_of[edge.to] = id;
                    members.push(edge.to);
                    stack.push(edge.to);
                }
            }
        }
        members.sort_unstable();
        sccs.push(members);
    }
    (scc_of, sccs)
}

/// The loop-continuing branch condition: predicate and required sense.
struct Continue {
    pred: PredReg,
    sense: bool,
}

#[allow(clippy::too_many_arguments)]
fn summarize_loop(
    cfg: &Cfg,
    bundles: &[Vec<Instruction>],
    entry: usize,
    members: &[usize],
    scc_of: &[usize],
    scc_id: usize,
    values: &[Option<Values>],
    value_analysis: &ValueAnalysis,
) -> LoopSummary {
    let in_scc = |n: usize| scc_of[n] == scc_id;
    let give_up = |header: usize, source: usize, reason: &'static str| LoopSummary {
        header,
        back_edge_source: source,
        body: members.to_vec(),
        trips: None,
        reason,
    };

    // A single header: the only bundle entered from outside the SCC.
    let headers: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&v| v == entry || cfg.preds(v).iter().any(|e| !in_scc(e.to)))
        .collect();
    let &[header] = headers.as_slice() else {
        return give_up(members[0], members[0], "multiple loop entries");
    };
    // A single back edge into the header.
    let sources: Vec<usize> = cfg
        .preds(header)
        .iter()
        .filter(|e| in_scc(e.to))
        .map(|e| e.to)
        .collect();
    let &[tail] = sources.as_slice() else {
        return give_up(header, header, "multiple back edges");
    };
    let back_edges: Vec<_> = cfg.succs(tail).iter().filter(|e| e.to == header).collect();
    let &[back_edge] = back_edges.as_slice() else {
        return give_up(header, tail, "ambiguous back edge");
    };
    if cfg
        .succs(tail)
        .iter()
        .any(|e| in_scc(e.to) && e.to != header)
    {
        return give_up(header, tail, "tail re-enters the body");
    }
    // The body minus the back edge must be a DAG (no inner loops).
    if !acyclic_without_back_edge(cfg, members, &in_scc, tail, header) {
        return give_up(header, tail, "nested loop");
    }

    // The single branch in the tail decides continuation.
    let branches: Vec<&Instruction> = bundles[tail]
        .iter()
        .filter(|i| {
            matches!(
                i.opcode,
                Opcode::Br | Opcode::Brl | Opcode::Brct | Opcode::Brcf
            )
        })
        .collect();
    let cont = if back_edge.delta == cfg.branch_delta() {
        // Loop continues when the branch is taken.
        let &[branch] = branches.as_slice() else {
            return give_up(header, tail, "tail has no unique branch");
        };
        match branch.opcode {
            Opcode::Brct | Opcode::Br | Opcode::Brl if branch.pred != TRUE_PRED => Continue {
                pred: branch.pred,
                sense: true,
            },
            Opcode::Brcf => Continue {
                pred: branch.pred,
                sense: false,
            },
            _ => return give_up(header, tail, "unconditional back branch"),
        }
    } else {
        // Fall-through back edge: continues when the exit branch is
        // *not* taken; all its targets must leave the SCC.
        let &[branch] = branches.as_slice() else {
            return give_up(header, tail, "no exit branch at the tail");
        };
        match branch.opcode {
            Opcode::Brct | Opcode::Br | Opcode::Brl if branch.pred != TRUE_PRED => Continue {
                pred: branch.pred,
                sense: false,
            },
            Opcode::Brcf => Continue {
                pred: branch.pred,
                sense: true,
            },
            _ => return give_up(header, tail, "unconditional exit branch"),
        }
    };

    // The continuing predicate must be produced by exactly one compare
    // in the body, unguarded, against a literal.
    let mut cmp_site: Option<(usize, &Instruction)> = None;
    for &bi in members {
        for instr in &bundles[bi] {
            if instr.pred_writes().contains(&cont.pred) {
                if cmp_site.is_some() {
                    return give_up(header, tail, "condition written more than once");
                }
                cmp_site = Some((bi, instr));
            }
        }
    }
    let Some((cmp_bi, cmp)) = cmp_site else {
        return give_up(header, tail, "condition not written in the body");
    };
    let Opcode::Cmp(mut cond) = cmp.opcode else {
        return give_up(header, tail, "condition not a compare");
    };
    if cmp.pred != TRUE_PRED {
        return give_up(header, tail, "guarded compare");
    }
    // Outcome sense: `dest2` holds the complement.
    let mut want = cont.sense;
    if cmp.dest2 == Dest::Pred(cont.pred) {
        want = !want;
    } else if cmp.dest1 != Dest::Pred(cont.pred) {
        return give_up(header, tail, "condition not a compare target");
    }
    // Normalise to `continue while r <cond> #K`.
    let (mut ind, mut bound) = (cmp.src1, cmp.src2);
    if matches!(ind, Operand::Lit(_)) {
        cond = cond.swap_operands();
        std::mem::swap(&mut ind, &mut bound);
    }
    let (Operand::Gpr(r), Operand::Lit(k)) = (ind, bound) else {
        return give_up(header, tail, "compare not register-vs-literal");
    };
    if !want {
        cond = cond.negate();
    }

    // The induction register: stepped by exactly one unguarded
    // `ADD r, r, #c` (c > 0) in the body.
    let mut add_site: Option<(usize, u64)> = None;
    for &bi in members {
        for instr in &bundles[bi] {
            if instr.gpr_write() != Some(r) {
                continue;
            }
            if add_site.is_some() {
                return give_up(header, tail, "induction written more than once");
            }
            let step = induction_step(instr, r);
            match step {
                Some(c) => add_site = Some((bi, c)),
                None => return give_up(header, tail, "induction step not ADD r, r, #c"),
            }
        }
    }
    let Some((add_bi, step)) = add_site else {
        return give_up(header, tail, "no induction step");
    };

    // Both the step and the compare must execute every iteration.
    for site in [add_bi, cmp_bi] {
        if !on_every_path(cfg, &in_scc, tail, header, site) {
            return give_up(header, tail, "step or compare is conditional");
        }
    }
    // A compare sharing the tail bundle is read one iteration late; the
    // very first back branch may also consume a stale entry predicate.
    let slack: u64 = if cmp_bi == tail { 2 } else { 1 };

    // Entry value of the induction register: join over all edges into
    // the header from outside the SCC.
    let mut start = Interval::bottom();
    if header == entry {
        start.lo = 0;
        start.hi = 0;
    }
    for pe in cfg.preds(header) {
        let u = pe.to;
        if in_scc(u) {
            continue;
        }
        let Some(flow) = values.get(u).and_then(|v| v.as_ref()) else {
            continue; // unreachable predecessor contributes nothing
        };
        let out = value_analysis.transfer(u, &bundles[u], flow);
        let interval = out
            .gprs
            .get(r.0 as usize)
            .copied()
            .unwrap_or_else(Interval::top);
        crate::lattice::Lattice::join(&mut start, &interval);
    }
    if start.is_bottom() {
        return give_up(header, tail, "loop entry value unknown");
    }

    let Some(trips) = trip_bound(cond, u64::from(start.lo), start.hi, k, step, slack) else {
        return give_up(header, tail, "condition shape not counted");
    };
    LoopSummary {
        header,
        back_edge_source: tail,
        body: members.to_vec(),
        trips: Some(trips),
        reason: "counted",
    }
}

/// The positive literal step of `ADD r, r, #c` / `ADD r, #c, r`.
fn induction_step(instr: &Instruction, r: Gpr) -> Option<u64> {
    if instr.opcode != Opcode::Add || instr.pred != TRUE_PRED {
        return None;
    }
    let c = match (instr.src1, instr.src2) {
        (Operand::Gpr(a), Operand::Lit(c)) if a == r => c,
        (Operand::Lit(c), Operand::Gpr(a)) if a == r => c,
        _ => return None,
    };
    u64::try_from(c).ok().filter(|&c| c > 0)
}

/// Closed-form trip bound for `continue while r <cond> #k`, stepping by
/// `c` from at worst `start_lo`, with `slack` extra iterations for
/// stale-operand reads. `None` when the shape or ranges defeat the
/// wrap-around and signedness guards.
pub(crate) fn trip_bound(
    cond: CmpCond,
    start_lo: u64,
    start_hi: u32,
    k: i64,
    c: u64,
    slack: u64,
) -> Option<u64> {
    // Exclusive bound `B`: continue while `r < B` in the condition's
    // number domain.
    match cond {
        CmpCond::Lt | CmpCond::Le => {
            // Signed compare: decide only while every value the counter
            // takes stays in [0, i32::MAX], where signed and unsigned
            // orders agree and no wrap can occur.
            if start_hi > i32::MAX as u32 {
                return None;
            }
            let b = if cond == CmpCond::Lt {
                k
            } else {
                k.checked_add(1)?
            };
            if b <= 0 {
                return Some(1 + slack); // first test already fails
            }
            let b = b as u64;
            if b - 1 + c > i32::MAX as u64 {
                return None; // counter could leave signed-positive range
            }
            let steps = b.saturating_sub(start_lo).div_ceil(c);
            Some(steps.saturating_add(1).saturating_add(slack))
        }
        CmpCond::Ltu | CmpCond::Leu => {
            if k < 0 || k > i64::from(u32::MAX) {
                return None;
            }
            let b = k as u64 + u64::from(cond == CmpCond::Leu);
            if b == 0 {
                return Some(1 + slack);
            }
            if b - 1 + c > u64::from(u32::MAX) {
                return None; // unsigned wrap possible
            }
            let steps = b.saturating_sub(start_lo).div_ceil(c);
            Some(steps.saturating_add(1).saturating_add(slack))
        }
        _ => None,
    }
}

/// Whether the SCC minus the `tail → header` back edge is acyclic.
fn acyclic_without_back_edge(
    cfg: &Cfg,
    members: &[usize],
    in_scc: &impl Fn(usize) -> bool,
    tail: usize,
    header: usize,
) -> bool {
    let mut indegree: std::collections::BTreeMap<usize, usize> =
        members.iter().map(|&m| (m, 0)).collect();
    let body_edges = |u: usize| {
        cfg.succs(u)
            .iter()
            .filter(move |e| in_scc(e.to) && !(u == tail && e.to == header))
    };
    for &u in members {
        for e in body_edges(u) {
            *indegree.get_mut(&e.to).expect("member") += 1;
        }
    }
    let mut ready: Vec<usize> = members
        .iter()
        .copied()
        .filter(|m| indegree[m] == 0)
        .collect();
    let mut processed = 0;
    while let Some(u) = ready.pop() {
        processed += 1;
        for e in body_edges(u) {
            let d = indegree.get_mut(&e.to).expect("member");
            *d -= 1;
            if *d == 0 {
                ready.push(e.to);
            }
        }
    }
    processed == members.len()
}

/// Whether every `header → tail` path inside the body (back edge
/// removed) passes through `site`.
fn on_every_path(
    cfg: &Cfg,
    in_scc: &impl Fn(usize) -> bool,
    tail: usize,
    header: usize,
    site: usize,
) -> bool {
    if site == header || site == tail {
        return true;
    }
    // Reachable header → tail while avoiding `site`?
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![header];
    seen.insert(header);
    while let Some(u) = stack.pop() {
        if u == tail {
            return false;
        }
        for e in cfg.succs(u) {
            if in_scc(e.to) && !(u == tail && e.to == header) && e.to != site && seen.insert(e.to) {
                stack.push(e.to);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn analyze(source: &str) -> (Cfg, LoopAnalysis, usize) {
        let config = Config::default();
        let program = assemble(source, &config).expect("assembles");
        let cfg = Cfg::build(&config, program.bundles());
        let entry = program.entry() as usize;
        let va = ValueAnalysis::new(&config);
        let values = va.solve(&cfg, program.bundles(), entry);
        let la = LoopAnalysis::analyze(&config, &cfg, program.bundles(), entry, &values, &va);
        (cfg, la, entry)
    }

    const COUNTED: &str = "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\n\
                           CMP_LT p1, p0, r1, #10\n;;\nBRCT b1 (p1)\n;;\nHALT\n;;\n";

    #[test]
    fn counted_loop_gets_a_trip_bound() {
        let (cfg, la, entry) = analyze(COUNTED);
        assert_eq!(la.loops.len(), 1);
        let l = &la.loops[0];
        assert_eq!((l.header, l.back_edge_source), (1, 3));
        // 10 comparisons stepping by 1 from 0, +1 final, +1 slack.
        assert_eq!(l.trips, Some(12), "{}", l.reason);
        let counts = la.static_counts(&cfg, entry, None);
        assert_eq!(counts[0], Some(1));
        assert_eq!(counts[2], Some(12));
        assert_eq!(counts[4], Some(1), "exit bundle runs once");
    }

    #[test]
    fn trip_bound_is_a_true_upper_bound() {
        // The loop executes its body exactly 10 times (r1 = 1..=10).
        let (_, la, _) = analyze(COUNTED);
        assert!(la.loops[0].trips.unwrap() >= 10);
    }

    #[test]
    fn data_dependent_loop_stays_unbounded() {
        let (cfg, la, entry) = analyze(
            "PBR b1, @loop\n;;\nloop:\nLW r1, r2, #0\n;;\nCMP_EQ p1, p0, r1, #0\n;;\n\
             BRCT b1 (p1)\n;;\nHALT\n;;\n",
        );
        assert_eq!(la.loops.len(), 1);
        assert_eq!(la.loops[0].trips, None);
        let counts = la.static_counts(&cfg, entry, None);
        assert_eq!(counts[2], None, "unbounded body");
        let assumed = la.static_counts(&cfg, entry, Some(100));
        assert_eq!(assumed[2], Some(100), "assumed trips bound the body");
    }

    #[test]
    fn nested_loops_are_detected_and_refused() {
        let (_, la, _) = analyze(
            "PBR b1, @outer\n;;\nPBR b2, @inner\n;;\nouter:\nADD r1, r1, #1\n;;\n\
             inner:\nADD r2, r2, #1\n;;\nCMP_LT p2, p0, r2, #4\n;;\nBRCT b2 (p2)\n;;\n\
             CMP_LT p1, p0, r1, #4\n;;\nBRCT b1 (p1)\n;;\nHALT\n;;\n",
        );
        assert_eq!(la.loops.len(), 1, "nest collapses into one SCC");
        assert_eq!(la.loops[0].trips, None);
        assert_eq!(la.loops[0].reason, "nested loop");
    }

    #[test]
    fn straight_line_counts_are_all_one() {
        let (cfg, la, entry) = analyze("MOVE r1, #1\n;;\nADD r2, r1, #1\n;;\nHALT\n;;\n");
        assert!(la.loops.is_empty());
        let counts = la.static_counts(&cfg, entry, None);
        assert_eq!(counts, vec![Some(1); 3]);
    }
}
