//! Join-semilattice building blocks for the dataflow analyses.
//!
//! Every analysis state is a [`Lattice`]: a partial order with a least
//! upper bound, expressed operationally as an in-place [`Lattice::join`]
//! that reports whether anything changed (the fixpoint solver's
//! termination signal). The concrete lattices here are the small, finite
//! (or finite-height-after-widening) domains the machine-IR analyses
//! need: may-flags, guarded definedness, predicate constants and value
//! intervals.

use epic_isa::PredReg;

/// A join-semilattice: `join` computes the least upper bound in place
/// and reports whether `self` changed (false once a fixpoint is
/// reached).
pub trait Lattice {
    /// Joins `other` into `self`; returns whether `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// `bool` as the two-point may-lattice: `false ⊑ true`.
impl Lattice for bool {
    fn join(&mut self, other: &bool) -> bool {
        if *other && !*self {
            *self = true;
            true
        } else {
            false
        }
    }
}

/// Pointwise product lattice over a fixed-length vector.
impl<L: Lattice> Lattice for Vec<L> {
    fn join(&mut self, other: &Vec<L>) -> bool {
        let mut changed = false;
        for (dst, src) in self.iter_mut().zip(other) {
            changed |= dst.join(src);
        }
        changed
    }
}

/// Must-definedness of one GPR, refined by guard predicates.
///
/// `Always ⊑ Under(p) ⊑ No` (more definedness is lower): on every path
/// from the entry the register is written unconditionally (`Always`),
/// written only under guard `p` (`Under(p)`), or there is some path with
/// no write at all (`No`). Joining two different guards falls to `No` —
/// the analysis cannot name a single guard that covers both paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MustDef {
    /// Written on every path, unconditionally (or under complementary
    /// guards of one compare, which together always fire).
    Always,
    /// Written on every path, but only by instructions guarded by this
    /// predicate.
    Under(PredReg),
    /// Some path reaches here without writing the register.
    No,
}

impl Lattice for MustDef {
    fn join(&mut self, other: &MustDef) -> bool {
        let joined = match (*self, *other) {
            (MustDef::Always, MustDef::Always) => MustDef::Always,
            (MustDef::Always, MustDef::Under(p)) | (MustDef::Under(p), MustDef::Always) => {
                // One path always writes, the other writes under `p`:
                // together the write is only guaranteed under `p`.
                MustDef::Under(p)
            }
            (MustDef::Under(p), MustDef::Under(q)) if p == q => MustDef::Under(p),
            _ => MustDef::No,
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

/// Constant-propagation lattice for one predicate register.
///
/// `Bottom` (no path reached yet) ⊑ `True`/`False` ⊑ `Top` (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredVal {
    /// No path has produced a value yet.
    #[default]
    Bottom,
    /// Known true on every path.
    True,
    /// Known false on every path.
    False,
    /// May be either.
    Top,
}

impl PredVal {
    /// A known boolean, if the predicate has one on every path.
    #[must_use]
    pub fn known(self) -> Option<bool> {
        match self {
            PredVal::True => Some(true),
            PredVal::False => Some(false),
            _ => None,
        }
    }

    /// Lifts a concrete boolean.
    #[must_use]
    pub fn from_bool(value: bool) -> PredVal {
        if value {
            PredVal::True
        } else {
            PredVal::False
        }
    }

    /// The negated value. Not `std::ops::Not`: unknown stays unknown, so
    /// this is deliberately an inherent method, not the operator.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PredVal {
        match self {
            PredVal::True => PredVal::False,
            PredVal::False => PredVal::True,
            other => other,
        }
    }
}

impl Lattice for PredVal {
    fn join(&mut self, other: &PredVal) -> bool {
        let joined = match (*self, *other) {
            (PredVal::Bottom, v) | (v, PredVal::Bottom) => v,
            (a, b) if a == b => a,
            _ => PredVal::Top,
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

/// An unsigned 32-bit value interval `[lo, hi]` (the datapath's natural
/// domain; signed facts are derived where both ends stay below
/// `i32::MAX`). `Interval::bottom()` is the empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u32,
    /// Inclusive upper bound.
    pub hi: u32,
}

impl Interval {
    /// The empty interval (identity of join).
    #[must_use]
    pub fn bottom() -> Interval {
        Interval {
            lo: u32::MAX,
            hi: 0,
        }
    }

    /// The full interval (no information).
    #[must_use]
    pub fn top() -> Interval {
        Interval {
            lo: 0,
            hi: u32::MAX,
        }
    }

    /// A single value.
    #[must_use]
    pub fn constant(value: u32) -> Interval {
        Interval {
            lo: value,
            hi: value,
        }
    }

    /// Whether no value is contained.
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether `value` is contained.
    #[must_use]
    pub fn contains(&self, value: u32) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Whether every value of `other` is contained in `self`.
    #[must_use]
    pub fn includes(&self, other: &Interval) -> bool {
        other.is_bottom() || (!self.is_bottom() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Interval addition; overflow of either end widens to top.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::bottom();
        }
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::top(),
        }
    }

    /// Interval subtraction; underflow widens to top.
    #[must_use]
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::bottom();
        }
        match (self.lo.checked_sub(other.hi), self.hi.checked_sub(other.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::top(),
        }
    }
}

impl Lattice for Interval {
    fn join(&mut self, other: &Interval) -> bool {
        if other.is_bottom() {
            return false;
        }
        if self.is_bottom() {
            *self = *other;
            return true;
        }
        let joined = Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_is_the_may_lattice() {
        let mut a = false;
        assert!(a.join(&true));
        assert!(!a.join(&true));
        assert!(!a.join(&false));
        assert!(a);
    }

    #[test]
    fn mustdef_join_orders_definedness() {
        let mut d = MustDef::Always;
        assert!(!d.join(&MustDef::Always));
        assert!(d.join(&MustDef::Under(PredReg(3))));
        assert_eq!(d, MustDef::Under(PredReg(3)));
        assert!(!d.join(&MustDef::Under(PredReg(3))));
        assert!(
            d.join(&MustDef::Under(PredReg(4))),
            "different guards fall to No"
        );
        assert_eq!(d, MustDef::No);
        assert!(!d.join(&MustDef::Always), "No is the top");
    }

    #[test]
    fn predval_join_is_constant_propagation() {
        let mut v = PredVal::Bottom;
        assert!(v.join(&PredVal::True));
        assert_eq!(v.known(), Some(true));
        assert!(!v.join(&PredVal::True));
        assert!(v.join(&PredVal::False));
        assert_eq!(v, PredVal::Top);
        assert_eq!(PredVal::True.not(), PredVal::False);
    }

    #[test]
    fn interval_arithmetic_is_conservative() {
        let a = Interval { lo: 1, hi: 3 };
        let b = Interval { lo: 10, hi: 20 };
        assert_eq!(a.add(&b), Interval { lo: 11, hi: 23 });
        assert_eq!(b.sub(&a), Interval { lo: 7, hi: 19 });
        assert_eq!(a.sub(&b), Interval::top(), "underflow widens");
        assert_eq!(
            Interval::constant(u32::MAX).add(&Interval::constant(1)),
            Interval::top(),
            "overflow widens"
        );
        let mut j = Interval::bottom();
        assert!(j.join(&a));
        assert!(j.join(&b));
        assert_eq!(j, Interval { lo: 1, hi: 20 });
        assert!(j.includes(&a) && j.includes(&b));
        assert!(j.contains(5));
    }
}
