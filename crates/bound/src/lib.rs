//! `epic-bound`: abstract-interpretation dataflow framework and static
//! cycle-bound analysis for assembled EPIC programs.
//!
//! Where `epic-verify` checks *legality* (does a schedule respect the
//! machine contract?) and `epic-sim` measures *one run*, this crate
//! answers the quantitative static question: **how many cycles can a
//! program take, on this configuration, over all runs?** It computes a
//! whole-program interval `[lower, upper]` with a per-bundle breakdown,
//! built from a small reusable dataflow stack:
//!
//! * [`Lattice`] / [`Analysis`] / [`solve_forward`] / [`solve_backward`]
//!   — join-semilattice states, transfer functions and a worklist
//!   fixpoint solver over the bundle [`Cfg`], with edge-distance aging
//!   and widening hooks.
//! * [`ReachingDefs`] and [`Definedness`] — predicate-aware definition
//!   tracking (a write under `p` plus a write under its complement is a
//!   definition on every path), consumed by the verifier's `VER013`.
//! * [`ValueAnalysis`] — interval ranges for GPRs plus three-valued
//!   predicate constants, with capped widening.
//! * [`gpr_liveness`] — backward may-liveness (all-live at exits).
//! * [`LoopAnalysis`] — Kosaraju SCCs, counted-loop recognition and
//!   closed-form trip bounds, folded into per-bundle execution counts.
//! * [`analyze_cycles`] — the cycle-interval analysis itself, priced by
//!   a [`CostModel`] derived from the machine description.
//!
//! # Soundness
//!
//! The claim `simulated cycles ∈ [lower, upper]` is enforced two ways:
//! every price in the [`CostModel`] can be [audited](CostModel::audit)
//! against independently re-derived facts, and the differential oracle
//! in this crate's tests runs all four simulation engines over a
//! configuration grid and asserts containment. Seeded [`Mutation`]s
//! (wrong latency, ignored port budget, dropped branch penalty, bad
//! loop bound, unsound widening) must each be caught by the audit *and*
//! produce a differential violation, demonstrating the harness would
//! notice a real soundness bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use epic_mdes::cfg;

mod cost;
mod cycles;
mod defs;
mod lattice;
mod lints;
mod liveness;
mod loops;
mod ranges;
mod solver;

pub use cfg::{Cfg, Edge};
pub use cost::{CostModel, Mutation};
pub use cycles::{
    analyze_cycles, counts_from_block_weights, BoundOptions, CountSource, CycleBounds, PcBound,
};
pub use defs::{DefSites, Definedness, GprDefs, ReachingDefs};
pub use lattice::{Interval, Lattice, MustDef, PredVal};
pub use lints::{lint_bundles, LintOptions};
pub use liveness::{gpr_liveness, LiveSet};
pub use loops::{LoopAnalysis, LoopSummary};
pub use ranges::{compare_intervals, ValueAnalysis, Values};
pub use solver::{solve_backward, solve_forward, Analysis, BackwardSolution, Direction};
