//! Backward GPR liveness over the bundle CFG.
//!
//! The boundary is all-live: the register file is observable state at
//! every program exit (tests and the differential oracle compare it), so
//! a value only counts as dead when some later bundle *overwrites* it
//! unconditionally before any read on every path. That is exactly the
//! dead-store question the `BND001` lint asks.

use crate::cfg::Cfg;
use crate::solver::{solve_backward, Analysis, BackwardSolution, Direction};
use epic_config::Config;
use epic_isa::{Instruction, TRUE_PRED};

/// Per-bundle liveness state: one may-live bit per GPR.
pub type LiveSet = Vec<bool>;

struct GprLiveness {
    num_gprs: usize,
}

impl Analysis for GprLiveness {
    type State = LiveSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> LiveSet {
        // Registers are observable at exits.
        vec![true; self.num_gprs]
    }

    fn bottom(&self) -> LiveSet {
        vec![false; self.num_gprs]
    }

    fn transfer(&self, _bi: usize, bundle: &[Instruction], out: &LiveSet) -> LiveSet {
        let mut live = out.clone();
        // All reads in a bundle see the pre-bundle register state, so
        // kills (unconditional writes) apply before uses are added.
        for instr in bundle {
            if instr.pred == TRUE_PRED {
                if let Some(r) = instr.gpr_write() {
                    if let Some(slot) = live.get_mut(r.0 as usize) {
                        *slot = false;
                    }
                }
            }
        }
        for instr in bundle {
            for r in instr.gpr_reads() {
                if let Some(slot) = live.get_mut(r.0 as usize) {
                    *slot = true;
                }
            }
        }
        live
    }
}

/// Solves backward GPR liveness for every bundle.
///
/// `flow_in[bi][r]` — `r` may be read before being overwritten, on some
/// path starting at bundle `bi`. `flow_out[bi][r]` — the same question
/// after `bi` executes; a write to `r` in `bi` with `flow_out[bi][r]`
/// false is a dead store.
#[must_use]
pub fn gpr_liveness(
    config: &Config,
    cfg: &Cfg,
    bundles: &[Vec<Instruction>],
) -> BackwardSolution<LiveSet> {
    let analysis = GprLiveness {
        num_gprs: config.num_gprs(),
    };
    solve_backward(&analysis, cfg, bundles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn liveness_of(source: &str) -> BackwardSolution<LiveSet> {
        let config = Config::default();
        let program = assemble(source, &config).expect("assembles");
        let cfg = Cfg::build(&config, program.bundles());
        gpr_liveness(&config, &cfg, program.bundles())
    }

    #[test]
    fn overwritten_before_read_is_dead() {
        let sol = liveness_of("MOVE r1, #1\n;;\nMOVE r1, #2\n;;\nHALT\n;;\n");
        assert!(!sol.flow_out[0][1], "first write is overwritten unread");
        assert!(sol.flow_out[1][1], "second write reaches the exit");
    }

    #[test]
    fn a_read_keeps_the_value_live() {
        let sol = liveness_of("MOVE r1, #1\n;;\nADD r2, r1, #1\n;;\nMOVE r1, #2\n;;\nHALT\n;;\n");
        assert!(sol.flow_out[0][1], "read in bundle 1 keeps r1 live");
    }

    #[test]
    fn guarded_writes_do_not_kill() {
        let sol = liveness_of("MOVE r1, #1\n;;\nMOVE r1, #2 (p1)\n;;\nHALT\n;;\n");
        assert!(
            sol.flow_out[0][1],
            "a guarded overwrite may not land, the first value can survive"
        );
    }

    #[test]
    fn exits_observe_every_register() {
        let sol = liveness_of("MOVE r1, #1\n;;\nHALT\n;;\n");
        assert!(sol.flow_out[0].iter().all(|&l| l));
    }
}
