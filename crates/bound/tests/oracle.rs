//! Differential oracle for the static cycle-bound analysis.
//!
//! For every benchmark × configuration grid point, all four simulation
//! engines run the compiled program to completion and their cycle
//! counts must land inside the static interval — with profile-measured
//! execution counts (tight, input-specific) and with statically derived
//! counts (input-independent, upper possibly open). A tightness gate
//! keeps the measured-count upper bound useful: on average it may
//! overshoot the measured cycles by at most 50%.

use epic_bound::{analyze_cycles, BoundOptions, CostModel, CountSource, CycleBounds};
use epic_config::Config;
use epic_core::experiments::run_epic_workload_observed;
use epic_ir::lower;
use epic_sim::{BlockSimulator, Memory, ProfileSink, ReferenceSimulator, ThreadedSimulator};
use epic_workloads::{all, Scale};
use std::collections::BTreeMap;

struct Point {
    name: String,
    alus: usize,
    issue_width: usize,
    decoded_cycles: u64,
    reference_cycles: u64,
    block_cycles: u64,
    threaded_cycles: u64,
    measured: CycleBounds,
    statics: CycleBounds,
}

fn run_grid(alu_counts: &[usize], widths: &[usize]) -> Vec<Point> {
    let mut points = Vec::new();
    for workload in all(Scale::Test) {
        let module = lower::lower(&workload.program).expect("workload lowers");
        let layout = module.layout().expect("workload lays out");
        for &alus in alu_counts {
            for &issue_width in widths {
                let config = Config::builder()
                    .num_alus(alus)
                    .issue_width(issue_width)
                    .build()
                    .expect("valid grid configuration");
                let mut sink = ProfileSink::default();
                let run = run_epic_workload_observed(&workload, &config, &mut sink)
                    .expect("workload runs and verifies");
                let decoded_cycles = run.stats().cycles;

                let mut reference = ReferenceSimulator::new(
                    &config,
                    run.program.bundles().to_vec(),
                    run.program.entry(),
                );
                reference.set_memory(Memory::from_image(module.initial_memory(&layout)));
                let reference_cycles = reference.run().expect("reference engine runs").cycles;

                let mut block = BlockSimulator::try_new(
                    &config,
                    run.program.bundles().to_vec(),
                    run.program.entry(),
                )
                .expect("block compile accepts legal programs");
                block.set_memory(Memory::from_image(module.initial_memory(&layout)));
                let block_cycles = block.run().expect("block engine runs").cycles;

                let mut threaded = ThreadedSimulator::try_new(
                    &config,
                    run.program.bundles().to_vec(),
                    run.program.entry(),
                )
                .expect("threaded translation accepts legal programs");
                threaded.set_memory(Memory::from_image(module.initial_memory(&layout)));
                let threaded_cycles = threaded.run().expect("threaded engine runs").cycles;

                let counts: BTreeMap<u32, u64> =
                    sink.per_pc().map(|(pc, c)| (pc, c.issues)).collect();
                let model = CostModel::new(&config);
                let entry = run.program.entry() as usize;
                let options = BoundOptions::default();
                let measured = analyze_cycles(
                    &config,
                    run.program.bundles(),
                    entry,
                    &CountSource::Measured(&counts),
                    &model,
                    &options,
                );
                let statics = analyze_cycles(
                    &config,
                    run.program.bundles(),
                    entry,
                    &CountSource::Static,
                    &model,
                    &options,
                );
                points.push(Point {
                    name: workload.name.clone(),
                    alus,
                    issue_width,
                    decoded_cycles,
                    reference_cycles,
                    block_cycles,
                    threaded_cycles,
                    measured,
                    statics,
                });
            }
        }
    }
    points
}

fn assert_contained(points: &[Point]) {
    for p in points {
        for (engine, cycles) in [
            ("decoded", p.decoded_cycles),
            ("reference", p.reference_cycles),
            ("block", p.block_cycles),
            ("threaded", p.threaded_cycles),
        ] {
            assert!(
                p.measured.contains(cycles),
                "{} alus={} iw={}: {engine} cycles {cycles} outside measured bound [{}, {:?}]",
                p.name,
                p.alus,
                p.issue_width,
                p.measured.lower,
                p.measured.upper,
            );
            assert!(
                p.statics.contains(cycles),
                "{} alus={} iw={}: {engine} cycles {cycles} outside static bound [{}, {:?}]",
                p.name,
                p.alus,
                p.issue_width,
                p.statics.lower,
                p.statics.upper,
            );
        }
    }
}

#[test]
fn both_engines_land_inside_the_bounds_across_the_grid() {
    // The full 4 × 4 grid per benchmark: 64 points, four engines each.
    let points = run_grid(&[1, 2, 3, 4], &[1, 2, 3, 4]);
    assert_eq!(points.len(), 64);
    assert_contained(&points);

    // With measured counts the upper bound must also be *tight*: at most
    // 50% above the observed cycles on average over the grid.
    let mut ratio_sum = 0.0f64;
    for p in &points {
        let upper = p
            .measured
            .upper
            .expect("measured counts always close the interval");
        ratio_sum += upper as f64 / p.decoded_cycles as f64;
    }
    let mean = ratio_sum / points.len() as f64;
    assert!(
        mean <= 1.5,
        "measured-count upper bound too loose: mean upper/actual = {mean:.3}"
    );
}

#[test]
fn the_engines_agree_with_each_other() {
    // Not a bound property, but the oracle depends on the engines
    // seeing the same machine: any divergence invalidates containment
    // as a cross-check.
    for p in run_grid(&[1, 4], &[2]) {
        assert_eq!(
            p.decoded_cycles, p.reference_cycles,
            "{} alus={} iw={}: engines disagree",
            p.name, p.alus, p.issue_width
        );
        assert_eq!(
            p.decoded_cycles, p.block_cycles,
            "{} alus={} iw={}: block engine disagrees",
            p.name, p.alus, p.issue_width
        );
        assert_eq!(
            p.decoded_cycles, p.threaded_cycles,
            "{} alus={} iw={}: threaded engine disagrees",
            p.name, p.alus, p.issue_width
        );
    }
}
