//! Seeded-mutant corpus for the cycle-bound analysis.
//!
//! Soundness claims are only as good as the harness that would notice
//! their violation. Each [`Mutation`] seeds one classic unsoundness into
//! the cost model; the corpus demands every one of them is caught *two*
//! independent ways:
//!
//! 1. **Statically** — [`CostModel::audit`] re-derives each price from
//!    first principles and must flag the corrupted one.
//! 2. **Differentially** — on a crafted program the mutated bound must
//!    actually be violated by a real simulation (cycles above the
//!    mutated upper bound, or a runtime value outside the claimed
//!    interval), while the unmutated bound contains it.

use epic_bound::{
    analyze_cycles, BoundOptions, Cfg, CostModel, CountSource, CycleBounds, Mutation, ValueAnalysis,
};
use epic_config::Config;
use epic_isa::Instruction;
use epic_sim::Simulator;
use std::collections::BTreeMap;

struct Run {
    bundles: Vec<Vec<Instruction>>,
    entry: usize,
    cycles: u64,
    counts: BTreeMap<u32, u64>,
    final_gprs: Vec<u32>,
}

/// Assembles and runs a program, collecting measured issue counts.
fn simulate(source: &str, config: &Config) -> Run {
    let program = epic_asm::assemble(source, config).expect("assembles");
    let mut sim = Simulator::try_new(config, program.bundles().to_vec(), program.entry())
        .expect("legal program");
    sim.set_memory(epic_sim::Memory::new(64));
    let mut sink = epic_sim::ProfileSink::default();
    let stats = *sim.run_with_sink(&mut sink).expect("runs to completion");
    Run {
        bundles: program.bundles().to_vec(),
        entry: program.entry() as usize,
        cycles: stats.cycles,
        counts: sink.per_pc().map(|(pc, c)| (pc, c.issues)).collect(),
        final_gprs: (0..config.num_gprs()).map(|r| sim.gpr(r)).collect(),
    }
}

fn bounds(run: &Run, config: &Config, model: &CostModel, counts: &CountSource<'_>) -> CycleBounds {
    analyze_cycles(
        config,
        &run.bundles,
        run.entry,
        counts,
        model,
        &BoundOptions::default(),
    )
}

fn assert_audit_catches(config: &Config, mutation: Mutation) {
    let clean = CostModel::new(config).audit();
    assert!(
        clean.is_empty(),
        "faithful model must audit clean, got: {clean:?}"
    );
    let findings = CostModel::mutated(config, mutation).audit();
    assert!(
        !findings.is_empty(),
        "audit missed the seeded {} mutation",
        mutation.name()
    );
}

/// Asserts the classic differential shape: the faithful interval
/// contains the real run, the mutated upper bound falls below it.
fn assert_upper_bound_escape(
    source: &str,
    config: &Config,
    mutation: Mutation,
    counts_of: impl Fn(&Run) -> CountSource<'_>,
) {
    let run = simulate(source, config);
    let faithful = bounds(&run, config, &CostModel::new(config), &counts_of(&run));
    assert!(
        faithful.contains(run.cycles),
        "faithful bound [{}, {:?}] must contain {} cycles",
        faithful.lower,
        faithful.upper,
        run.cycles
    );
    let mutated = bounds(
        &run,
        config,
        &CostModel::mutated(config, mutation),
        &counts_of(&run),
    );
    let upper = mutated
        .upper
        .unwrap_or_else(|| panic!("{}: mutated upper must stay closed", mutation.name()));
    assert!(
        upper < run.cycles,
        "{}: mutated upper {} was not violated by the real {} cycles",
        mutation.name(),
        upper,
        run.cycles
    );
}

#[test]
fn wrong_load_latency_is_caught() {
    // Loads take 4 cycles; the mutant prices them at 1, hiding three
    // stall cycles on every load-use pair.
    let config = Config::builder()
        .load_latency(4)
        .build()
        .expect("valid config");
    assert_audit_catches(&config, Mutation::WrongLoadLatency);
    let mut source = String::new();
    for _ in 0..10 {
        source.push_str("LW r1, r0, #0\n;;\nADD r2, r1, #1\n;;\n");
    }
    source.push_str("HALT\n;;\n");
    assert_upper_bound_escape(&source, &config, Mutation::WrongLoadLatency, |r| {
        CountSource::Measured(&r.counts)
    });
}

#[test]
fn ignored_port_budget_is_caught() {
    // Two register-file accesses per cycle: a 4-wide all-ALU bundle
    // needs several serialisation cycles the mutant refuses to charge.
    let config = Config::builder()
        .issue_width(4)
        .num_alus(4)
        .regfile_ops_per_cycle(2)
        .build()
        .expect("valid config");
    assert_audit_catches(&config, Mutation::IgnorePortBudget);
    let mut source = String::new();
    for _ in 0..10 {
        source.push_str(
            "ADD r1, r9, r10\nADD r2, r11, r12\nADD r3, r13, r14\nADD r4, r15, r16\n;;\n",
        );
    }
    source.push_str("HALT\n;;\n");
    assert_upper_bound_escape(&source, &config, Mutation::IgnorePortBudget, |r| {
        CountSource::Measured(&r.counts)
    });
}

#[test]
fn dropped_branch_penalty_is_caught() {
    // The deepest supported pipeline makes every taken branch cost
    // three cycles; the mutant prices flushes at zero.
    let config = Config::builder()
        .pipeline_stages(4)
        .build()
        .expect("valid config");
    assert_audit_catches(&config, Mutation::DropBranchPenalty);
    let mut source = String::new();
    for i in 0..10 {
        source.push_str(&format!("PBR b1, @l{i}\n;;\nBR b1\n;;\nl{i}:\n"));
    }
    source.push_str("HALT\n;;\n");
    assert_upper_bound_escape(&source, &config, Mutation::DropBranchPenalty, |r| {
        CountSource::Measured(&r.counts)
    });
}

#[test]
fn loop_bound_off_by_one_is_caught() {
    // A 200-iteration counted loop: the mutant undercounts trips, so the
    // static upper bound lands below the real run.
    let config = Config::default();
    assert_audit_catches(&config, Mutation::LoopBoundOffByOne);
    let source = "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\n\
                  CMP_LT p1, p0, r1, #200\n;;\nBRCT b1 (p1)\n;;\nHALT\n;;\n";
    assert_upper_bound_escape(source, &config, Mutation::LoopBoundOffByOne, |_| {
        CountSource::Static
    });
}

#[test]
fn unsound_widening_is_caught() {
    // Narrowing instead of widening collapses the loop counter's
    // interval to its lower end: the analysis then claims a final value
    // the machine provably exceeds.
    let config = Config::default();
    assert_audit_catches(&config, Mutation::UnsoundWidening);
    let source = "PBR b1, @loop\n;;\nloop:\nADD r1, r1, #1\n;;\n\
                  CMP_LT p1, p0, r1, #200\n;;\nBRCT b1 (p1)\n;;\nHALT\n;;\n";
    let run = simulate(source, &config);
    let halt = run.bundles.len() - 1;
    let cfg = Cfg::build(&config, &run.bundles);

    let sound = ValueAnalysis::new(&config).solve(&cfg, &run.bundles, run.entry);
    let at_halt = sound[halt].as_ref().expect("halt is reachable");
    let claimed = at_halt.operand(epic_isa::Operand::Gpr(epic_isa::Gpr(1)));
    assert!(
        claimed.contains(run.final_gprs[1]),
        "sound interval [{}, {}] must contain the real r1 = {}",
        claimed.lo,
        claimed.hi,
        run.final_gprs[1]
    );

    let model = CostModel::mutated(&config, Mutation::UnsoundWidening);
    let mutated = ValueAnalysis::with_model(&config, &model).solve(&cfg, &run.bundles, run.entry);
    let at_halt = mutated[halt].as_ref().expect("halt is reachable");
    let claimed = at_halt.operand(epic_isa::Operand::Gpr(epic_isa::Gpr(1)));
    assert!(
        !claimed.contains(run.final_gprs[1]),
        "narrowed interval [{}, {}] unexpectedly still contains r1 = {}",
        claimed.lo,
        claimed.hi,
        run.final_gprs[1]
    );
}

#[test]
fn every_mutation_has_a_distinct_audit_signature() {
    let config = Config::default();
    for mutation in Mutation::ALL {
        let findings = CostModel::mutated(&config, mutation).audit();
        assert!(
            !findings.is_empty(),
            "audit missed {} on the default configuration",
            mutation.name()
        );
    }
}
