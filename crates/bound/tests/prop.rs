//! Property tests for the cycle-bound analysis.
//!
//! * **Containment** — for random small programs (straight-line and
//!   counted-loop shapes) on random configurations, the decoded engine's
//!   cycle count lands inside both the static and the measured interval.
//! * **Monotonicity** — relaxing a loop-bound assumption can only grow
//!   the upper bound, and measured bounds are never looser than the
//!   cycle identity allows.

use epic_bound::{analyze_cycles, BoundOptions, CostModel, CountSource, CycleBounds};
use epic_config::Config;
use epic_sim::{Memory, ProfileSink, Simulator};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const MEM_BYTES: u32 = 64;

fn config_strategy() -> impl Strategy<Value = Config> {
    (
        1usize..=4,
        1usize..=4,
        1u32..=4,
        prop::bool::ANY,
        2usize..=4,
        prop::sample::select(vec![2usize, 4, 8]),
    )
        .prop_map(|(alus, iw, load_latency, fwd, stages, ports)| {
            Config::builder()
                .num_alus(alus)
                .issue_width(iw)
                .load_latency(load_latency)
                .forwarding(fwd)
                .pipeline_stages(stages)
                .regfile_ops_per_cycle(ports)
                .build()
                .expect("valid generated configuration")
        })
}

/// One random body instruction as assembly text. Registers r1 and r9 are
/// reserved (loop counter / link); bodies write r2–r8.
fn body_instr() -> impl Strategy<Value = String> {
    prop_oneof![
        // Three-address ALU over low registers and short literals.
        (
            prop::sample::select(vec!["ADD", "SUB", "AND", "XOR", "SHL", "MIN"]),
            2u16..=8,
            2u16..=8,
            -50i64..50,
        )
            .prop_map(|(op, d, s, lit)| format!("{op} r{d}, r{s}, #{lit}")),
        // Multiply / divide exercise latency and occupancy windows.
        (
            prop::sample::select(vec!["MULL", "DIV"]),
            2u16..=8,
            2u16..=8,
            1i64..9,
        )
            .prop_map(|(op, d, s, lit)| format!("{op} r{d}, r{s}, #{lit}")),
        // Aligned in-bounds loads stress the latency and memory paths.
        ((2u16..=8), (0u32..MEM_BYTES / 4))
            .prop_map(|(d, word)| format!("LW r{d}, r0, #{}", word * 4)),
    ]
}

/// A whole random program: optionally a counted loop around the body.
fn program_strategy() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(body_instr(), 1..8),
        prop::option::of((0u32..20, 1u32..30, 1u32..4)),
    )
        .prop_map(|(body, loop_shape)| {
            let mut source = String::new();
            match loop_shape {
                None => {
                    for instr in &body {
                        let _ = writeln!(source, "{instr}\n;;");
                    }
                }
                Some((start, limit, step)) => {
                    let _ = writeln!(source, "MOVE r1, #{start}\n;;\nPBR b1, @loop\n;;\nloop:");
                    for instr in &body {
                        let _ = writeln!(source, "{instr}\n;;");
                    }
                    let _ = writeln!(source, "ADD r1, r1, #{step}\n;;");
                    let _ = writeln!(source, "CMP_LT p1, p0, r1, #{limit}\n;;");
                    let _ = writeln!(source, "BRCT b1 (p1)\n;;");
                }
            }
            source.push_str("HALT\n;;\n");
            source
        })
}

struct Run {
    cycles: u64,
    counts: BTreeMap<u32, u64>,
    bundles: Vec<Vec<epic_isa::Instruction>>,
    entry: usize,
}

fn simulate(source: &str, config: &Config) -> Run {
    let program = epic_asm::assemble(source, config).expect("generated program assembles");
    let mut sim = Simulator::try_new(config, program.bundles().to_vec(), program.entry())
        .expect("legal program");
    sim.set_memory(Memory::new(MEM_BYTES));
    let mut sink = ProfileSink::default();
    let stats = *sim
        .run_with_sink(&mut sink)
        .expect("generated program runs to completion");
    Run {
        cycles: stats.cycles,
        counts: sink.per_pc().map(|(pc, c)| (pc, c.issues)).collect(),
        bundles: program.bundles().to_vec(),
        entry: program.entry() as usize,
    }
}

fn bounds(
    run: &Run,
    config: &Config,
    counts: &CountSource<'_>,
    options: &BoundOptions,
) -> CycleBounds {
    let model = CostModel::new(config);
    analyze_cycles(config, &run.bundles, run.entry, counts, &model, options)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn static_and_measured_intervals_contain_the_simulation(
        source in program_strategy(),
        config in config_strategy(),
    ) {
        let run = simulate(&source, &config);
        let options = BoundOptions::default();

        let statics = bounds(&run, &config, &CountSource::Static, &options);
        prop_assert!(
            statics.contains(run.cycles),
            "static bound [{}, {:?}] misses {} cycles for:\n{source}",
            statics.lower, statics.upper, run.cycles
        );

        let measured = bounds(&run, &config, &CountSource::Measured(&run.counts), &options);
        prop_assert!(
            measured.contains(run.cycles),
            "measured bound [{}, {:?}] misses {} cycles for:\n{source}",
            measured.lower, measured.upper, run.cycles
        );
        // Measured counts close the interval and never widen the static
        // lower end.
        prop_assert!(measured.upper.is_some());
        prop_assert!(measured.lower >= statics.lower);
    }

    #[test]
    fn relaxing_a_loop_bound_assumption_is_monotone(
        source in program_strategy(),
        config in config_strategy(),
        t1 in 1u64..50,
        extra in 0u64..50,
    ) {
        let run = simulate(&source, &config);
        let tight = bounds(
            &run, &config, &CountSource::Static,
            &BoundOptions { assume_trips: Some(t1) },
        );
        let relaxed = bounds(
            &run, &config, &CountSource::Static,
            &BoundOptions { assume_trips: Some(t1 + extra) },
        );
        prop_assert!(relaxed.lower <= tight.lower || relaxed.lower == tight.lower,
            "lower bound must not grow under relaxation");
        match (tight.upper, relaxed.upper) {
            (Some(t), Some(r)) => prop_assert!(
                t <= r,
                "assume_trips {} gave upper {t}, relaxing to {} shrank it to {r} for:\n{source}",
                t1, t1 + extra
            ),
            (None, Some(_)) => prop_assert!(false, "relaxation must not close an open bound"),
            _ => {}
        }
    }
}
