//! `epic-verify`: static schedule/bundle verifier for assembled EPIC
//! programs.
//!
//! The simulator (`epic-sim`) enforces the machine contract dynamically:
//! it interlocks on scoreboard hazards, serialises over-budget
//! register-file traffic and holds issue while the blocking divider owns
//! an ALU. This crate proves the *static* half of the paper's story —
//! that the toolchain emits schedules which never provoke those
//! interlocks — by re-deriving the machine model from the
//! [`Config`]/[`MachineDescription`] pair and walking every bundle of an
//! assembled program.
//!
//! # Checks
//!
//! | code   | severity | meaning                                             |
//! |--------|----------|-----------------------------------------------------|
//! | VER001 | error    | bundle wider than the configured issue width        |
//! | VER002 | error    | functional-unit class oversubscribed within a bundle|
//! | VER003 | error    | register-file port budget exceeded by one bundle    |
//! | VER004 | warning  | cross-bundle producer→consumer latency hazard       |
//! | VER005 | error    | branch through a BTR no preceding `PBR` prepares    |
//! | VER006 | warning  | predicate read but never written on any entry path  |
//! | VER007 | error    | operand/register/feature validation failure         |
//! | VER008 | error    | literal not encodable in the instruction format     |
//! | VER009 | error    | control transfer followed by a non-`NOP` in-bundle  |
//! | VER010 | error    | two writes to one register within a bundle          |
//! | VER011 | warning  | ALU demand collides with a blocking divide in flight|
//! | VER012 | error    | entry address outside the program                   |
//! | VER013 | warning  | GPR read with no reaching write on any entry path   |
//!
//! # Soundness contract
//!
//! Severity follows what the hardware does about a problem. *Errors*
//! are conditions the machine cannot absorb: the simulator rejects the
//! bundle outright (width, unit counts, write conflicts, encoding) or
//! the register-file controller is over-driven every time the bundle
//! issues (VER003 counts every GPR access, deliberately without the
//! forwarding discount, so static ≤ budget implies the controller
//! finishes in one processor cycle). *Warnings* are cross-bundle timing
//! hazards the interlocks cover at the cost of stall cycles: scoreboard
//! waits (VER004), divider shadows (VER011), plus the dataflow lints
//! (VER005 escalates to an error because a branch through a garbage BTR
//! redirects to an arbitrary address rather than stalling).
//!
//! The checks are *conservative over-approximations* of the simulator,
//! propagating state over a control-flow graph that over-approximates
//! the dynamic successor relation (every `PBR` literal is a possible
//! target of a branch through that BTR; branches through BTRs loaded
//! from a register may land on any return point). Consequently:
//!
//! > * no error diagnostics ⇒ zero `regfile_port` stalls;
//! > * additionally no VER011 warnings ⇒ zero `unit_busy` stalls;
//! > * additionally no VER004 warnings ⇒ zero `data_hazard` stalls,
//!
//! which `crates/verify/tests/` cross-validates against `epic-sim` for
//! every workload × ALU count × issue width the paper explores.
//!
//! # Timing model
//!
//! All dataflow state is kept *relative to the bundle's execute cycle*:
//! a fall-through edge advances time by 1 cycle and a taken branch by
//! `pipeline_stages` cycles (redirect plus flush), which are exactly the
//! minimum distances the pipeline achieves, so residual latencies and
//! divider occupancy age by the edge weight as they propagate. Join is
//! element-wise maximum for the timed components (worst case over
//! predecessors) and set union for the reachability components
//! (prepared BTRs, written predicates).

use epic_config::Config;
use epic_isa::{Instruction, IsaError, Opcode, Unit};
use epic_mdes::MachineDescription;

pub use epic_asm::{Diagnostic, Severity};

/// The outcome of verifying one program: an ordered list of
/// [`Diagnostic`]s (bundle order, structural before dataflow findings).
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// All diagnostics, in bundle order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether any diagnostic is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the program verified without any diagnostics at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Appends a diagnostic — tools layering extra lints (e.g. the
    /// `epic-bound` dataflow lints) onto a verifier report use this to
    /// keep one rendering and one exit-code policy.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Whether a diagnostic with the given code is present.
    #[must_use]
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders every diagnostic rustc-style plus a summary line.
    /// `origin` names the input; `source` (when available) enables caret
    /// lines for diagnostics that carry source line numbers.
    #[must_use]
    pub fn render(&self, origin: &str, source: Option<&str>) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render(origin, source));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            origin,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Renders the whole report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            self.error_count(),
            self.warning_count(),
            body.join(",")
        )
    }
}

/// Verifies `bundles` (entry at bundle address `entry`) against
/// `config`. Convenience wrapper over [`Verifier`].
#[must_use]
pub fn check_program(bundles: &[Vec<Instruction>], entry: u32, config: &Config) -> Report {
    Verifier::new(config).check(bundles, entry)
}

/// Verifies an assembled [`epic_asm::Program`].
#[must_use]
pub fn check(program: &epic_asm::Program, config: &Config) -> Report {
    check_program(program.bundles(), program.entry(), config)
}

/// Dataflow state at a bundle boundary, relative to that bundle's
/// execute cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Flow {
    /// Cycles until each GPR's pending write is readable (0 = ready).
    gpr_wait: Vec<u32>,
    /// Cycles each ALU instance remains occupied by a blocking divide,
    /// sorted descending (instances are interchangeable).
    alu_busy: Vec<u32>,
    /// BTRs prepared by some `PBR` on some path from the entry.
    prepared: Vec<bool>,
    /// Predicates written on some path from the entry (`p0` always).
    pred_def: Vec<bool>,
}

impl Flow {
    fn entry(config: &Config) -> Flow {
        let mut pred_def = vec![false; config.num_pred_regs()];
        if let Some(p0) = pred_def.first_mut() {
            *p0 = true;
        }
        Flow {
            gpr_wait: vec![0; config.num_gprs()],
            alu_busy: vec![0; config.num_alus()],
            prepared: vec![false; config.num_btrs()],
            pred_def,
        }
    }

    /// Advances time by `delta` cycles along an edge.
    fn aged(&self, delta: u32) -> Flow {
        let mut out = self.clone();
        for w in &mut out.gpr_wait {
            *w = w.saturating_sub(delta);
        }
        for b in &mut out.alu_busy {
            *b = b.saturating_sub(delta);
        }
        out
    }

    /// Joins `other` into `self`; returns whether `self` changed.
    fn join(&mut self, other: &Flow) -> bool {
        let mut changed = false;
        for (dst, src) in self.gpr_wait.iter_mut().zip(&other.gpr_wait) {
            if *src > *dst {
                *dst = *src;
                changed = true;
            }
        }
        // Both sides keep `alu_busy` sorted descending, so element-wise
        // max bounds the k-th busiest instance of either predecessor.
        for (dst, src) in self.alu_busy.iter_mut().zip(&other.alu_busy) {
            if *src > *dst {
                *dst = *src;
                changed = true;
            }
        }
        for (dst, src) in self.prepared.iter_mut().zip(&other.prepared) {
            if *src && !*dst {
                *dst = true;
                changed = true;
            }
        }
        for (dst, src) in self.pred_def.iter_mut().zip(&other.pred_def) {
            if *src && !*dst {
                *dst = true;
                changed = true;
            }
        }
        changed
    }
}

/// One outgoing control-flow edge: target bundle and the minimum number
/// of cycles between the two bundles' execute stages.
type Edge = (usize, u32);

/// Static verifier for one machine configuration.
pub struct Verifier {
    config: Config,
    mdes: MachineDescription,
}

impl Verifier {
    /// Builds a verifier for the given configuration.
    #[must_use]
    pub fn new(config: &Config) -> Verifier {
        Verifier {
            config: config.clone(),
            mdes: MachineDescription::new(config),
        }
    }

    /// Runs every check over `bundles` with the entry at bundle address
    /// `entry` and returns the collected diagnostics.
    #[must_use]
    pub fn check(&self, bundles: &[Vec<Instruction>], entry: u32) -> Report {
        let mut diags = Vec::new();

        if entry as usize >= bundles.len() {
            diags.push(Diagnostic::error(
                "VER012",
                format!(
                    "entry address {entry} is outside the program ({} bundle(s))",
                    bundles.len()
                ),
            ));
        }

        let structural: Vec<Vec<Diagnostic>> = bundles
            .iter()
            .enumerate()
            .map(|(bi, bundle)| self.check_bundle_structure(bi, bundle))
            .collect();

        let flow_in = self.solve_dataflow(bundles, entry);

        for (bi, bundle) in bundles.iter().enumerate() {
            diags.extend(structural[bi].iter().cloned());
            if let Some(input) = &flow_in[bi] {
                self.transfer(bi, bundle, input, Some(&mut diags));
            }
        }

        self.check_gpr_definedness(bundles, entry, &mut diags);

        Report { diagnostics: diags }
    }

    /// VER013: GPR reads that can observe a never-written register.
    ///
    /// Built on the predicate-aware definedness analysis from
    /// `epic-bound`: a write under `p` together with a write under its
    /// complement counts as a definition on every path, and a read
    /// guarded by the *same* predicate as the only write is safe by
    /// construction. Reads whose guard the value analysis proves false
    /// never execute and are not reported. Registers reset to zero, so
    /// none of this interlocks — but code meaning to read zero should
    /// produce it explicitly.
    fn check_gpr_definedness(
        &self,
        bundles: &[Vec<Instruction>],
        entry: u32,
        diags: &mut Vec<Diagnostic>,
    ) {
        use epic_bound::{MustDef, PredVal};

        let entry = entry as usize;
        if entry >= bundles.len() {
            return;
        }
        let cfg = epic_bound::Cfg::build(&self.config, bundles);
        let defs = epic_bound::Definedness::new(&self.config, bundles).solve(&cfg, bundles, entry);
        let values = epic_bound::ValueAnalysis::new(&self.config).solve(&cfg, bundles, entry);

        for (bi, bundle) in bundles.iter().enumerate() {
            let Some(state) = &defs[bi] else {
                continue; // unreachable bundle
            };
            for (slot, instr) in bundle.iter().enumerate() {
                // A provably squashed read never observes anything.
                let guard_known_false = values[bi]
                    .as_ref()
                    .is_some_and(|v| v.guard(instr.pred) == PredVal::False);
                if guard_known_false {
                    continue;
                }
                for gpr in instr.gpr_reads() {
                    let Some(&may) = state.may.get(gpr.0 as usize) else {
                        continue; // out-of-range index, already VER007
                    };
                    if !may {
                        diags.push(
                            Diagnostic::warning(
                                "VER013",
                                format!(
                                    "{gpr} is read but never written on any path \
                                     from the entry"
                                ),
                            )
                            .with_bundle(bi, Some(slot)),
                        );
                        continue;
                    }
                    // Written somewhere — but is it written whenever this
                    // read executes? Only the single-guard case is
                    // decidable without a path-sensitive analysis; a read
                    // under the defining guard is safe by construction.
                    if let MustDef::Under(p) = state.must[gpr.0 as usize] {
                        if instr.pred != p {
                            diags.push(
                                Diagnostic::warning(
                                    "VER013",
                                    format!(
                                        "{gpr} is only written under {p}; reading it \
                                         here may observe an undefined value when \
                                         {p} is false"
                                    ),
                                )
                                .with_bundle(bi, Some(slot)),
                            );
                        }
                    }
                }
            }
        }
    }

    /// The static control-flow over-approximation the dataflow fixpoint
    /// runs on: for every bundle address, the possible successor bundle
    /// addresses with the minimum cycle distance to each. Every edge the
    /// hardware can take is present (the differential CFG tests drive
    /// the reference simulator and assert exactly this containment);
    /// edges the hardware never takes may be present too.
    #[must_use]
    pub fn cfg(&self, bundles: &[Vec<Instruction>]) -> Vec<Vec<(usize, u32)>> {
        self.build_cfg(bundles)
    }

    // --- per-bundle structural checks (no control flow needed) ---------

    fn check_bundle_structure(&self, bi: usize, bundle: &[Instruction]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let issue_width = self.config.issue_width();

        if bundle.len() > issue_width {
            diags.push(
                Diagnostic::error(
                    "VER001",
                    format!(
                        "bundle has {} instructions but the issue width is {issue_width}",
                        bundle.len()
                    ),
                )
                .with_bundle(bi, None),
            );
        }

        // The shared static cost model prices the bundle once; VER002 and
        // VER003 read unit demand and port operations from it.
        let cost = self.mdes.bundle_cost(bundle);
        for unit in [Unit::Alu, Unit::Lsu, Unit::Cmpu, Unit::Bru] {
            let wanted = cost.demand(unit);
            let available = self.mdes.unit_count(unit);
            if wanted > available {
                diags.push(
                    Diagnostic::error(
                        "VER002",
                        format!(
                            "bundle needs {wanted} {unit} slot(s) but the machine has \
                             {available}"
                        ),
                    )
                    .with_bundle(bi, None),
                );
            }
        }

        // VER003: static port count, deliberately without the forwarding
        // discount the hardware may apply — static ≤ budget implies the
        // register-file controller finishes in one processor cycle.
        let ports = cost.port_ops;
        let budget = self.config.regfile_ops_per_cycle();
        if ports > budget {
            diags.push(
                Diagnostic::error(
                    "VER003",
                    format!(
                        "bundle performs {ports} register-file operations but the \
                         controller sustains {budget} per processor cycle"
                    ),
                )
                .with_bundle(bi, None),
            );
        }

        // VER009: nothing but NOP padding may follow a control transfer.
        if let Some(ctl) = bundle
            .iter()
            .position(|i| i.opcode.is_branch() || i.opcode == Opcode::Halt)
        {
            for (slot, instr) in bundle.iter().enumerate().skip(ctl + 1) {
                if instr.opcode != Opcode::Nop {
                    diags.push(
                        Diagnostic::error(
                            "VER009",
                            format!(
                                "{} in slot {ctl} transfers control but slot {slot} \
                                 holds {}; branches must occupy the last useful slot",
                                bundle[ctl].opcode, instr.opcode
                            ),
                        )
                        .with_bundle(bi, Some(slot)),
                    );
                }
            }
        }

        // VER010: within-bundle write conflicts per register file.
        let mut gpr_writes: Vec<u16> = bundle
            .iter()
            .filter_map(|i| i.gpr_write())
            .map(|r| r.0)
            .collect();
        let mut pred_writes: Vec<u16> = bundle
            .iter()
            .flat_map(Instruction::pred_writes)
            .map(|p| p.0)
            .filter(|&p| p != 0)
            .collect();
        let mut btr_writes: Vec<u16> = bundle
            .iter()
            .filter_map(|i| i.btr_write())
            .map(|b| b.0)
            .collect();
        for (writes, prefix) in [
            (&mut gpr_writes, "r"),
            (&mut pred_writes, "p"),
            (&mut btr_writes, "b"),
        ] {
            writes.sort_unstable();
            writes.dedup_by(|a, b| {
                if a == b {
                    diags.push(
                        Diagnostic::error(
                            "VER010",
                            format!("two instructions in the bundle write {prefix}{b}"),
                        )
                        .with_bundle(bi, None),
                    );
                    true
                } else {
                    false
                }
            });
        }

        // VER007/VER008: per-instruction operand validation.
        for (slot, instr) in bundle.iter().enumerate() {
            if let Err(err) = instr.validate(&self.config) {
                let code = match err {
                    IsaError::LiteralOutOfRange { .. } => "VER008",
                    _ => "VER007",
                };
                diags.push(Diagnostic::error(code, err.to_string()).with_bundle(bi, Some(slot)));
            }
        }

        diags
    }

    // --- control-flow graph --------------------------------------------

    /// Builds the over-approximate successor relation. Branch targets
    /// come from `PBR` literals program-wide; a branch through a BTR
    /// some `PBR` loads from a register (a return address) may land on
    /// any bundle following a `BRL`.
    fn build_cfg(&self, bundles: &[Vec<Instruction>]) -> Vec<Vec<Edge>> {
        let len = bundles.len();
        let num_btrs = self.config.num_btrs();
        let branch_delta = self.config.pipeline_stages() as u32;

        let mut literal_targets: Vec<Vec<usize>> = vec![Vec::new(); num_btrs];
        let mut unknown_target: Vec<bool> = vec![false; num_btrs];
        let mut return_points: Vec<usize> = Vec::new();
        for (bi, bundle) in bundles.iter().enumerate() {
            for instr in bundle {
                if instr.opcode == Opcode::Pbr {
                    let Some(btr) = instr.btr_write() else {
                        continue;
                    };
                    let Some(slot) = literal_targets.get_mut(btr.0 as usize) else {
                        continue;
                    };
                    match instr.src1 {
                        epic_isa::Operand::Lit(v) if (0..len as i64).contains(&v) => {
                            slot.push(v as usize);
                        }
                        _ => unknown_target[btr.0 as usize] = true,
                    }
                }
                if instr.opcode == Opcode::Brl && bi + 1 < len {
                    return_points.push(bi + 1);
                }
            }
        }

        let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); len];
        for (bi, bundle) in bundles.iter().enumerate() {
            let mut fall_through = bi + 1 < len;
            let edges = &mut succs[bi];
            for instr in bundle {
                let always = instr.pred.0 == 0;
                let branch_edges = |edges: &mut Vec<Edge>| {
                    if let Some(btr) = instr.btr_read() {
                        if let Some(targets) = literal_targets.get(btr.0 as usize) {
                            for &t in targets {
                                edges.push((t, branch_delta));
                            }
                        }
                        if unknown_target.get(btr.0 as usize).copied().unwrap_or(false) {
                            for &rp in &return_points {
                                edges.push((rp, branch_delta));
                            }
                        }
                    }
                };
                match instr.opcode {
                    Opcode::Br | Opcode::Brl | Opcode::Brct => {
                        // `BRCT`'s predicate is the tested condition, and
                        // a false guard squashes `BR`/`BRL`: either way
                        // `p0` means the branch is always taken.
                        branch_edges(edges);
                        if always {
                            fall_through = false;
                        }
                    }
                    Opcode::Brcf
                        // Branches when the guard is *false*; `p0` is
                        // hard-wired true, so a `p0` BRCF never leaves
                        // the fall-through path.
                        if !always => {
                            branch_edges(edges);
                        }
                    Opcode::Halt
                        if always => {
                            fall_through = false;
                        }
                    _ => {}
                }
            }
            if fall_through {
                edges.push((bi + 1, 1));
            }
            edges.sort_unstable();
            edges.dedup();
        }
        succs
    }

    // --- dataflow fixpoint ---------------------------------------------

    /// Computes the join-over-all-paths entry state of every reachable
    /// bundle (`None` = unreachable from the entry).
    fn solve_dataflow(&self, bundles: &[Vec<Instruction>], entry: u32) -> Vec<Option<Flow>> {
        let mut flow_in: Vec<Option<Flow>> = vec![None; bundles.len()];
        let entry = entry as usize;
        if entry >= bundles.len() {
            return flow_in;
        }
        let cfg = self.build_cfg(bundles);
        flow_in[entry] = Some(Flow::entry(&self.config));
        let mut worklist = vec![entry];
        while let Some(bi) = worklist.pop() {
            let input = flow_in[bi].clone().expect("worklist entries have state");
            let output = self.transfer(bi, &bundles[bi], &input, None);
            for &(succ, delta) in &cfg[bi] {
                let candidate = output.aged(delta);
                let changed = match &mut flow_in[succ] {
                    Some(existing) => existing.join(&candidate),
                    slot @ None => {
                        *slot = Some(candidate);
                        true
                    }
                };
                if changed && !worklist.contains(&succ) {
                    worklist.push(succ);
                }
            }
        }
        flow_in
    }

    /// Applies one bundle to the flow state. With a diagnostic sink the
    /// hazard checks report (VER004/VER005/VER006/VER011); without one
    /// this is the pure transfer function for the fixpoint.
    fn transfer(
        &self,
        bi: usize,
        bundle: &[Instruction],
        input: &Flow,
        mut diags: Option<&mut Vec<Diagnostic>>,
    ) -> Flow {
        let mut out = input.clone();
        let forwarding_extra = u32::from(!self.config.forwarding());

        // VER011: ALU demand against instances still held by a divide.
        // The issue stage interlocks (a `unit_busy` stall), so this is a
        // warning, like the scoreboard hazards. Demand comes from the
        // shared static cost model, exactly as the simulator's decoder
        // precomputes it.
        let alu_wanted = self.mdes.bundle_cost(bundle).demand(Unit::Alu);
        let alu_free = out.alu_busy.iter().filter(|&&c| c == 0).count();
        if alu_wanted > alu_free {
            if let Some(diags) = diags.as_deref_mut() {
                diags.push(
                    Diagnostic::warning(
                        "VER011",
                        format!(
                            "bundle issues {alu_wanted} ALU operation(s) but {} of {} \
                             ALU(s) may still be busy with a blocking divide; issue \
                             will stall",
                            out.alu_busy.len() - alu_free,
                            out.alu_busy.len()
                        ),
                    )
                    .with_bundle(bi, None),
                );
            }
        }

        for (slot, instr) in bundle.iter().enumerate() {
            if let Some(diags) = diags.as_deref_mut() {
                // VER004: reads racing a producer's latency. The
                // scoreboard interlocks, so this is a warning.
                for gpr in instr.gpr_reads() {
                    let Some(&wait) = input.gpr_wait.get(gpr.0 as usize) else {
                        continue; // out-of-range index, already VER007
                    };
                    if wait > 0 {
                        diags.push(
                            Diagnostic::warning(
                                "VER004",
                                format!(
                                    "{gpr} is read {wait} cycle(s) before its \
                                     producer's result is ready; the scoreboard \
                                     will interlock"
                                ),
                            )
                            .with_bundle(bi, Some(slot)),
                        );
                    }
                }

                // VER005: branches must go through a prepared BTR.
                if instr.opcode.is_branch() {
                    if let Some(btr) = instr.btr_read() {
                        let prepared = input.prepared.get(btr.0 as usize).copied().unwrap_or(false);
                        if !prepared {
                            diags.push(
                                Diagnostic::error(
                                    "VER005",
                                    format!(
                                        "{} branches through {btr}, which no \
                                         preceding PBR prepares on any path from \
                                         the entry",
                                        instr.opcode
                                    ),
                                )
                                .with_bundle(bi, Some(slot)),
                            );
                        }
                    }
                }

                // VER006: predicates consumed but never produced.
                for pred in instr.pred_reads() {
                    let defined = input.pred_def.get(pred.0 as usize).copied().unwrap_or(true);
                    if !defined {
                        diags.push(
                            Diagnostic::warning(
                                "VER006",
                                format!(
                                    "{pred} is read but never written on any path \
                                     from the entry"
                                ),
                            )
                            .with_bundle(bi, Some(slot)),
                        );
                    }
                }
            }

            // Transfer: book results, preparations and definitions.
            if let Some(gpr) = instr.gpr_write() {
                if let Some(wait) = out.gpr_wait.get_mut(gpr.0 as usize) {
                    *wait = self.mdes.latency(instr.opcode) + forwarding_extra;
                }
            }
            if let Some(btr) = instr.btr_write() {
                if let Some(prepared) = out.prepared.get_mut(btr.0 as usize) {
                    *prepared = true;
                }
            }
            for pred in instr.pred_writes() {
                if let Some(defined) = out.pred_def.get_mut(pred.0 as usize) {
                    *defined = true;
                }
            }
            if instr.opcode.unit() == Some(Unit::Alu) {
                let occupancy = self.mdes.occupancy(instr.opcode);
                if occupancy > 1 {
                    // Claim a free instance for the blocking divide; when
                    // none is free (already VER011) pin the least busy.
                    match out.alu_busy.iter_mut().find(|c| **c == 0) {
                        Some(instance) => *instance = occupancy,
                        None => {
                            if let Some(least) = out.alu_busy.iter_mut().min() {
                                *least = (*least).max(occupancy);
                            }
                        }
                    }
                }
            }
        }

        // Keep the interchangeable-instances invariant: sorted descending.
        out.alu_busy.sort_unstable_by(|a, b| b.cmp(a));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_asm::assemble;

    fn config() -> Config {
        Config::default()
    }

    fn verify(source: &str) -> Report {
        let config = config();
        let program = assemble(source, &config).expect("test program assembles");
        check(&program, &config)
    }

    #[test]
    fn clean_straight_line_program_passes() {
        let report = verify("MOVIL r1, #1\n;;\nADD r2, r1, #2\n;;\nHALT\n;;\n");
        assert!(!report.has_errors(), "{}", report.render("t", None));
    }

    #[test]
    fn latency_hazard_is_a_warning_not_an_error() {
        // LW has multi-cycle latency; consuming in the next bundle trips
        // the scoreboard, which the verifier reports as VER004.
        let report = verify("MOVIL r1, #0\n;;\nLW r2, r1, #0\n;;\nADD r3, r2, #1\n;;\nHALT\n;;\n");
        assert!(report.has_code("VER004"), "{}", report.render("t", None));
        assert!(!report.has_errors());
    }

    #[test]
    fn prepared_branch_passes_and_unprepared_branch_fails() {
        let good = verify("PBR b1, @done\n;;\nBR b1\n;;\ndone:\nHALT\n;;\n");
        assert!(!good.has_code("VER005"), "{}", good.render("good", None));

        let bad = verify("ADD r1, r1, #1\n;;\nBR b2\n;;\nHALT\n;;\n");
        assert!(bad.has_code("VER005"), "{}", bad.render("bad", None));
        assert!(bad.has_errors());
    }

    #[test]
    fn undefined_predicate_read_warns() {
        let report = verify("ADD r1, r1, #1 (p3)\n;;\nHALT\n;;\n");
        assert!(report.has_code("VER006"), "{}", report.render("t", None));
    }

    #[test]
    fn defined_predicate_read_is_clean() {
        let report = verify("CMP_LT p1, p2, r1, #4\n;;\nADD r2, r2, #1 (p1)\n;;\nHALT\n;;\n");
        assert!(!report.has_code("VER006"), "{}", report.render("t", None));
    }

    #[test]
    fn undefined_gpr_read_warns() {
        let report = verify("ADD r2, r1, #1\n;;\nHALT\n;;\n");
        assert!(report.has_code("VER013"), "{}", report.render("t", None));
        assert!(!report.has_errors());
    }

    #[test]
    fn defined_gpr_read_is_clean() {
        let report = verify("MOVIL r1, #5\n;;\nADD r2, r1, #1\n;;\nHALT\n;;\n");
        assert!(!report.has_code("VER013"), "{}", report.render("t", None));
    }

    #[test]
    fn guarded_only_write_read_unguarded_warns() {
        // Old false negative: r1 is written somewhere, but only when p1
        // holds — the unguarded read can observe the reset value.
        let report = verify(
            "MOVIL r2, #0\n;;\nCMP_LT p1, p2, r2, #4\n;;\nMOVIL r1, #5 (p1)\n;;\n\
             ADD r3, r1, #1\n;;\nHALT\n;;\n",
        );
        assert!(report.has_code("VER013"), "{}", report.render("t", None));
        assert!(!report.has_errors());
    }

    #[test]
    fn read_under_the_defining_guard_is_clean() {
        // The read executes only when p1 holds — exactly when the write
        // landed. If-converted code does this constantly.
        let report = verify(
            "MOVIL r2, #0\n;;\nCMP_LT p1, p2, r2, #4\n;;\nMOVIL r1, #5 (p1)\n;;\n\
             ADD r3, r1, #1 (p1)\n;;\nHALT\n;;\n",
        );
        assert!(!report.has_code("VER013"), "{}", report.render("t", None));
    }

    #[test]
    fn complementary_guarded_writes_are_a_full_definition() {
        // CMP writes p1 and its complement p2; a write under each covers
        // every path, so the unguarded read is clean.
        let report = verify(
            "MOVIL r2, #0\n;;\nCMP_LT p1, p2, r2, #4\n;;\nMOVIL r1, #5 (p1)\n;;\n\
             MOVIL r1, #9 (p2)\n;;\nADD r3, r1, #1\n;;\nHALT\n;;\n",
        );
        assert!(!report.has_code("VER013"), "{}", report.render("t", None));
    }

    #[test]
    fn provably_squashed_read_is_not_reported() {
        // Old false positive: p1 is never written, so it stays false and
        // the read never executes — undefined r1 is unobservable there.
        let report = verify("ADD r2, r1, #1 (p1)\n;;\nHALT\n;;\n");
        assert!(!report.has_code("VER013"), "{}", report.render("t", None));
    }

    #[test]
    fn gpr_written_on_one_path_does_not_warn() {
        // The branch path skips the write to r1, but the fall-through
        // path defines it: the may-join keeps VER013 quiet unless *no*
        // entry path writes the register.
        let report = verify(
            "MOVIL r2, #9\n;;\nPBR b1, @join\n;;\nCMP_LT p1, p2, r2, #4\n;;\n\
             BRCT b1 (p1)\n;;\nMOVIL r1, #1\n;;\njoin:\nADD r3, r1, #1\n;;\nHALT\n;;\n",
        );
        assert!(!report.has_code("VER013"), "{}", report.render("t", None));
    }

    #[test]
    fn divider_shadow_is_flagged_across_bundles() {
        // One ALU: the divide blocks it, so ALU work in the next bundle
        // cannot issue without a unit_busy stall.
        let config = Config::builder()
            .num_alus(1)
            .issue_width(2)
            .build()
            .unwrap();
        let source = "DIV r1, r2, r3\n;;\nADD r4, r5, r6\n;;\nHALT\n;;\n";
        let program = assemble(source, &config).expect("assembles");
        let report = check(&program, &config);
        assert!(report.has_code("VER011"), "{}", report.render("t", None));
    }

    #[test]
    fn divider_shadow_clears_after_the_latency_elapses() {
        let config = Config::builder()
            .num_alus(1)
            .issue_width(2)
            .build()
            .unwrap();
        let pad = "NOP\n;;\n".repeat(config.div_latency() as usize);
        let source = format!("DIV r1, r2, r3\n;;\n{pad}ADD r4, r5, r6\n;;\nHALT\n;;\n");
        let program = assemble(&source, &config).expect("assembles");
        let report = check(&program, &config);
        assert!(!report.has_code("VER011"), "{}", report.render("t", None));
    }

    #[test]
    fn entry_out_of_range_is_an_error() {
        let config = config();
        let program = assemble("HALT\n;;\n", &config).unwrap();
        let report = check_program(program.bundles(), 7, &config);
        assert!(report.has_code("VER012"));
    }

    #[test]
    fn port_budget_violation_is_flagged_on_raw_bundles() {
        use epic_isa::{Gpr, Operand};
        // 4 three-operand adds = 12 port-ops > 8; the assembler's own
        // bundle checker would reject this, so feed bundles directly.
        let config = Config::builder()
            .num_alus(4)
            .issue_width(4)
            .build()
            .unwrap();
        let add = |d: u16, a: u16, b: u16| {
            Instruction::alu3(
                Opcode::Add,
                Gpr(d),
                Operand::Gpr(Gpr(a)),
                Operand::Gpr(Gpr(b)),
            )
        };
        let bundles = vec![
            vec![add(1, 2, 3), add(4, 5, 6), add(7, 8, 9), add(10, 11, 12)],
            vec![Instruction::halt()],
        ];
        let report = check_program(&bundles, 0, &config);
        assert!(report.has_code("VER003"), "{}", report.render("t", None));
    }

    #[test]
    fn report_json_shape() {
        let report = verify("BR b1\n;;\nHALT\n;;\n");
        let json = report.to_json();
        assert!(json.starts_with("{\"errors\":"));
        assert!(json.contains("\"VER005\""));
    }
}
