//! `epic-lint`: static linter for EPIC assembly sources.
//!
//! Feeds a `.s` file through the existing assembler (so it accepts
//! exactly the language `epic-asm` accepts, for any configuration
//! header) and then runs the `epic-verify` static analyzer over the
//! assembled bundles, mapping every finding back to a source line:
//!
//! ```text
//! epic-lint <source.s> [--config <header.cfg>] [--format text|json]
//! ```
//!
//! Diagnostics are rendered rustc-style with caret lines (`--format
//! text`, the default) or as one JSON object (`--format json`). The
//! exit code is nonzero when any error-severity diagnostic is present;
//! warnings alone exit zero.

use epic_config::{header, Config};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    source: PathBuf,
    config: Option<PathBuf>,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut source = None;
    let mut config = None;
    let mut format = Format::Text;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let parse_format = |text: &str| match text {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (text or json)")),
        };
        match arg.as_str() {
            "--config" => {
                config = Some(PathBuf::from(iter.next().ok_or("--config needs a path")?));
            }
            "--format" => {
                format = parse_format(&iter.next().ok_or("--format needs a value")?)?;
            }
            "--help" | "-h" => {
                return Err("usage: epic-lint <source.s> [--config <header.cfg>] \
                            [--format text|json]"
                    .to_owned())
            }
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    format = parse_format(value)?;
                } else if !other.starts_with('-') {
                    source = Some(PathBuf::from(other));
                } else {
                    return Err(format!("unknown flag `{other}`"));
                }
            }
        }
    }
    Ok(Args {
        source: source.ok_or("no source file given (try --help)")?,
        config,
        format,
    })
}

/// Maps each bundle to the 1-based source lines of its instructions, in
/// slot order, by replaying the assembler's line discipline: `;;` alone
/// ends a bundle, `;` starts a comment, whole-line labels and `.entry`
/// carry no instruction.
fn bundle_lines(source: &str) -> Vec<Vec<usize>> {
    let mut map = Vec::new();
    let mut current = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed == ";;" {
            map.push(std::mem::take(&mut current));
            continue;
        }
        let code = match trimmed.find(';') {
            Some(pos) => trimmed[..pos].trim(),
            None => trimmed,
        };
        if code.is_empty() || code.starts_with(".entry") || code.ends_with(':') {
            continue;
        }
        current.push(idx + 1);
    }
    map
}

fn emit(diags: &[epic_asm::Diagnostic], origin: &str, source: &str, format: Format) {
    match format {
        Format::Text => {
            for diag in diags {
                eprint!("{}", diag.render(origin, Some(source)));
            }
            let errors = diags
                .iter()
                .filter(|d| d.severity == epic_asm::Severity::Error)
                .count();
            eprintln!(
                "{origin}: {} error(s), {} warning(s)",
                errors,
                diags.len() - errors
            );
        }
        Format::Json => {
            let body: Vec<String> = diags.iter().map(epic_asm::Diagnostic::to_json).collect();
            println!(
                "{{\"file\":\"{origin}\",\"diagnostics\":[{}]}}",
                body.join(",")
            );
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let config = match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            header::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Config::default(),
    };
    let source = std::fs::read_to_string(&args.source)
        .map_err(|e| format!("{}: {e}", args.source.display()))?;
    let origin = args.source.display().to_string();

    let program = match epic_asm::assemble(&source, &config) {
        Ok(program) => program,
        Err(err) => {
            // The source does not even assemble: report the assembler's
            // diagnostic through the same channel and fail.
            emit(&[err.to_diagnostic()], &origin, &source, args.format);
            return Ok(ExitCode::FAILURE);
        }
    };

    let report = epic_verify::check(&program, &config);
    let lines = bundle_lines(&source);
    let located: Vec<epic_asm::Diagnostic> = report
        .diagnostics()
        .iter()
        .map(|diag| {
            let mut diag = diag.clone();
            if diag.line == 0 {
                if let Some(bundle_map) = diag.bundle.and_then(|b| lines.get(b)) {
                    let line = diag
                        .slot
                        .and_then(|s| bundle_map.get(s))
                        .or_else(|| bundle_map.first());
                    diag.line = line.copied().unwrap_or(0);
                }
            }
            diag
        })
        .collect();

    emit(&located, &origin, &source, args.format);
    Ok(if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("epic-lint: {message}");
            ExitCode::FAILURE
        }
    }
}
