//! Differential CFG oracle: the verifier's dataflow results are only
//! sound if its static control-flow graph over-approximates what the
//! hardware can do. This test drives the reference simulator one cycle
//! at a time over every compiled workload and asserts that **every**
//! bundle-to-bundle transition it actually takes is an edge of
//! [`Verifier::cfg`] — across the full configuration grid the paper
//! explores.

use std::collections::BTreeSet;

use epic_core::config::Config;
use epic_core::ir::lower;
use epic_core::workloads::{self, Scale};
use epic_core::Toolchain;
use epic_sim::{Memory, ReferenceSimulator};
use epic_verify::Verifier;

const CYCLE_LIMIT: u64 = 2_000_000;

fn config(alus: usize, issue_width: usize) -> Config {
    Config::builder()
        .num_alus(alus)
        .issue_width(issue_width)
        .build()
        .expect("valid configuration")
}

/// Replays one program in the reference simulator and collects every
/// consecutive pair of executed bundle addresses. `SimStats::bundles`
/// ticks exactly once per execution event, so stall cycles (where
/// `last_executed` goes stale) contribute no edge, while a bundle
/// re-executing — a tight self-loop — still does.
fn dynamic_edges(
    program: &epic_asm::Program,
    module: &epic_core::ir::Module,
    config: &Config,
) -> BTreeSet<(usize, usize)> {
    let layout = module.layout().expect("module layout");
    let mut sim = ReferenceSimulator::new(config, program.bundles().to_vec(), program.entry());
    sim.set_memory(Memory::from_image(module.initial_memory(&layout)));
    sim.set_cycle_limit(CYCLE_LIMIT);

    let mut edges = BTreeSet::new();
    let mut prev: Option<u32> = None;
    let mut executed = 0u64;
    loop {
        let more = sim.step().expect("workload simulates");
        if sim.stats().bundles > executed {
            executed = sim.stats().bundles;
            let cur = sim
                .last_executed()
                .expect("an executed bundle has an address");
            if let Some(p) = prev {
                edges.insert((p as usize, cur as usize));
            }
            prev = Some(cur);
        }
        if !more {
            break;
        }
    }
    edges
}

#[test]
fn every_dynamic_edge_is_in_the_static_cfg() {
    for workload in workloads::all(Scale::Test) {
        let module = lower::lower(&workload.program).expect("lowering succeeds");
        for alus in 1..=4 {
            for issue_width in 1..=4 {
                let config = config(alus, issue_width);
                let run = Toolchain::new(config.clone())
                    .run_module(&module, &workload.entry, &[], &workload.inline_hints())
                    .expect("toolchain run succeeds");

                let cfg = Verifier::new(&config).cfg(run.program.bundles());
                let taken = dynamic_edges(&run.program, &module, &config);
                assert!(!taken.is_empty(), "{}: no executed edges", workload.name);
                for &(from, to) in &taken {
                    assert!(
                        cfg[from].iter().any(|&(succ, _)| succ == to),
                        "{} @ {alus} ALUs, issue width {issue_width}: the simulator \
                         went from bundle {from} to bundle {to}, but the static CFG \
                         has no such edge (successors of {from}: {:?})",
                        workload.name,
                        cfg[from]
                    );
                }
            }
        }
    }
}
