//! Differential oracle: cross-validates the static verifier against the
//! cycle-level simulator on every compiled workload.
//!
//! The soundness contract under test (see the crate docs):
//!
//! 1. Compiled output carries **no error diagnostics**, and error-free
//!    programs take **zero register-file port stalls**.
//! 2. If the report also has no `VER011` (divider shadow) warnings, the
//!    run takes **zero unit-busy stalls**.
//! 3. If the report also has no `VER004` (latency hazard) warnings, the
//!    run takes **zero data-hazard stalls**.

use epic_core::config::Config;
use epic_core::ir::lower;
use epic_core::workloads::{self, Scale};
use epic_core::Toolchain;

fn config(alus: usize, issue_width: usize) -> Config {
    Config::builder()
        .num_alus(alus)
        .issue_width(issue_width)
        .build()
        .expect("valid configuration")
}

/// Compiles, verifies and simulates one workload, then checks every tier
/// of the verifier's soundness contract against the observed stalls.
fn cross_validate(workload: &workloads::Workload, config: &Config) {
    let module = lower::lower(&workload.program).expect("lowering succeeds");
    let run = Toolchain::new(config.clone())
        .run_module(&module, &workload.entry, &[], &workload.inline_hints())
        .expect("toolchain run succeeds");

    let report = epic_verify::check(&run.program, config);
    let stats = run.stats();
    let label = format!(
        "{} @ {} ALUs, issue width {}",
        workload.name,
        config.num_alus(),
        config.issue_width()
    );

    assert!(
        !report.has_errors(),
        "{label}: compiled output must verify cleanly:\n{}",
        report.render(&workload.name, None)
    );
    assert_eq!(
        stats.stalls.regfile_port, 0,
        "{label}: error-free programs take no port stalls"
    );
    if !report.has_code("VER011") {
        assert_eq!(
            stats.stalls.unit_busy, 0,
            "{label}: no divider-shadow warning but the simulator stalled on a busy unit"
        );
    }
    if !report.has_code("VER004") {
        assert_eq!(
            stats.stalls.data_hazard, 0,
            "{label}: no latency-hazard warning but the simulator stalled on an operand"
        );
    }
}

#[test]
fn all_workloads_verify_and_match_the_simulator() {
    for workload in workloads::all(Scale::Test) {
        for alus in 1..=4 {
            for issue_width in 1..=4 {
                cross_validate(&workload, &config(alus, issue_width));
            }
        }
    }
}

/// The opt-in stall log attributes every counted stall to a bundle
/// address, with totals agreeing with the aggregate breakdown.
#[test]
fn stall_log_attributes_stalls_to_bundles() {
    use epic_core::sim::{Simulator, StallCause};

    let config = Config::default();
    // Nine register-file reads/writes in one bundle exceed the default
    // budget of eight, so issue pays exactly one port stall there.
    let source = "\
    ADD r1, r2, r3\n    ADD r4, r5, r6\n    ADD r7, r8, r9\n;;\n    HALT\n;;\n";
    let program = epic_core::asm::assemble(source, &config).expect("assembles");
    let mut sim = Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
        .expect("assembler output is always legal");
    sim.record_stalls(true);
    sim.run().expect("runs to HALT");

    let stats = *sim.stats();
    assert_eq!(stats.stalls.regfile_port, 1);
    let port_events: Vec<_> = sim
        .stall_log()
        .iter()
        .filter(|e| e.cause == StallCause::RegfilePort)
        .collect();
    assert_eq!(port_events.len(), 1, "one event per counted port stall");
    assert_eq!(port_events[0].pc, 0, "the wide bundle is at address 0");
    assert_eq!(
        sim.stall_log().len() as u64,
        stats.stalls.total(),
        "the log records every counted stall cycle"
    );

    // The verifier statically predicts the same violation.
    let report = epic_verify::check(&program, &config);
    assert!(report.has_code("VER003"));
}
