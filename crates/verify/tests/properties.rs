//! Property tests: randomly generated legal programs verify cleanly, and
//! seeded mutations of legal programs are flagged with the diagnostic
//! code matching the mutation class.

use epic_config::Config;
use epic_isa::{Btr, Gpr, Instruction, Opcode, Operand};
use proptest::prelude::*;

/// Single-cycle ALU opcodes (no latency windows, no unit occupancy), so
/// one-per-bundle programs built from them are legal by construction.
fn alu_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Min,
        Opcode::Max,
    ])
}

/// A legal three-address ALU instruction over low registers and short
/// literals (the default machine has 64 GPRs and ±16383 literals).
fn instr() -> impl Strategy<Value = Instruction> {
    (
        alu_op(),
        1u16..16,
        1u16..16,
        prop_oneof![
            (1u16..16).prop_map(|r| Operand::Gpr(Gpr(r))),
            (-100i64..100).prop_map(Operand::Lit),
        ],
    )
        .prop_map(|(op, dest, src1, src2)| {
            Instruction::alu3(op, Gpr(dest), Operand::Gpr(Gpr(src1)), src2)
        })
}

/// One instruction per bundle, terminated by `HALT`.
fn to_bundles(instrs: &[Instruction]) -> Vec<Vec<Instruction>> {
    let mut bundles: Vec<Vec<Instruction>> = instrs.iter().map(|i| vec![*i]).collect();
    bundles.push(vec![Instruction::halt()]);
    bundles
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn random_legal_programs_verify_cleanly(instrs in prop::collection::vec(instr(), 1..20)) {
        let config = Config::default();
        let bundles = to_bundles(&instrs);
        let report = epic_verify::check_program(&bundles, 0, &config);
        prop_assert!(
            !report.has_errors(),
            "legal program rejected:\n{}",
            report.render("generated", None)
        );
    }

    #[test]
    fn mutated_programs_are_flagged_with_the_matching_code(
        instrs in prop::collection::vec(instr(), 1..20),
        mutation in 0usize..6,
        pick in proptest::arbitrary::any::<u64>(),
    ) {
        let config = Config::default();
        let mut bundles = to_bundles(&instrs);
        let victim = (pick % instrs.len() as u64) as usize;
        let expected = match mutation {
            0 => {
                // Widen a source register past the file.
                bundles[victim][0].src1 = Operand::Gpr(Gpr(config.num_gprs() as u16));
                "VER007"
            }
            1 => {
                // Replace a source with an unencodable literal.
                let (_, max) = config.instruction_format().short_literal_range();
                bundles[victim][0].src2 = Operand::Lit(max + 1);
                "VER008"
            }
            2 => {
                // Two loads against the single LSU.
                bundles[victim] = vec![
                    Instruction::load(Opcode::Lw, Gpr(20), Operand::Gpr(Gpr(1)), Operand::Lit(0)),
                    Instruction::load(Opcode::Lw, Gpr(21), Operand::Gpr(Gpr(2)), Operand::Lit(4)),
                ];
                "VER002"
            }
            3 => {
                // Branch through a target register no PBR ever prepared.
                bundles.insert(victim, vec![Instruction::br(Btr(1))]);
                "VER005"
            }
            4 => {
                // Duplicate the instruction in its own bundle: two writes
                // to one register in one cycle.
                let copy = bundles[victim][0];
                bundles[victim].push(copy);
                "VER010"
            }
            _ => {
                // Slide an instruction behind the HALT.
                let last = bundles.len() - 1;
                let copy = bundles[victim][0];
                bundles[last].push(copy);
                "VER009"
            }
        };
        let report = epic_verify::check_program(&bundles, 0, &config);
        prop_assert!(
            report.has_code(expected),
            "mutation {mutation} should raise {expected}:\n{}",
            report.render("mutated", None)
        );
    }
}
