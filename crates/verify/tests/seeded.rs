//! Seeded violations: each class of schedule bug the verifier exists to
//! catch, flagged with its own diagnostic code and cross-checked against
//! the simulator (the machine either rejects the program outright or
//! pays observable stall cycles for it).

use epic_core::config::Config;
use epic_core::sim::Simulator;
use epic_isa::{Gpr, Instruction, Opcode, Operand};

fn assemble(source: &str, config: &Config) -> epic_core::asm::Program {
    epic_core::asm::assemble(source, config).expect("seed source assembles")
}

/// Port budget (VER003): nine register-file operations against the
/// default budget of eight. The simulator serialises the excess over an
/// extra controller cycle.
#[test]
fn seeded_port_budget_violation() {
    let config = Config::default();
    let source = "\
    ADD r1, r2, r3\n    ADD r4, r5, r6\n    ADD r7, r8, r9\n;;\n    HALT\n;;\n";
    let program = assemble(source, &config);

    let report = epic_verify::check(&program, &config);
    assert!(report.has_code("VER003"), "{}", report.render("seed", None));
    assert!(report.has_errors());

    let mut sim = Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
        .expect("legal program");
    sim.run().expect("runs");
    assert!(
        sim.stats().stalls.regfile_port > 0,
        "the hardware pays for it"
    );
}

/// Unit overcommit (VER002): two loads against the single LSU. The
/// assembler refuses such bundles, so they are built raw — and the
/// simulator refuses them too.
#[test]
fn seeded_unit_overcommit() {
    let config = Config::default();
    let bundles = vec![
        vec![
            Instruction::load(Opcode::Lw, Gpr(1), Operand::Gpr(Gpr(2)), Operand::Lit(0)),
            Instruction::load(Opcode::Lw, Gpr(3), Operand::Gpr(Gpr(4)), Operand::Lit(4)),
        ],
        vec![Instruction::halt()],
    ];

    let report = epic_verify::check_program(&bundles, 0, &config);
    assert!(report.has_code("VER002"), "{}", report.render("seed", None));
    assert!(report.has_errors());

    let result = Simulator::try_new(&config, bundles.clone(), 0);
    assert!(
        matches!(
            result,
            Err(epic_core::sim::SimError::IllegalBundle { pc: 0, .. })
        ),
        "the simulator rejects the bundle as well"
    );
}

/// Latency hazard (VER004): a multiply's consumer scheduled before the
/// result is ready. The interlock covers it with data-hazard stalls, so
/// this is a warning, not an error.
#[test]
fn seeded_latency_hazard() {
    // The default multiplier is single-cycle; a 4-cycle one leaves a
    // window the back-to-back consumer falls into.
    let config = Config::builder().mul_latency(4).build().expect("valid");
    let source = "\
    MULL r1, r2, r3\n;;\n    ADD r4, r1, r1\n;;\n    HALT\n;;\n";
    let program = assemble(source, &config);

    let report = epic_verify::check(&program, &config);
    assert!(report.has_code("VER004"), "{}", report.render("seed", None));
    assert!(!report.has_errors(), "interlocked hazards warn, not error");

    let mut sim = Simulator::try_new(&config, program.bundles().to_vec(), program.entry())
        .expect("legal program");
    sim.run().expect("runs");
    assert!(
        sim.stats().stalls.data_hazard > 0,
        "the interlock pays stalls"
    );
}

/// Unprepared BTR (VER005): a branch through a target register no `PBR`
/// on any path has written. The machine would redirect fetch to whatever
/// the register holds — an error, not a stall.
#[test]
fn seeded_unprepared_btr() {
    let config = Config::default();
    let source = "\
    ADD r1, r1, #1\n;;\nloop:\n    BR b1\n;;\n    HALT\n;;\n";
    let program = assemble(source, &config);

    let report = epic_verify::check(&program, &config);
    assert!(report.has_code("VER005"), "{}", report.render("seed", None));
    assert!(report.has_errors());
}

/// Encodability (VER008): a literal outside the instruction format's
/// short-literal field. The assembler rejects it at parse time; raw
/// bundles reach the verifier's own check.
#[test]
fn seeded_unencodable_literal() {
    let config = Config::default();
    let (_, max) = config.instruction_format().short_literal_range();
    let bundles = vec![
        vec![Instruction::alu3(
            Opcode::Add,
            Gpr(1),
            Operand::Gpr(Gpr(2)),
            Operand::Lit(max + 1),
        )],
        vec![Instruction::halt()],
    ];

    let report = epic_verify::check_program(&bundles, 0, &config);
    assert!(report.has_code("VER008"), "{}", report.render("seed", None));
    assert!(report.has_errors());

    // The assembler agrees that the literal does not fit.
    let source = format!("    ADD r1, r2, #{}\n;;\n    HALT\n;;\n", max + 1);
    assert!(epic_core::asm::assemble(&source, &config).is_err());
}

/// The five seeded classes carry five distinct diagnostic codes, so lint
/// output distinguishes them without reading the messages.
#[test]
fn seeded_classes_have_distinct_codes() {
    let codes = ["VER003", "VER002", "VER004", "VER005", "VER008"];
    let unique: std::collections::BTreeSet<_> = codes.iter().collect();
    assert_eq!(unique.len(), codes.len());
}
