//! The customisable EPIC processor and its tools, as one library.
//!
//! This crate is the front door of the reproduction of *"Customisable
//! EPIC Processor: Architecture and Tools"* (DATE 2004). It re-exports
//! the subsystem crates and adds the glue the paper's evaluation needs:
//!
//! * [`Toolchain`] — the compile → assemble → load → simulate pipeline
//!   for one processor configuration (the Trimaran + assembler + cycle
//!   simulator flow of §4–5);
//! * [`baseline`](run_sa110) — the same IR through the SA-110 code
//!   generator and timing model (the SimIt-ARM role);
//! * [`experiments`] — runners that regenerate Table 1, Figs. 3–5 and the
//!   §5.1 resource table, verifying every simulated output against the
//!   workload's golden model as they go;
//! * [`explore`] — design-space exploration across configurations
//!   (performance/area trade-offs, §1 and §3.3).
//!
//! # Examples
//!
//! Compile and run a small program on a 2-ALU machine:
//!
//! ```
//! use epic_core::{Toolchain};
//! use epic_config::Config;
//! use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
//!
//! let program = Program::new().function(
//!     FunctionDef::new("main", [] as [&str; 0])
//!         .body([Stmt::ret(Expr::lit(6) * Expr::lit(7))]),
//! );
//! let module = epic_ir::lower::lower(&program)?;
//! let toolchain = Toolchain::new(Config::builder().num_alus(2).build()?);
//! let run = toolchain.run_module(&module, "main", &[], &[])?;
//! assert_eq!(run.return_value(), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod explore;
mod toolchain;

pub use toolchain::{
    run_sa110, ArmRun, EngineOutcome, EngineRun, EpicRun, PreparedProgram, Toolchain,
    ToolchainError,
};

pub use epic_area as area;
pub use epic_array as array;
pub use epic_asm as asm;
pub use epic_compiler as compiler;
pub use epic_config as config;
pub use epic_ir as ir;
pub use epic_isa as isa;
pub use epic_mdes as mdes;
pub use epic_sa110 as sa110;
pub use epic_sim as sim;
pub use epic_workloads as workloads;
