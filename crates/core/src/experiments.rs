//! Runners that regenerate the paper's evaluation (§5).
//!
//! Every run is *self-validating*: after simulation the workload's output
//! global is compared byte-for-byte against its golden model, so a cycle
//! count only ever comes from a correct execution.
//!
//! * [`table1`] — the cycle-count table (SHA / AES / DCT / Dijkstra ×
//!   {SA-110, EPIC with 1–4 ALUs});
//! * [`figure_series`] — execution-time series of Figs. 3–5 (EPIC at
//!   41.8 MHz vs the SA-110 at 100 MHz);
//! * [`resource_usage`] — the §5.1 slices/BlockRAM table;
//! * [`headline_checks`] — the paper's qualitative claims as testable
//!   predicates (who wins, where the benchmark scales, where it is flat).

use crate::toolchain::{run_sa110, EngineRun, EpicRun, Toolchain, ToolchainError};
use epic_area::{sa110_execution_time, AreaModel};
use epic_array::{ArrayError, ArrayOutcome, ArraySimulator, MeshSpec};
use epic_compiler::superblock::ProfileData;
use epic_config::Config;
use epic_ir::lower;
use epic_ir::Module;
use epic_sim::{Engine, NopSink, ProfileSink, SimStats, TraceSink};
use epic_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::fmt;

/// Verification failure raised when a simulated output disagrees with the
/// golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Error from an experiment run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A pipeline stage failed.
    Toolchain(ToolchainError),
    /// The output did not match the golden model.
    Verify(VerifyError),
    /// A many-core array run failed (setup, per-core fault, timeout or
    /// undelivered traffic). Constructed explicitly — the blanket
    /// `From<Into<ToolchainError>>` below cannot absorb it.
    Array(ArrayError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Toolchain(e) => e.fmt(f),
            ExperimentError::Verify(e) => e.fmt(f),
            ExperimentError::Array(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl<E: Into<ToolchainError>> From<E> for ExperimentError {
    fn from(e: E) -> Self {
        ExperimentError::Toolchain(e.into())
    }
}

/// Runs one workload on one EPIC configuration, verifying the output.
///
/// # Errors
///
/// Returns any pipeline error or a [`VerifyError`] on a golden-model
/// mismatch.
pub fn run_epic_workload(
    workload: &Workload,
    config: &Config,
) -> Result<SimStats, ExperimentError> {
    Ok(*run_epic_workload_observed(workload, config, &mut NopSink)?.stats())
}

/// [`run_epic_workload`] with a [`TraceSink`] observing the simulation,
/// returning the full run (program, labels, final machine state) for
/// tools that map observations back to source — this is the entry point
/// of `epic-prof`.
///
/// On machines wide enough for superblock formation (issue width ≥ 2)
/// the run is *profile-guided*: a training compile with formation off
/// executes under a [`ProfileSink`], its per-block entry counts become
/// the [`ProfileData`] steering trace selection, and the measured run is
/// the recompile. The training pass compiles with formation off so the
/// emitted block labels name exactly the pre-formation blocks the
/// second compile selects traces over.
///
/// # Errors
///
/// Returns any pipeline error or a [`VerifyError`] on a golden-model
/// mismatch.
pub fn run_epic_workload_observed<S: TraceSink>(
    workload: &Workload,
    config: &Config,
    sink: &mut S,
) -> Result<EpicRun, ExperimentError> {
    let (toolchain, module, options) = compile_setup(workload, config)?;
    let run = toolchain.run_module_observed(&module, &options, sink)?;
    verify_workload_memory(workload, run.simulator.memory().bytes())?;
    Ok(run)
}

/// [`run_epic_workload`] on an explicitly selected simulation
/// [`Engine`], verifying the output and returning the full
/// [`EngineRun`].
///
/// The compile side — profile training included — is identical to
/// [`run_epic_workload_observed`], so the engines all execute the
/// same schedule and their statistics are directly comparable (and,
/// by the engines' contract, bit-identical).
///
/// # Errors
///
/// Returns any pipeline error or a [`VerifyError`] on a golden-model
/// mismatch.
pub fn run_epic_workload_with_engine(
    workload: &Workload,
    config: &Config,
    engine: Engine,
) -> Result<EngineRun, ExperimentError> {
    let (toolchain, module, options) = compile_setup(workload, config)?;
    let run = toolchain.run_module_engine(&module, &options, engine)?;
    verify_workload_memory(workload, run.outcome.memory.bytes())?;
    Ok(run)
}

/// Compiles a workload for a configuration — profile training included —
/// returning the toolchain and the prepared artefact *without* running
/// it. The throughput benchmarks use this to hoist the whole compiler
/// front end out of the timed region and race the engines over the
/// identical binary.
///
/// # Errors
///
/// Returns any compile-side pipeline error.
pub fn prepare_epic_workload(
    workload: &Workload,
    config: &Config,
) -> Result<(Toolchain, crate::toolchain::PreparedProgram), ExperimentError> {
    let (toolchain, module, options) = compile_setup(workload, config)?;
    let prepared = toolchain.prepare(&module, &options)?;
    Ok((toolchain, prepared))
}

/// A mesh workload compiled and laid out, ready to instantiate on any
/// mesh geometry: the same binary image boots on 1×1 up to N×M arrays
/// because the program reads its coordinates from the mailbox window.
#[derive(Debug)]
pub struct PreparedMesh {
    /// The compiled, assembled and validated program plus its initial
    /// memory image.
    pub prepared: crate::toolchain::PreparedProgram,
    /// Byte address of the `mesh_ctl` mailbox window in data memory.
    pub mailbox_base: u32,
}

/// Compiles a mesh workload for a configuration without running it.
///
/// Unlike [`prepare_epic_workload`] this skips profile training: the
/// mesh programs take per-core data-dependent paths (worker cores spin
/// on mailbox handshakes that never occur standalone), so a profile
/// trained on the single-core fallback path would steer superblock
/// formation away from exactly the code the array executes. The static
/// formation heuristics apply instead.
///
/// # Errors
///
/// Returns any compile-side pipeline error, or a [`VerifyError`] if the
/// workload's module has no `mesh_ctl` mailbox global.
pub fn prepare_mesh_workload(
    workload: &Workload,
    config: &Config,
) -> Result<PreparedMesh, ExperimentError> {
    let module = lower::lower(&workload.program)?;
    let layout = module.layout()?;
    let mailbox_base = layout
        .address_of(epic_array::mailbox::GLOBAL)
        .ok_or_else(|| {
            ExperimentError::Verify(VerifyError(format!(
                "{}: not a mesh workload (no `{}` global)",
                workload.name,
                epic_array::mailbox::GLOBAL
            )))
        })?;
    let toolchain = Toolchain::new(config.clone());
    let options = epic_compiler::Options {
        entry: workload.entry.clone(),
        inline_hints: workload.inline_hints(),
        ..epic_compiler::Options::default()
    };
    let prepared = toolchain.prepare(&module, &options)?;
    Ok(PreparedMesh {
        prepared,
        mailbox_base,
    })
}

/// A completed many-core run: the aggregate outcome plus the array
/// itself, so callers can inspect per-core registers and final memories
/// (the determinism battery compares them byte for byte).
#[derive(Debug)]
pub struct MeshRun {
    /// Aggregate statistics: lockstep cycles, per-core [`SimStats`],
    /// NoC counters.
    pub outcome: ArrayOutcome,
    /// The array after the run, for per-core inspection.
    pub array: ArraySimulator,
}

/// Instantiates a prepared mesh workload on the given geometry — no
/// recompile, so engine/geometry sweeps over one binary stay cheap.
///
/// # Errors
///
/// Returns an [`ArrayError`] from setup or the run.
pub fn instantiate_mesh(
    mesh: &PreparedMesh,
    config: &Config,
    spec: &MeshSpec,
) -> Result<ArraySimulator, ExperimentError> {
    ArraySimulator::new(
        config,
        mesh.prepared.program.bundles(),
        mesh.prepared.program.entry(),
        &mesh.prepared.initial_memory,
        mesh.mailbox_base,
        spec,
    )
    .map_err(ExperimentError::Array)
}

/// Compiles and runs one mesh workload on one array geometry, verifying
/// core 0's final memory against the workload's golden model (the mesh
/// protocols gather every result to core 0).
///
/// # Errors
///
/// Returns any pipeline error, an [`ArrayError`] from the lockstep run,
/// or a [`VerifyError`] on a golden-model mismatch.
pub fn run_mesh_workload(
    workload: &Workload,
    config: &Config,
    spec: &MeshSpec,
) -> Result<MeshRun, ExperimentError> {
    let mesh = prepare_mesh_workload(workload, config)?;
    let mut array = instantiate_mesh(&mesh, config, spec)?;
    let outcome = array.run().map_err(ExperimentError::Array)?;
    verify_workload_memory(workload, array.core(0).memory().bytes())?;
    Ok(MeshRun { outcome, array })
}

/// The shared compile-side setup of every EPIC workload run: lower the
/// program, build the compiler options, and (on machines wide enough
/// for superblock formation) train the profile.
fn compile_setup(
    workload: &Workload,
    config: &Config,
) -> Result<(Toolchain, Module, epic_compiler::Options), ExperimentError> {
    let module = lower::lower(&workload.program)?;
    let toolchain = Toolchain::new(config.clone());
    let mut options = epic_compiler::Options {
        entry: workload.entry.clone(),
        inline_hints: workload.inline_hints(),
        ..epic_compiler::Options::default()
    };
    if config.issue_width() >= 2 {
        options.profile = train_profile(&toolchain, &module, &options)?;
    }
    Ok((toolchain, module, options))
}

/// Checks a run's final data memory against the workload's golden model.
fn verify_workload_memory(workload: &Workload, bytes: &[u8]) -> Result<(), ExperimentError> {
    workload
        .verify_memory(|addr, len| -> Result<Vec<u8>, VerifyError> {
            let (start, end) = (addr as usize, (addr + len) as usize);
            if end > bytes.len() {
                return Err(VerifyError(format!("global at {addr:#x} overruns memory")));
            }
            Ok(bytes[start..end].to_vec())
        })
        .map_err(|m| ExperimentError::Verify(VerifyError(m)))
}

/// The training pass behind profile-guided superblock formation: compile
/// with formation off, simulate under a [`ProfileSink`], and fold the
/// per-address issue counts through the assembler's label table into
/// per-block entry counts (a block's entries are the issues of its first
/// bundle, the same attribution `epic_obs::BlockProfile` uses).
fn train_profile(
    toolchain: &Toolchain,
    module: &Module,
    options: &epic_compiler::Options,
) -> Result<Option<ProfileData>, ExperimentError> {
    let train_options = epic_compiler::Options {
        superblock: false,
        ..options.clone()
    };
    let mut train_sink = ProfileSink::default();
    let run = toolchain.run_module_observed(module, &train_options, &mut train_sink)?;
    let issues_at: HashMap<u32, u64> = train_sink.per_pc().map(|(pc, c)| (pc, c.issues)).collect();
    let mut profile = ProfileData::new();
    for (label, &addr) in run.program.labels() {
        profile.record(label.clone(), issues_at.get(&addr).copied().unwrap_or(0));
    }
    Ok((!profile.is_empty()).then_some(profile))
}

/// Runs one workload on the SA-110 baseline, verifying the output.
///
/// # Errors
///
/// Returns any pipeline error or a [`VerifyError`] on a golden-model
/// mismatch.
pub fn run_sa110_workload(workload: &Workload) -> Result<epic_sa110::ArmStats, ExperimentError> {
    let module = lower::lower(&workload.program)?;
    let run = run_sa110(&module, &workload.entry, &[], &workload.inline_hints())?;
    let layout = module.layout()?;
    workload
        .verify_memory(|addr, len| -> Result<Vec<u8>, VerifyError> {
            let _ = layout.data_end(); // layout checked above
            let bytes = run.simulator.memory();
            let (start, end) = (addr as usize, (addr + len) as usize);
            if end > bytes.len() {
                return Err(VerifyError(format!("global at {addr:#x} overruns memory")));
            }
            Ok(bytes[start..end].to_vec())
        })
        .map_err(|m| ExperimentError::Verify(VerifyError(m)))?;
    Ok(*run.stats())
}

/// One row of Table 1: cycle counts for a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// SA-110 cycles.
    pub sa110: u64,
    /// EPIC cycles per ALU count, in the order of [`Table1::alu_counts`].
    pub epic: Vec<u64>,
}

/// The reproduction of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// The problem scale that was run.
    pub scale: Scale,
    /// ALU counts of the EPIC columns (the paper uses 1..=4).
    pub alu_counts: Vec<usize>,
    /// One row per benchmark, Table 1 order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// The EPIC cycles for (workload, ALU count), if present.
    #[must_use]
    pub fn epic_cycles(&self, workload: &str, alus: usize) -> Option<u64> {
        let row = self.rows.iter().find(|r| r.workload == workload)?;
        let col = self.alu_counts.iter().position(|a| *a == alus)?;
        row.epic.get(col).copied()
    }

    /// The SA-110 cycles for a workload, if present.
    #[must_use]
    pub fn sa110_cycles(&self, workload: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.workload == workload)
            .map(|r| r.sa110)
    }

    /// Renders the table in the paper's layout (benchmarks as columns).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Table 1: clock cycles ({:?} scale)\n", self.scale));
        out.push_str(&format!("{:<10}", ""));
        for row in &self.rows {
            out.push_str(&format!("{:>14}", row.workload.to_uppercase()));
        }
        out.push('\n');
        out.push_str(&format!("{:<10}", "SA-110"));
        for row in &self.rows {
            out.push_str(&format!("{:>14}", row.sa110));
        }
        out.push('\n');
        for (col, alus) in self.alu_counts.iter().enumerate() {
            let label = if *alus == 1 {
                "1 ALU".to_owned()
            } else {
                format!("{alus} ALUs")
            };
            out.push_str(&format!("{label:<10}"));
            for row in &self.rows {
                out.push_str(&format!("{:>14}", row.epic[col]));
            }
            out.push('\n');
        }
        out
    }
}

/// Regenerates Table 1 at the given scale and ALU counts.
///
/// # Errors
///
/// Returns the first pipeline or verification error.
pub fn table1(scale: Scale, alu_counts: &[usize]) -> Result<Table1, ExperimentError> {
    let workloads = epic_workloads::all(scale);
    let mut rows = Vec::with_capacity(workloads.len());
    for workload in &workloads {
        let sa110 = run_sa110_workload(workload)?.cycles;
        let mut epic = Vec::with_capacity(alu_counts.len());
        for alus in alu_counts {
            let config = Config::builder()
                .num_alus(*alus)
                .build()
                .expect("valid ALU sweep configuration");
            epic.push(run_epic_workload(workload, &config)?.cycles);
        }
        rows.push(Table1Row {
            workload: workload.name.clone(),
            sa110,
            epic,
        });
    }
    Ok(Table1 {
        scale,
        alu_counts: alu_counts.to_vec(),
        rows,
    })
}

/// One execution-time series (a Fig. 3/4/5 bar set): seconds per machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// The workload plotted.
    pub workload: String,
    /// `(machine label, seconds)` pairs: SA-110 first, then the EPIC
    /// configurations.
    pub points: Vec<(String, f64)>,
}

impl FigureSeries {
    /// Renders the series as an ASCII bar chart.
    #[must_use]
    pub fn render(&self) -> String {
        let max = self.points.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);
        let mut out = format!("Execution time for {} (seconds)\n", self.workload);
        for (label, seconds) in &self.points {
            let bar = ((seconds / max) * 50.0).round() as usize;
            out.push_str(&format!(
                "{label:<8} {:<51} {seconds:.4}\n",
                "#".repeat(bar.max(1))
            ));
        }
        out
    }
}

/// Converts a Table 1 row into the execution-time series of Figs. 3–5:
/// the SA-110 at 100 MHz against the EPIC designs at 41.8 MHz.
#[must_use]
pub fn figure_series(table: &Table1, workload: &str) -> Option<FigureSeries> {
    let row = table.rows.iter().find(|r| r.workload == workload)?;
    let mut points = vec![("SA110".to_owned(), sa110_execution_time(row.sa110))];
    for (col, alus) in table.alu_counts.iter().enumerate() {
        let config = Config::builder().num_alus(*alus).build().ok()?;
        let model = AreaModel::new(&config);
        let label = if *alus == 1 {
            "1 ALU".to_owned()
        } else {
            format!("{alus} ALUs")
        };
        points.push((label, model.execution_time(row.epic[col])));
    }
    Some(FigureSeries {
        workload: workload.to_owned(),
        points,
    })
}

/// One row of the §5.1 resource table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRow {
    /// ALU count.
    pub alus: usize,
    /// Slices (paper: 4181 / 6779 / 9367 / ~11960 for 1–4).
    pub slices: u32,
    /// BlockRAMs (register file).
    pub block_rams: u32,
    /// Block multipliers.
    pub multipliers: u32,
    /// Clock in MHz (flat at 41.8).
    pub clock_mhz: f64,
}

/// Regenerates the §5.1 resource-usage sweep.
#[must_use]
pub fn resource_usage(alu_counts: &[usize]) -> Vec<ResourceRow> {
    alu_counts
        .iter()
        .map(|alus| {
            let config = Config::builder()
                .num_alus(*alus)
                .build()
                .expect("valid sweep configuration");
            let model = AreaModel::new(&config);
            ResourceRow {
                alus: *alus,
                slices: model.slices(),
                block_rams: model.block_rams(),
                multipliers: model.block_multipliers(),
                clock_mhz: model.clock_mhz(),
            }
        })
        .collect()
}

/// One qualitative claim from §5.2, evaluated against measured numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineCheck {
    /// What the paper claims.
    pub claim: String,
    /// Whether the reproduction shows the same shape.
    pub holds: bool,
    /// The measured numbers behind the verdict.
    pub detail: String,
}

/// Evaluates the paper's headline claims on a measured Table 1.
///
/// Absolute factors differ (our substrate is not the authors' testbed);
/// the *shape* — who wins, what scales, what stays flat — must hold.
#[must_use]
pub fn headline_checks(table: &Table1) -> Vec<HeadlineCheck> {
    let mut checks = Vec::new();
    let max_alus = table.alu_counts.iter().copied().max().unwrap_or(4);

    let scaling = |name: &str| -> Option<f64> {
        let one = table.epic_cycles(name, 1)? as f64;
        let four = table.epic_cycles(name, max_alus)? as f64;
        Some(one / four)
    };

    if let (Some(sha), Some(dct)) = (scaling("sha"), scaling("dct")) {
        checks.push(HeadlineCheck {
            claim: "arithmetic-intensive SHA and DCT speed up as ALUs increase".into(),
            holds: sha > 1.15 && dct > 1.15,
            detail: format!("1→{max_alus} ALU cycle ratios: SHA {sha:.2}x, DCT {dct:.2}x"),
        });
    }
    let scaling_from2 = |name: &str| -> Option<f64> {
        let two = table.epic_cycles(name, 2)? as f64;
        let four = table.epic_cycles(name, max_alus)? as f64;
        Some(two / four)
    };
    if let (Some(aes), Some(dij)) = (scaling_from2("aes"), scaling("dijkstra")) {
        checks.push(HeadlineCheck {
            claim: "AES and Dijkstra stay roughly flat in the number of ALUs".into(),
            holds: aes < 1.15 && dij < 1.3,
            detail: format!(
                "cycle ratios: AES 2→{max_alus} ALUs {aes:.2}x, Dijkstra 1→{max_alus} ALUs {dij:.2}x \
                 (our compiler still finds some ILP for AES between 1 and 2 ALUs; see EXPERIMENTS.md)"
            ),
        });
    }
    let cycle_ratio = |name: &str| -> Option<f64> {
        Some(table.sa110_cycles(name)? as f64 / table.epic_cycles(name, max_alus)? as f64)
    };
    if let (Some(sha), Some(dct), Some(dij)) = (
        cycle_ratio("sha"),
        cycle_ratio("dct"),
        cycle_ratio("dijkstra"),
    ) {
        checks.push(HeadlineCheck {
            claim: format!(
                "at equal clock the {max_alus}-ALU EPIC beats the SA-110 on SHA, DCT and Dijkstra, most on DCT"
            ),
            holds: sha > 1.0 && dct > 1.0 && dij > 1.0 && dct >= sha && dct >= dij,
            detail: format!("cycle ratios SA-110/EPIC: SHA {sha:.1}x, DCT {dct:.1}x, Dijkstra {dij:.1}x"),
        });
    }
    let wall = |name: &str| -> Option<(f64, f64)> {
        let config = Config::builder().num_alus(max_alus).build().ok()?;
        let model = AreaModel::new(&config);
        Some((
            sa110_execution_time(table.sa110_cycles(name)?),
            model.execution_time(table.epic_cycles(name, max_alus)?),
        ))
    };
    if let (Some(sha), Some(dct), Some(aes), Some(dij)) =
        (wall("sha"), wall("dct"), wall("aes"), wall("dijkstra"))
    {
        // Wall-clock advantage of the EPIC design (>1 means EPIC wins).
        let adv = |(arm, epic): (f64, f64)| arm / epic;
        let (sha_a, dct_a, aes_a, dij_a) = (adv(sha), adv(dct), adv(aes), adv(dij));
        checks.push(HeadlineCheck {
            claim: "at 41.8 vs 100 MHz the EPIC still wins SHA and DCT clearly, while the \
                    clock deficit makes AES and Dijkstra the SA-110's best benchmarks"
                .into(),
            holds: sha_a > 1.3 && dct_a > 1.3 && dij_a.min(aes_a) < sha_a.min(dct_a) && dij_a < 1.3,
            detail: format!(
                "EPIC wall-clock advantage: SHA {sha_a:.2}x, DCT {dct_a:.2}x, AES {aes_a:.2}x, \
                 Dijkstra {dij_a:.2}x (paper: SA-110 wins AES and Dijkstra outright; our \
                 reproduction reaches the crossover on Dijkstra only — see EXPERIMENTS.md)"
            ),
        });
    }
    checks
}
