//! The standalone processor: loads a machine-code image produced by
//! `epic-asm` and simulates it cycle by cycle, printing registers and the
//! stall breakdown — the ReaCT-ILP role from the paper's §5.
//!
//! ```text
//! epic-run <image.bin> [--config <header.cfg>] [--memory <bytes>]
//!          [--entry <bundle>] [--regs <n>] [--max-cycles <n>]
//! ```

use epic_asm::Program;
use epic_config::{header, Config};
use epic_sim::{Memory, Simulator};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    image: PathBuf,
    config: Option<PathBuf>,
    memory: u32,
    entry: u32,
    regs: usize,
    max_cycles: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut image = None;
    let mut config = None;
    let mut memory = 1 << 20;
    let mut entry = 0;
    let mut regs = 16;
    let mut max_cycles = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--config" => config = Some(PathBuf::from(value("--config")?)),
            "--memory" => {
                memory = value("--memory")?
                    .parse()
                    .map_err(|e| format!("--memory: {e}"))?;
            }
            "--entry" => {
                entry = value("--entry")?
                    .parse()
                    .map_err(|e| format!("--entry: {e}"))?;
            }
            "--regs" => {
                regs = value("--regs")?
                    .parse()
                    .map_err(|e| format!("--regs: {e}"))?;
            }
            "--max-cycles" => {
                max_cycles = Some(
                    value("--max-cycles")?
                        .parse()
                        .map_err(|e| format!("--max-cycles: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: epic-run <image.bin> [--config <header.cfg>] \
                            [--memory <bytes>] [--entry <bundle>] [--regs <n>] \
                            [--max-cycles <n>]"
                    .to_owned())
            }
            other if !other.starts_with('-') => image = Some(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        image: image.ok_or("no image given (try --help)")?,
        config,
        memory,
        entry,
        regs,
        max_cycles,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let config = match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            header::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Config::default(),
    };
    let bytes = std::fs::read(&args.image).map_err(|e| format!("{}: {e}", args.image.display()))?;
    let program = Program::from_bytes(&bytes, &config)
        .map_err(|e| format!("{}: {e}", args.image.display()))?;

    let mut sim = Simulator::try_new(&config, program.bundles().to_vec(), args.entry)
        .map_err(|e| e.to_string())?;
    sim.set_memory(Memory::new(args.memory));
    if let Some(limit) = args.max_cycles {
        sim.set_cycle_limit(limit);
    }
    sim.run().map_err(|e| e.to_string())?;

    println!("machine: {config}");
    println!("{}", sim.stats());
    println!("\nregisters:");
    for i in 0..args.regs.min(config.num_gprs()) {
        print!("  r{i:<3}{:>12}", sim.gpr(i) as i32);
        if i % 4 == 3 {
            println!();
        }
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("epic-run: {message}");
            ExitCode::FAILURE
        }
    }
}
