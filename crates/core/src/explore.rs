//! Design-space exploration.
//!
//! "Such customisable designs provide a platform for designers to explore
//! performance/area trade-offs for a specific application using different
//! implementations" (paper §1). This module sweeps configurations over a
//! workload, pairing measured cycles with modelled slices, and extracts
//! the Pareto frontier.

use crate::experiments::{run_epic_workload, ExperimentError};
use epic_area::{pareto_frontier, AreaModel, DesignPoint};
use epic_config::Config;
use epic_workloads::Workload;

/// A measured design point: configuration, cycles and area.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable description of the configuration.
    pub label: String,
    /// The configuration itself.
    pub config: Config,
    /// Verified cycle count for the workload.
    pub cycles: u64,
    /// Modelled slices.
    pub slices: u32,
}

/// Runs a workload across the given configurations.
///
/// # Errors
///
/// Returns the first pipeline or verification error.
pub fn sweep(
    workload: &Workload,
    configs: impl IntoIterator<Item = (String, Config)>,
) -> Result<Vec<SweepPoint>, ExperimentError> {
    let mut points = Vec::new();
    for (label, config) in configs {
        let stats = run_epic_workload(workload, &config)?;
        let slices = AreaModel::new(&config).slices();
        points.push(SweepPoint {
            label,
            config,
            cycles: stats.cycles,
            slices,
        });
    }
    Ok(points)
}

/// The standard ALU sweep (the paper's 1–4 ALU design points).
///
/// # Errors
///
/// Returns the first pipeline or verification error.
pub fn sweep_alus(
    workload: &Workload,
    alu_counts: &[usize],
) -> Result<Vec<SweepPoint>, ExperimentError> {
    sweep(
        workload,
        alu_counts.iter().map(|alus| {
            (
                format!("{alus} ALU"),
                Config::builder()
                    .num_alus(*alus)
                    .build()
                    .expect("valid sweep configuration"),
            )
        }),
    )
}

/// Extracts the Pareto-optimal points of a sweep (fewest cycles / fewest
/// slices), sorted by area.
#[must_use]
pub fn pareto(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let design_points: Vec<DesignPoint> = points
        .iter()
        .map(|p| DesignPoint {
            label: p.label.clone(),
            cycles: p.cycles,
            slices: p.slices,
        })
        .collect();
    let frontier = pareto_frontier(&design_points);
    frontier
        .into_iter()
        .filter_map(|d| points.iter().find(|p| p.label == d.label).cloned())
        .collect()
}

/// Renders a sweep as a performance/area table.
#[must_use]
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::from("configuration        cycles      slices  cycles*slices\n");
    for p in points {
        out.push_str(&format!(
            "{:<18} {:>9} {:>11} {:>14}\n",
            p.label,
            p.cycles,
            p.slices,
            p.cycles as u128 * u128::from(p.slices)
        ));
    }
    out
}
