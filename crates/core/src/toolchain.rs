//! The compile → assemble → load → simulate pipeline.

use epic_asm::{AsmError, Program};
use epic_compiler::{CompileError, CompiledProgram, Compiler, Options};
use epic_config::Config;
use epic_ir::{IrError, Module};
use epic_sa110::{ArmCodegenError, ArmSimError, ArmSimulator, ArmStats};
use epic_sim::{
    BlockSimulator, Engine, Memory, NopSink, ReferenceSimulator, SimError, SimStats, Simulator,
    ThreadedSimulator, TraceSink,
};
use std::error::Error;
use std::fmt;

/// Error from any stage of the pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum ToolchainError {
    /// IR lowering/layout failed.
    Ir(IrError),
    /// Compilation failed.
    Compile(CompileError),
    /// Assembly failed (a compiler bug if the source was generated).
    Asm(AsmError),
    /// Translation validation rejected a compiler pass (the rendered
    /// `epic-tv` report; always a compiler bug).
    Tv(String),
    /// Simulation faulted.
    Sim(SimError),
    /// Baseline code generation failed.
    ArmCodegen(ArmCodegenError),
    /// Baseline simulation faulted.
    ArmSim(ArmSimError),
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Ir(e) => write!(f, "ir: {e}"),
            ToolchainError::Compile(e) => write!(f, "compile: {e}"),
            ToolchainError::Asm(e) => write!(f, "assemble: {e}"),
            ToolchainError::Tv(report) => write!(f, "translation validation: {report}"),
            ToolchainError::Sim(e) => write!(f, "simulate: {e}"),
            ToolchainError::ArmCodegen(e) => write!(f, "baseline codegen: {e}"),
            ToolchainError::ArmSim(e) => write!(f, "baseline simulate: {e}"),
        }
    }
}

impl Error for ToolchainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToolchainError::Ir(e) => Some(e),
            ToolchainError::Compile(e) => Some(e),
            ToolchainError::Asm(e) => Some(e),
            ToolchainError::Tv(_) => None,
            ToolchainError::Sim(e) => Some(e),
            ToolchainError::ArmCodegen(e) => Some(e),
            ToolchainError::ArmSim(e) => Some(e),
        }
    }
}

impl From<IrError> for ToolchainError {
    fn from(e: IrError) -> Self {
        ToolchainError::Ir(e)
    }
}
impl From<CompileError> for ToolchainError {
    fn from(e: CompileError) -> Self {
        ToolchainError::Compile(e)
    }
}
impl From<AsmError> for ToolchainError {
    fn from(e: AsmError) -> Self {
        ToolchainError::Asm(e)
    }
}
impl From<SimError> for ToolchainError {
    fn from(e: SimError) -> Self {
        ToolchainError::Sim(e)
    }
}
impl From<ArmCodegenError> for ToolchainError {
    fn from(e: ArmCodegenError) -> Self {
        ToolchainError::ArmCodegen(e)
    }
}
impl From<ArmSimError> for ToolchainError {
    fn from(e: ArmSimError) -> Self {
        ToolchainError::ArmSim(e)
    }
}

/// A completed EPIC execution with every intermediate artefact.
#[derive(Debug)]
pub struct EpicRun {
    /// The compiler's output (assembly text + statistics).
    pub compiled: CompiledProgram,
    /// The assembled program (bundles, labels).
    pub program: Program,
    /// The simulator in its final state (registers, memory, statistics).
    pub simulator: Simulator,
}

impl EpicRun {
    /// Cycle-level statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        self.simulator.stats()
    }

    /// The entry function's return value (the ABI return register `r1`).
    #[must_use]
    pub fn return_value(&self) -> u32 {
        self.simulator.gpr(1)
    }

    /// Reads bytes of a global from the final data memory.
    ///
    /// # Errors
    ///
    /// Returns a message when the global is unknown or out of range.
    pub fn read_global(&self, module: &Module, name: &str, len: u32) -> Result<Vec<u8>, String> {
        let layout = module.layout().map_err(|e| e.to_string())?;
        let base = layout
            .address_of(name)
            .ok_or_else(|| format!("unknown global `{name}`"))?;
        let bytes = self.simulator.memory().bytes();
        if (base + len) as usize > bytes.len() {
            return Err(format!("global `{name}` overruns memory"));
        }
        Ok(bytes[base as usize..(base + len) as usize].to_vec())
    }
}

/// A compiled, assembled and translation-validated program together
/// with its initial data memory image: everything a simulation run
/// needs, with the whole compiler front end already paid for.
///
/// [`Toolchain::prepare`] produces one; [`Toolchain::run_prepared`] runs
/// it on any [`Engine`], as many times as the caller likes — the
/// throughput benchmarks hoist preparation out of the timed region this
/// way and race the engines over the identical artefact.
#[derive(Debug)]
pub struct PreparedProgram {
    /// The compiler's output (assembly text + statistics).
    pub compiled: CompiledProgram,
    /// The assembled program (bundles, labels).
    pub program: Program,
    /// Initial data memory image (the module layout's globals).
    pub initial_memory: Vec<u8>,
}

/// The observable end state of one simulation — the part of the machine
/// state the engines' bit-identity contract covers.
#[derive(Debug)]
pub struct EngineOutcome {
    /// Cycle-level statistics.
    pub stats: SimStats,
    /// The entry function's return value (the ABI return register `r1`).
    pub return_value: u32,
    /// The final data memory.
    pub memory: Memory,
    /// Basic blocks the block-compiled or threaded engine replayed on
    /// its folded fast path (always zero on the per-cycle engines).
    pub fast_block_execs: u64,
    /// Fast-path executions the threaded engine entered by chaining —
    /// directly from a predecessor's terminator, without returning to
    /// its dispatcher (always zero on the other engines).
    pub chained_execs: u64,
}

/// A completed EPIC execution on an explicitly selected [`Engine`].
///
/// Unlike [`EpicRun`], which owns the decoded [`Simulator`], this result
/// is engine-agnostic: it carries the compile artefacts plus the
/// [`EngineOutcome`] every engine must produce bit-identically.
#[derive(Debug)]
pub struct EngineRun {
    /// The compiler's output (assembly text + statistics).
    pub compiled: CompiledProgram,
    /// The assembled program (bundles, labels).
    pub program: Program,
    /// Which engine ran.
    pub engine: Engine,
    /// The run's observable end state.
    pub outcome: EngineOutcome,
}

impl EngineRun {
    /// Cycle-level statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.outcome.stats
    }

    /// The entry function's return value (the ABI return register `r1`).
    #[must_use]
    pub fn return_value(&self) -> u32 {
        self.outcome.return_value
    }
}

/// A completed SA-110 baseline execution.
#[derive(Debug)]
pub struct ArmRun {
    /// The simulator in its final state.
    pub simulator: ArmSimulator,
}

impl ArmRun {
    /// Timing-model statistics.
    #[must_use]
    pub fn stats(&self) -> &ArmStats {
        self.simulator.stats()
    }

    /// The entry function's return value (`r0`).
    #[must_use]
    pub fn return_value(&self) -> u32 {
        self.simulator.reg(0)
    }
}

/// The toolchain for one processor configuration.
#[derive(Debug, Clone)]
pub struct Toolchain {
    config: Config,
    compiler: Compiler,
}

impl Toolchain {
    /// Creates the toolchain for a configuration.
    #[must_use]
    pub fn new(config: Config) -> Self {
        let compiler = Compiler::new(config.clone());
        Toolchain { config, compiler }
    }

    /// The target configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Compiles, assembles, loads and runs a module.
    ///
    /// `inline_hints` usually comes from
    /// [`epic_ir::lower::inline_hints`]; `args` are passed to `entry` in
    /// the argument registers by the start-up stub.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn run_module(
        &self,
        module: &Module,
        entry: &str,
        args: &[u32],
        inline_hints: &[String],
    ) -> Result<EpicRun, ToolchainError> {
        let options = Options {
            entry: entry.to_owned(),
            entry_args: args.to_vec(),
            inline_hints: inline_hints.to_vec(),
            ..Options::default()
        };
        self.run_module_with(module, &options)
    }

    /// [`run_module`](Toolchain::run_module) with full compiler options
    /// (if-conversion off, optimisation off — for ablation studies).
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn run_module_with(
        &self,
        module: &Module,
        options: &Options,
    ) -> Result<EpicRun, ToolchainError> {
        self.run_module_observed(module, options, &mut NopSink)
    }

    /// [`run_module_with`](Toolchain::run_module_with) with a
    /// [`TraceSink`] observing the simulation.
    ///
    /// The simulator is monomorphised over the sink, so passing
    /// [`NopSink`] (what `run_module_with` does) compiles to the
    /// unobserved execution path. Plug in an `epic-obs` sink — a
    /// metrics registry, a Perfetto writer, a stall profiler — to
    /// watch the run cycle by cycle.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn run_module_observed<S: TraceSink>(
        &self,
        module: &Module,
        options: &Options,
        sink: &mut S,
    ) -> Result<EpicRun, ToolchainError> {
        let prepared = self.prepare(module, options)?;
        let mut simulator = Simulator::try_new(
            &self.config,
            prepared.program.bundles().to_vec(),
            prepared.program.entry(),
        )?;
        simulator.set_memory(Memory::from_image(prepared.initial_memory));
        simulator.run_with_sink(sink)?;
        Ok(EpicRun {
            compiled: prepared.compiled,
            program: prepared.program,
            simulator,
        })
    }

    /// Runs the compiler front end — compile, assemble, translation
    /// validation, memory layout — without simulating.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn prepare(
        &self,
        module: &Module,
        options: &Options,
    ) -> Result<PreparedProgram, ToolchainError> {
        let compiled = self.compiler.compile_with(module, options)?;
        let program = epic_asm::assemble(compiled.assembly(), &self.config)?;
        // Translation validation rides on the same trace the bundle
        // verifier uses, so `--no-verify` disables both together.
        if let Some(trace) = compiled.trace() {
            let report = epic_tv::validate_trace(trace, &program, &self.config);
            if report.has_errors() {
                return Err(ToolchainError::Tv(report.render("<pipeline>", None)));
            }
        }
        let layout = module.layout()?;
        let initial_memory = module.initial_memory(&layout);
        Ok(PreparedProgram {
            compiled,
            program,
            initial_memory,
        })
    }

    /// Runs a prepared program once on the selected engine.
    ///
    /// Every engine starts from the same artefact and must end in the
    /// same [`EngineOutcome`] (statistics, return value, memory) — the
    /// differential suites hold them to it bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a simulation fault, or the decoded engines' load-time
    /// bundle rejection.
    pub fn run_prepared(
        &self,
        prepared: &PreparedProgram,
        engine: Engine,
    ) -> Result<EngineOutcome, ToolchainError> {
        let bundles = prepared.program.bundles().to_vec();
        let entry = prepared.program.entry();
        let memory = Memory::from_image(prepared.initial_memory.clone());
        match engine {
            Engine::Reference => {
                let mut sim = ReferenceSimulator::new(&self.config, bundles, entry);
                sim.set_memory(memory);
                let stats = *sim.run()?;
                Ok(EngineOutcome {
                    stats,
                    return_value: sim.gpr(1),
                    memory: sim.memory().clone(),
                    fast_block_execs: 0,
                    chained_execs: 0,
                })
            }
            Engine::Decoded => {
                let mut sim = Simulator::try_new(&self.config, bundles, entry)?;
                sim.set_memory(memory);
                let stats = *sim.run()?;
                Ok(EngineOutcome {
                    stats,
                    return_value: sim.gpr(1),
                    memory: sim.memory().clone(),
                    fast_block_execs: 0,
                    chained_execs: 0,
                })
            }
            Engine::Block => {
                let mut sim = BlockSimulator::try_new(&self.config, bundles, entry)?;
                sim.set_memory(memory);
                let stats = *sim.run()?;
                Ok(EngineOutcome {
                    stats,
                    return_value: sim.gpr(1),
                    memory: sim.memory().clone(),
                    fast_block_execs: sim.fast_block_execs(),
                    chained_execs: 0,
                })
            }
            Engine::Threaded => {
                let mut sim = ThreadedSimulator::try_new(&self.config, bundles, entry)?;
                sim.set_memory(memory);
                let stats = *sim.run()?;
                Ok(EngineOutcome {
                    stats,
                    return_value: sim.gpr(1),
                    memory: sim.memory().clone(),
                    fast_block_execs: sim.fast_block_execs(),
                    chained_execs: sim.chained_execs(),
                })
            }
        }
    }

    /// Compiles, assembles, loads and runs a module on the selected
    /// [`Engine`] ([`prepare`](Toolchain::prepare) +
    /// [`run_prepared`](Toolchain::run_prepared)).
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn run_module_engine(
        &self,
        module: &Module,
        options: &Options,
        engine: Engine,
    ) -> Result<EngineRun, ToolchainError> {
        let prepared = self.prepare(module, options)?;
        let outcome = self.run_prepared(&prepared, engine)?;
        Ok(EngineRun {
            compiled: prepared.compiled,
            program: prepared.program,
            engine,
            outcome,
        })
    }
}

/// Runs a module on the SA-110 baseline: the same machine-independent
/// optimisations, then the ARM code generator and timing model.
///
/// # Errors
///
/// Returns the first pipeline error.
pub fn run_sa110(
    module: &Module,
    entry: &str,
    args: &[u32],
    inline_hints: &[String],
) -> Result<ArmRun, ToolchainError> {
    let mut optimised = module.clone();
    epic_compiler::passes::optimize(&mut optimised, inline_hints);
    let compiled = epic_sa110::compile(&optimised, entry, args)?;
    let layout = module.layout()?;
    let mut simulator = ArmSimulator::new(&compiled, module.initial_memory(&layout));
    simulator.run()?;
    Ok(ArmRun { simulator })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::ast::{Expr, FunctionDef, Program as Ast, Stmt};
    use epic_ir::lower;

    fn module(ast: &Ast) -> Module {
        lower::lower(ast).unwrap()
    }

    #[test]
    fn end_to_end_arithmetic() {
        let ast = Ast::new().function(
            FunctionDef::new("main", ["a", "b"])
                .body([Stmt::ret(Expr::var("a") * Expr::var("b") + Expr::lit(1))]),
        );
        let m = module(&ast);
        let run = Toolchain::new(Config::default())
            .run_module(&m, "main", &[6, 7], &[])
            .unwrap();
        assert_eq!(run.return_value(), 43);
        assert!(run.stats().cycles > 0);
    }

    #[test]
    fn epic_and_baseline_agree_on_results() {
        let ast = Ast::new()
            .global(epic_ir::Global::zeroed("out", 4))
            .function(FunctionDef::new("main", ["n"]).body([
                Stmt::let_("acc", Expr::lit(0)),
                Stmt::for_(
                    "i",
                    Expr::lit(1),
                    Expr::var("n") + Expr::lit(1),
                    [Stmt::assign(
                        "acc",
                        Expr::var("acc") + Expr::var("i") * Expr::var("i"),
                    )],
                ),
                Stmt::store_word(Expr::global("out"), Expr::var("acc")),
                Stmt::ret(Expr::var("acc")),
            ]));
        let m = module(&ast);
        let epic = Toolchain::new(Config::default())
            .run_module(&m, "main", &[10], &[])
            .unwrap();
        let arm = run_sa110(&m, "main", &[10], &[]).unwrap();
        let expected: u32 = (1..=10).map(|i| i * i).sum();
        assert_eq!(epic.return_value(), expected);
        assert_eq!(arm.return_value(), expected);
        // Memory images agree on the output global too.
        let bytes = epic.read_global(&m, "out", 4).unwrap();
        assert_eq!(bytes, expected.to_be_bytes());
    }

    #[test]
    fn all_engines_agree_on_a_prepared_program() {
        let ast = Ast::new()
            .global(epic_ir::Global::zeroed("out", 4))
            .function(FunctionDef::new("main", ["n"]).body([
                Stmt::let_("acc", Expr::lit(0)),
                Stmt::for_(
                    "i",
                    Expr::lit(1),
                    Expr::var("n") + Expr::lit(1),
                    [Stmt::assign(
                        "acc",
                        Expr::var("acc") + Expr::var("i") * Expr::var("i"),
                    )],
                ),
                Stmt::store_word(Expr::global("out"), Expr::var("acc")),
                Stmt::ret(Expr::var("acc")),
            ]));
        let m = module(&ast);
        let toolchain = Toolchain::new(Config::default());
        let options = Options {
            entry: "main".to_owned(),
            entry_args: vec![10],
            ..Options::default()
        };
        let prepared = toolchain.prepare(&m, &options).unwrap();
        let decoded = toolchain.run_prepared(&prepared, Engine::Decoded).unwrap();
        let reference = toolchain
            .run_prepared(&prepared, Engine::Reference)
            .unwrap();
        let block = toolchain.run_prepared(&prepared, Engine::Block).unwrap();
        let threaded = toolchain.run_prepared(&prepared, Engine::Threaded).unwrap();
        assert_eq!(decoded.stats, reference.stats);
        assert_eq!(decoded.stats, block.stats);
        assert_eq!(decoded.stats, threaded.stats);
        assert_eq!(decoded.return_value, reference.return_value);
        assert_eq!(decoded.return_value, block.return_value);
        assert_eq!(decoded.return_value, threaded.return_value);
        assert_eq!(decoded.memory.bytes(), reference.memory.bytes());
        assert_eq!(decoded.memory.bytes(), block.memory.bytes());
        assert_eq!(decoded.memory.bytes(), threaded.memory.bytes());
        let expected: u32 = (1..=10).map(|i| i * i).sum();
        assert_eq!(block.return_value, expected);
        assert_eq!(threaded.return_value, expected);
    }

    #[test]
    fn calls_work_end_to_end() {
        let sq = FunctionDef::new("sq", ["x"]).body([Stmt::ret(Expr::var("x") * Expr::var("x"))]);
        let main = FunctionDef::new("main", ["a"]).body([
            Stmt::let_("k", Expr::var("a") + Expr::lit(2)),
            Stmt::let_("r", Expr::call("sq", [Expr::var("k")])),
            Stmt::ret(Expr::var("r") + Expr::var("k")),
        ]);
        let ast = Ast::new().function(sq).function(main);
        let m = module(&ast);
        let run = Toolchain::new(Config::default())
            .run_module(&m, "main", &[3], &[])
            .unwrap();
        assert_eq!(run.return_value(), 30);
    }

    #[test]
    fn recursion_works_on_the_epic_machine() {
        let fib = FunctionDef::new("fib", ["n"]).body([
            Stmt::if_(
                Expr::var("n").lt_s(Expr::lit(2)),
                [Stmt::ret(Expr::var("n"))],
            ),
            Stmt::ret(
                Expr::call("fib", [Expr::var("n") - Expr::lit(1)])
                    + Expr::call("fib", [Expr::var("n") - Expr::lit(2)]),
            ),
        ]);
        let m = module(&Ast::new().function(fib));
        let run = Toolchain::new(Config::default())
            .run_module(&m, "fib", &[12], &[])
            .unwrap();
        assert_eq!(run.return_value(), 144);
    }

    #[test]
    fn wider_machines_are_not_slower() {
        let mut body = vec![Stmt::let_("acc", Expr::lit(0))];
        for i in 0..16 {
            body.push(Stmt::let_(
                format!("t{i}"),
                Expr::var("x") * Expr::lit(i + 1),
            ));
        }
        let mut total = Expr::var("t0");
        for i in 1..16 {
            total = total + Expr::var(format!("t{i}"));
        }
        body.push(Stmt::ret(total));
        let ast = Ast::new().function(FunctionDef::new("main", ["x"]).body(body));
        let m = module(&ast);
        let narrow = Toolchain::new(
            Config::builder()
                .num_alus(1)
                .issue_width(1)
                .build()
                .unwrap(),
        )
        .run_module(&m, "main", &[3], &[])
        .unwrap();
        let wide = Toolchain::new(Config::default())
            .run_module(&m, "main", &[3], &[])
            .unwrap();
        assert_eq!(narrow.return_value(), wide.return_value());
        assert!(wide.stats().cycles < narrow.stats().cycles);
    }
}
