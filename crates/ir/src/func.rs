//! Functions, basic blocks and the function builder.

use crate::ops::IrOp;
use std::fmt;

/// A virtual register. The register allocator later maps these onto the
/// configured GPR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a 0/1 condition register.
    Branch {
        /// The condition register (non-zero means taken).
        cond: VReg,
        /// Successor when the condition is true.
        then_block: BlockId,
        /// Successor when the condition is false.
        else_block: BlockId,
    },
    /// Function return with an optional value.
    Ret(Option<VReg>),
}

impl Terminator {
    /// Successor blocks, in branch order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Ret(_) => vec![],
        }
    }

    /// The register read by the terminator, if any.
    #[must_use]
    pub fn use_reg(&self) -> Option<VReg> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Ret(v) => *v,
            Terminator::Jump(_) => None,
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => write!(f, "branch {cond} ? {then_block} : {else_block}"),
            Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
            Terminator::Ret(None) => write!(f, "ret"),
        }
    }
}

/// A basic block: straight-line operations plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// The operations, in program order.
    pub ops: Vec<IrOp>,
    /// The terminator.
    pub term: Terminator,
}

/// A function: a named CFG over virtual registers.
///
/// Parameters arrive in `params` (already materialised as virtual
/// registers); the entry block is always `blocks[0]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function name (unique within a module).
    pub name: String,
    /// Parameter registers, in call order.
    pub params: Vec<VReg>,
    /// Basic blocks; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<Block>,
    /// Number of virtual registers in use (all `VReg` < this).
    pub vreg_count: u32,
}

impl Function {
    /// The entry block id.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (functions are built through
    /// [`FunctionBuilder`], which cannot produce dangling ids).
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    #[must_use]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// Predecessor lists indexed by block.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for block in &self.blocks {
            for succ in block.term.successors() {
                preds[succ.0 as usize].push(block.id);
            }
        }
        preds
    }

    /// Blocks reachable from the entry, in reverse postorder.
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::with_capacity(self.blocks.len());
        // Iterative DFS carrying an explicit successor cursor.
        let mut stack = vec![(self.entry(), 0usize)];
        visited[0] = true;
        while let Some((block, cursor)) = stack.pop() {
            let succs = self.block(block).term.successors();
            if cursor < succs.len() {
                stack.push((block, cursor + 1));
                let next = succs[cursor];
                if !visited[next.0 as usize] {
                    visited[next.0 as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                postorder.push(block);
            }
        }
        postorder.reverse();
        postorder
    }

    /// Total operation count across all blocks (terminators excluded).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for block in &self.blocks {
            writeln!(f, "{}:", block.id)?;
            for op in &block.ops {
                writeln!(f, "  {op}")?;
            }
            writeln!(f, "  {}", block.term)?;
        }
        write!(f, "}}")
    }
}

/// Incrementally constructs a [`Function`].
///
/// Blocks are created with [`new_block`](FunctionBuilder::new_block),
/// selected with [`switch_to`](FunctionBuilder::switch_to), filled with
/// [`push`](FunctionBuilder::push) and sealed with
/// [`terminate`](FunctionBuilder::terminate). Unterminated blocks receive
/// `ret` when the function is finished.
///
/// # Examples
///
/// ```
/// use epic_ir::{BinOp, FunctionBuilder, IrOp, Terminator};
///
/// let mut b = FunctionBuilder::new("double", 1);
/// let x = b.params()[0];
/// let two = b.new_vreg();
/// let out = b.new_vreg();
/// b.push(IrOp::Const { dest: two, value: 2 });
/// b.push(IrOp::Bin { op: BinOp::Mul, dest: out, lhs: x, rhs: two });
/// b.terminate(Terminator::Ret(Some(out)));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts a function with `param_count` parameter registers and an
    /// open entry block.
    #[must_use]
    pub fn new(name: impl Into<String>, param_count: usize) -> Self {
        let params: Vec<VReg> = (0..param_count as u32).map(VReg).collect();
        let func = Function {
            name: name.into(),
            params,
            blocks: vec![Block {
                id: BlockId(0),
                ops: Vec::new(),
                term: Terminator::Ret(None),
            }],
            vreg_count: param_count as u32,
        };
        FunctionBuilder {
            func,
            current: BlockId(0),
            terminated: vec![false],
        }
    }

    /// The parameter registers.
    #[must_use]
    pub fn params(&self) -> &[VReg] {
        &self.func.params
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Creates a new, empty, unterminated block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            id,
            ops: Vec::new(),
            term: Terminator::Ret(None),
        });
        self.terminated.push(false);
        id
    }

    /// The block currently receiving operations.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Redirects subsequent pushes to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Appends an operation to the current block.
    ///
    /// # Panics
    ///
    /// Panics when the current block is already terminated — that is a
    /// builder-usage bug, not a data error.
    pub fn push(&mut self, op: IrOp) {
        assert!(
            !self.terminated[self.current.0 as usize],
            "pushing into terminated block {}",
            self.current
        );
        self.func.block_mut(self.current).ops.push(op);
    }

    /// Seals the current block with a terminator.
    pub fn terminate(&mut self, term: Terminator) {
        if !self.terminated[self.current.0 as usize] {
            self.func.block_mut(self.current).term = term;
            self.terminated[self.current.0 as usize] = true;
        }
    }

    /// Whether the current block already has its terminator.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.terminated[self.current.0 as usize]
    }

    /// Finishes construction and returns the function.
    #[must_use]
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinOp;

    fn diamond() -> Function {
        // bb0 -> (bb1 | bb2) -> bb3
        let mut b = FunctionBuilder::new("diamond", 1);
        let cond = b.params()[0];
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.terminate(Terminator::Branch {
            cond,
            then_block: t,
            else_block: e,
        });
        b.switch_to(t);
        b.terminate(Terminator::Jump(join));
        b.switch_to(e);
        b.terminate(Terminator::Jump(join));
        b.switch_to(join);
        b.terminate(Terminator::Ret(None));
        b.finish()
    }

    #[test]
    fn predecessors_of_a_diamond() {
        let f = diamond();
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn reverse_postorder_visits_entry_first_and_join_last() {
        let f = diamond();
        let order = f.reverse_postorder();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], BlockId(0));
        assert_eq!(order[3], BlockId(3));
    }

    #[test]
    fn reverse_postorder_skips_unreachable_blocks() {
        let mut b = FunctionBuilder::new("f", 0);
        b.terminate(Terminator::Ret(None));
        let dead = b.new_block();
        b.switch_to(dead);
        b.terminate(Terminator::Ret(None));
        let f = b.finish();
        assert_eq!(f.reverse_postorder(), vec![BlockId(0)]);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn pushing_into_a_sealed_block_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.terminate(Terminator::Ret(None));
        let d = b.new_vreg();
        b.push(IrOp::Const { dest: d, value: 0 });
    }

    #[test]
    fn display_renders_cfg() {
        let mut b = FunctionBuilder::new("f", 2);
        let (x, y) = (b.params()[0], b.params()[1]);
        let d = b.new_vreg();
        b.push(IrOp::Bin {
            op: BinOp::Add,
            dest: d,
            lhs: x,
            rhs: y,
        });
        b.terminate(Terminator::Ret(Some(d)));
        let text = b.finish().to_string();
        assert!(text.contains("fn f(v0, v1)"));
        assert!(text.contains("v2 = add v0, v1"));
        assert!(text.contains("ret v2"));
    }
}
