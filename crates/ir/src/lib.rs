//! Compiler intermediate representation for the EPIC toolchain.
//!
//! The paper compiles C benchmarks through the Trimaran framework: the
//! IMPACT module performs machine-independent optimisation and elcor
//! schedules the result for the configured machine (§4.1). This crate is
//! the shared middle of that pipeline, rebuilt from scratch:
//!
//! * [`ast`] — a small C-like structured frontend in which the benchmark
//!   programs are written once (the role of the C sources fed to IMPACT);
//! * [`Module`], [`Function`], [`Block`] — a three-address-code IR over
//!   virtual registers with an explicit control-flow graph;
//! * [`lower`] — AST → IR lowering with global data layout;
//! * [`Interpreter`] — a reference executor defining the semantics that
//!   every backend (the EPIC simulator and the SA-110 baseline) must
//!   reproduce bit-for-bit. All integer semantics are 32-bit wrapping,
//!   big-endian in memory, matching the processor (§3.1).
//!
//! Both code generators (`epic-compiler` and `epic-sa110`) consume this
//! IR, mirroring how one Trimaran front end fed both the EPIC machine
//! description and the ARM comparison flow.
//!
//! # Examples
//!
//! Build `f(x) = x * x + 1` and run it on the reference interpreter:
//!
//! ```
//! use epic_ir::ast::{self, Expr, Stmt};
//! use epic_ir::{lower, Interpreter};
//!
//! let f = ast::FunctionDef::new("square_plus_one", ["x"])
//!     .body([Stmt::ret(Expr::var("x") * Expr::var("x") + Expr::lit(1))]);
//! let module = lower::lower(&ast::Program::new().function(f))?;
//! let mut interp = Interpreter::new(&module);
//! assert_eq!(interp.call("square_plus_one", &[9])?, Some(82));
//! # Ok::<(), epic_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
mod error;
mod func;
mod interp;
pub mod lower;
mod module;
mod ops;

pub use error::IrError;
pub use func::{Block, BlockId, Function, FunctionBuilder, Terminator, VReg};
pub use interp::{ExecStats, Interpreter};
pub use module::{Global, Layout, Module, DATA_BASE, STACK_SIZE, WORD_BYTES};
pub use ops::{BinOp, IrOp, LoadKind, StoreKind, UnOp};
