//! Shared backend-oriented IR analyses.
//!
//! Both code generators (the EPIC backend and the SA-110 baseline) fold a
//! single-use address `add` into the memory access it feeds — the EPIC
//! datapath's loads take `base + offset` with either operand a register,
//! and ARM has register-offset addressing. [`addr_folds`] finds the safe
//! sites once, with one set of rules, so the two backends cannot drift.

use crate::func::Function;
use crate::ops::{BinOp, IrOp};
use crate::VReg;
use std::collections::HashMap;

/// A fold decision at one `(block, op_index)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrFold {
    /// This add feeds exactly one memory access as its address; the
    /// backend skips it.
    SkipAdd,
    /// This memory access takes its address as `lhs + rhs` directly.
    Mem {
        /// Left address operand.
        lhs: VReg,
        /// Right address operand.
        rhs: VReg,
    },
}

/// Per-block live-out sets of virtual registers (classic backward
/// dataflow). Index matches `func.blocks`.
#[must_use]
pub fn block_live_out(func: &Function) -> Vec<std::collections::HashSet<VReg>> {
    use std::collections::HashSet;
    let n = func.blocks.len();
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for bi in (0..n).rev() {
            let block = &func.blocks[bi];
            let mut out: HashSet<VReg> = HashSet::new();
            for succ in block.term.successors() {
                out.extend(live_in[succ.0 as usize].iter().copied());
            }
            let mut live = out.clone();
            if let Some(u) = block.term.use_reg() {
                live.insert(u);
            }
            for op in block.ops.iter().rev() {
                if let Some(d) = op.def() {
                    live.remove(&d);
                }
                for u in op.uses() {
                    live.insert(u);
                }
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                changed = true;
            }
            if out != live_out[bi] {
                live_out[bi] = out;
                changed = true;
            }
        }
        if !changed {
            return live_out;
        }
    }
}

/// Occurrence counts of every virtual register as an operand (terminator
/// uses included).
#[must_use]
pub fn use_counts(func: &Function) -> HashMap<VReg, usize> {
    let mut counts: HashMap<VReg, usize> = HashMap::new();
    for block in &func.blocks {
        for op in &block.ops {
            for u in op.uses() {
                *counts.entry(u).or_insert(0) += 1;
            }
        }
        if let Some(u) = block.term.use_reg() {
            *counts.entry(u).or_insert(0) += 1;
        }
    }
    counts
}

/// Finds address adds foldable into register-offset memory accesses.
///
/// An `add` qualifies when (i) its destination has exactly one definition
/// and one use, (ii) that use is the base of a zero-offset load or store
/// later in the same block, and (iii) neither the destination nor the
/// add's operands are redefined in between. Keys are `(block id,
/// op index)`; both the skipped add and the rewritten access appear.
#[must_use]
pub fn addr_folds(func: &Function) -> HashMap<(u32, usize), AddrFold> {
    let uses = use_counts(func);
    let mut def_counts: HashMap<VReg, usize> = HashMap::new();
    for block in &func.blocks {
        for op in &block.ops {
            if let Some(d) = op.def() {
                *def_counts.entry(d).or_insert(0) += 1;
            }
        }
    }

    let mut folds = HashMap::new();
    for block in &func.blocks {
        for (i, op) in block.ops.iter().enumerate() {
            let IrOp::Bin {
                op: BinOp::Add,
                dest,
                lhs,
                rhs,
            } = op
            else {
                continue;
            };
            if uses.get(dest).copied().unwrap_or(0) != 1
                || def_counts.get(dest).copied().unwrap_or(0) != 1
            {
                continue;
            }
            let mut fold_target = None;
            for (j, later) in block.ops.iter().enumerate().skip(i + 1) {
                if later.uses().contains(dest) {
                    match later {
                        IrOp::Load {
                            base, offset: 0, ..
                        } if base == dest => fold_target = Some(j),
                        IrOp::Store {
                            base,
                            offset: 0,
                            value,
                            ..
                        } if base == dest && value != dest => fold_target = Some(j),
                        _ => {}
                    }
                    break;
                }
                if let Some(d) = later.def() {
                    if d == *dest || d == *lhs || d == *rhs {
                        break;
                    }
                }
            }
            if let Some(j) = fold_target {
                folds.insert((block.id.0, i), AddrFold::SkipAdd);
                folds.insert(
                    (block.id.0, j),
                    AddrFold::Mem {
                        lhs: *lhs,
                        rhs: *rhs,
                    },
                );
            }
        }
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, FunctionDef, Program, Stmt};
    use crate::lower;

    fn func_of(f: FunctionDef) -> Function {
        lower::lower(
            &Program::new()
                .global(crate::Global::zeroed("g", 64))
                .function(f),
        )
        .unwrap()
        .functions
        .remove(0)
    }

    #[test]
    fn single_use_address_add_folds() {
        let f = func_of(
            FunctionDef::new("f", ["i"])
                .body([Stmt::ret((Expr::global("g") + Expr::var("i")).load_word())]),
        );
        let folds = addr_folds(&f);
        assert_eq!(folds.len(), 2, "one skip + one rewrite: {folds:?}");
        assert!(folds.values().any(|f| matches!(f, AddrFold::SkipAdd)));
        assert!(folds.values().any(|f| matches!(f, AddrFold::Mem { .. })));
    }

    #[test]
    fn multi_use_address_does_not_fold() {
        // The address is used by a load and a store: keep the add.
        let f = func_of(FunctionDef::new("f", ["i"]).body([
            Stmt::let_("a", Expr::global("g") + Expr::var("i")),
            Stmt::store_word(Expr::var("a"), Expr::lit(1)),
            Stmt::ret(Expr::var("a").load_word()),
        ]));
        // `a` is a Copy of the add in lowered form; the add itself has one
        // use (the copy), which is not a memory op — no fold.
        assert!(addr_folds(&f).is_empty());
    }

    #[test]
    fn redefined_operand_blocks_the_fold() {
        // The operand is redefined between add and load.
        let f = func_of(FunctionDef::new("f", ["i"]).body([
            Stmt::let_("x", Expr::var("i") + Expr::lit(0)),
            Stmt::ret(Expr::var("x").load_word()),
        ]));
        // (The exact IR shape is load-bearing here only in that the pass
        // must never fold when `uses != 1`; just check it does not panic
        // and produces a consistent map.)
        let folds = addr_folds(&f);
        assert!(folds.len().is_multiple_of(2));
    }

    #[test]
    fn use_counts_include_terminators() {
        let f = func_of(FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("x"))]));
        let counts = use_counts(&f);
        assert!(counts.values().any(|c| *c >= 1));
    }
}
