//! The reference interpreter.
//!
//! Defines the semantics every backend must reproduce: 32-bit wrapping
//! arithmetic, big-endian memory, division by zero yielding zero, aligned
//! word and half-word accesses. Workload tests run the same program here,
//! on the EPIC cycle-level simulator and on the SA-110 baseline, and
//! require bit-identical memory and return values.

use crate::error::IrError;
use crate::func::{BlockId, Function, Terminator};
use crate::module::{Layout, Module};
use crate::ops::{IrOp, LoadKind, StoreKind};

/// Execution statistics gathered by the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// IR operations executed (terminators included).
    pub steps: u64,
    /// Function calls performed.
    pub calls: u64,
    /// Memory loads performed.
    pub loads: u64,
    /// Memory stores performed.
    pub stores: u64,
}

/// The reference executor for IR modules.
///
/// Memory persists across [`call`](Interpreter::call)s, so a program can
/// be driven as `init()` … `kernel()` … with results inspected through
/// [`read_word`](Interpreter::read_word) between calls.
///
/// # Examples
///
/// ```
/// use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
/// use epic_ir::{lower, Interpreter};
///
/// let f = FunctionDef::new("add", ["a", "b"])
///     .body([Stmt::ret(Expr::var("a") + Expr::var("b"))]);
/// let module = lower::lower(&Program::new().function(f))?;
/// let mut interp = Interpreter::new(&module);
/// assert_eq!(interp.call("add", &[2, 3])?, Some(5));
/// # Ok::<(), epic_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    layout: Layout,
    memory: Vec<u8>,
    stats: ExecStats,
    step_limit: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with freshly initialised data memory.
    ///
    /// # Panics
    ///
    /// Panics if the module's layout is invalid (duplicate globals);
    /// lowering already rejects such modules.
    #[must_use]
    pub fn new(module: &'m Module) -> Self {
        let layout = module.layout().expect("module layout is valid");
        let memory = module.initial_memory(&layout);
        Interpreter {
            module,
            layout,
            memory,
            stats: ExecStats::default(),
            step_limit: 20_000_000_000,
        }
    }

    /// Caps the number of IR steps before execution aborts with
    /// [`IrError::StepLimit`] (a runaway-loop backstop for tests).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The module's memory layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The data memory.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reads a big-endian word from data memory.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::OutOfBoundsAccess`] or
    /// [`IrError::MisalignedAccess`].
    pub fn read_word(&self, address: u32) -> Result<u32, IrError> {
        check_access(address, 4, self.memory.len() as u32)?;
        let a = address as usize;
        Ok(u32::from_be_bytes([
            self.memory[a],
            self.memory[a + 1],
            self.memory[a + 2],
            self.memory[a + 3],
        ]))
    }

    /// Reads `len` raw bytes from data memory.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::OutOfBoundsAccess`] when the range overruns.
    pub fn read_bytes(&self, address: u32, len: u32) -> Result<&[u8], IrError> {
        if u64::from(address) + u64::from(len) > self.memory.len() as u64 {
            return Err(IrError::OutOfBoundsAccess {
                address,
                memory_size: self.memory.len() as u32,
            });
        }
        Ok(&self.memory[address as usize..(address + len) as usize])
    }

    /// Writes a big-endian word to data memory.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::OutOfBoundsAccess`] or
    /// [`IrError::MisalignedAccess`].
    pub fn write_word(&mut self, address: u32, value: u32) -> Result<(), IrError> {
        check_access(address, 4, self.memory.len() as u32)?;
        self.memory[address as usize..address as usize + 4].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Calls a function by name and returns its optional result.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownFunction`], [`IrError::ArityMismatch`],
    /// any memory fault, or [`IrError::StepLimit`].
    pub fn call(&mut self, name: &str, args: &[u32]) -> Result<Option<u32>, IrError> {
        let function = self
            .module
            .function(name)
            .ok_or_else(|| IrError::UnknownFunction {
                name: name.to_owned(),
            })?;
        if function.params.len() != args.len() {
            return Err(IrError::ArityMismatch {
                function: name.to_owned(),
                expected: function.params.len(),
                found: args.len(),
            });
        }
        self.exec(function, args)
    }

    fn exec(&mut self, function: &'m Function, args: &[u32]) -> Result<Option<u32>, IrError> {
        let mut regs = vec![0u32; function.vreg_count as usize];
        for (param, value) in function.params.iter().zip(args) {
            regs[param.0 as usize] = *value;
        }
        let mut block = BlockId(0);
        loop {
            let b = function.block(block);
            for op in &b.ops {
                self.stats.steps += 1;
                if self.stats.steps > self.step_limit {
                    return Err(IrError::StepLimit {
                        limit: self.step_limit,
                    });
                }
                self.exec_op(op, &mut regs)?;
            }
            self.stats.steps += 1;
            match &b.term {
                Terminator::Jump(next) => block = *next,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    block = if regs[cond.0 as usize] != 0 {
                        *then_block
                    } else {
                        *else_block
                    };
                }
                Terminator::Ret(value) => {
                    return Ok(value.map(|v| regs[v.0 as usize]));
                }
            }
        }
    }

    fn exec_op(&mut self, op: &IrOp, regs: &mut [u32]) -> Result<(), IrError> {
        match op {
            IrOp::Const { dest, value } => regs[dest.0 as usize] = *value as u32,
            IrOp::Bin { op, dest, lhs, rhs } => {
                regs[dest.0 as usize] = op.eval(regs[lhs.0 as usize], regs[rhs.0 as usize]);
            }
            IrOp::Un { op, dest, src } => {
                regs[dest.0 as usize] = op.eval(regs[src.0 as usize]);
            }
            IrOp::Copy { dest, src } => regs[dest.0 as usize] = regs[src.0 as usize],
            IrOp::Load {
                kind,
                dest,
                base,
                offset,
            } => {
                self.stats.loads += 1;
                let address = regs[base.0 as usize].wrapping_add(*offset as u32);
                regs[dest.0 as usize] = self.load(*kind, address)?;
            }
            IrOp::Store {
                kind,
                value,
                base,
                offset,
            } => {
                self.stats.stores += 1;
                let address = regs[base.0 as usize].wrapping_add(*offset as u32);
                self.store(*kind, address, regs[value.0 as usize])?;
            }
            IrOp::Call { callee, args, dest } => {
                self.stats.calls += 1;
                let arg_values: Vec<u32> = args.iter().map(|a| regs[a.0 as usize]).collect();
                let function =
                    self.module
                        .function(callee)
                        .ok_or_else(|| IrError::UnknownFunction {
                            name: callee.clone(),
                        })?;
                let result = self.exec(function, &arg_values)?;
                if let Some(d) = dest {
                    regs[d.0 as usize] = result.unwrap_or(0);
                }
            }
        }
        Ok(())
    }

    fn load(&self, kind: LoadKind, address: u32) -> Result<u32, IrError> {
        check_access(address, kind.bytes(), self.memory.len() as u32)?;
        let a = address as usize;
        Ok(match kind {
            LoadKind::Word => u32::from_be_bytes([
                self.memory[a],
                self.memory[a + 1],
                self.memory[a + 2],
                self.memory[a + 3],
            ]),
            LoadKind::Half => {
                i32::from(i16::from_be_bytes([self.memory[a], self.memory[a + 1]])) as u32
            }
            LoadKind::HalfU => u32::from(u16::from_be_bytes([self.memory[a], self.memory[a + 1]])),
            LoadKind::Byte => i32::from(self.memory[a] as i8) as u32,
            LoadKind::ByteU => u32::from(self.memory[a]),
        })
    }

    fn store(&mut self, kind: StoreKind, address: u32, value: u32) -> Result<(), IrError> {
        check_access(address, kind.bytes(), self.memory.len() as u32)?;
        let a = address as usize;
        match kind {
            StoreKind::Word => {
                self.memory[a..a + 4].copy_from_slice(&value.to_be_bytes());
            }
            StoreKind::Half => {
                self.memory[a..a + 2].copy_from_slice(&(value as u16).to_be_bytes());
            }
            StoreKind::Byte => self.memory[a] = value as u8,
        }
        Ok(())
    }
}

fn check_access(address: u32, bytes: u32, memory_size: u32) -> Result<(), IrError> {
    if u64::from(address) + u64::from(bytes) > u64::from(memory_size) {
        return Err(IrError::OutOfBoundsAccess {
            address,
            memory_size,
        });
    }
    if !address.is_multiple_of(bytes) {
        return Err(IrError::MisalignedAccess {
            address,
            alignment: bytes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, FunctionDef, Program, Stmt};
    use crate::lower;
    use crate::module::Global;

    fn run(program: &Program, func: &str, args: &[u32]) -> Option<u32> {
        let module = lower::lower(program).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call(func, args).unwrap()
    }

    #[test]
    fn loops_and_arithmetic() {
        let f = FunctionDef::new("sum", ["n"]).body([
            Stmt::let_("acc", Expr::lit(0)),
            Stmt::for_(
                "i",
                Expr::lit(0),
                Expr::var("n"),
                [Stmt::assign("acc", Expr::var("acc") + Expr::var("i"))],
            ),
            Stmt::ret(Expr::var("acc")),
        ]);
        assert_eq!(run(&Program::new().function(f), "sum", &[10]), Some(45));
    }

    #[test]
    fn if_else_both_arms() {
        let f = FunctionDef::new("abs", ["x"]).body([
            Stmt::let_("r", Expr::var("x")),
            Stmt::if_(
                Expr::var("x").lt_s(Expr::lit(0)),
                [Stmt::assign("r", -Expr::var("x"))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let p = Program::new().function(f);
        assert_eq!(run(&p, "abs", &[5]), Some(5));
        assert_eq!(run(&p, "abs", &[(-5i32) as u32]), Some(5));
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let sq = FunctionDef::new("sq", ["x"]).body([Stmt::ret(Expr::var("x") * Expr::var("x"))]);
        let main = FunctionDef::new("main", ["a"]).body([Stmt::ret(
            Expr::call("sq", [Expr::var("a")]) + Expr::call("sq", [Expr::lit(3)]),
        )]);
        let p = Program::new().function(sq).function(main);
        assert_eq!(run(&p, "main", &[4]), Some(25));
    }

    #[test]
    fn recursion_works() {
        let fib = FunctionDef::new("fib", ["n"]).body([
            Stmt::if_(
                Expr::var("n").lt_s(Expr::lit(2)),
                [Stmt::ret(Expr::var("n"))],
            ),
            Stmt::ret(
                Expr::call("fib", [Expr::var("n") - Expr::lit(1)])
                    + Expr::call("fib", [Expr::var("n") - Expr::lit(2)]),
            ),
        ]);
        assert_eq!(run(&Program::new().function(fib), "fib", &[10]), Some(55));
    }

    #[test]
    fn memory_is_big_endian_and_persistent() {
        let init = FunctionDef::new("init", [] as [&str; 0]).body([
            Stmt::store_word(Expr::global("buf"), Expr::lit(0x0102_0304)),
            Stmt::store_byte(Expr::global("buf") + Expr::lit(4), Expr::lit(0xAB)),
        ]);
        let read = FunctionDef::new("read", [] as [&str; 0]).body([Stmt::ret(
            Expr::global("buf").load_word() + (Expr::global("buf") + Expr::lit(4)).load_byte_u(),
        )]);
        let p = Program::new()
            .global(Global::zeroed("buf", 8))
            .function(init)
            .function(read);
        let module = lower::lower(&p).unwrap();
        let mut interp = Interpreter::new(&module);
        interp.call("init", &[]).unwrap();
        let base = interp.layout().address_of("buf").unwrap();
        assert_eq!(interp.read_bytes(base, 5).unwrap(), &[1, 2, 3, 4, 0xAB]);
        assert_eq!(interp.call("read", &[]).unwrap(), Some(0x0102_0304 + 0xAB));
    }

    #[test]
    fn sign_extension_on_sub_word_loads() {
        let p = Program::new()
            .global(Global::with_bytes("b", vec![0xFF, 0x80, 0x7F, 0x00]))
            .function(
                FunctionDef::new("f", [] as [&str; 0])
                    .body([Stmt::ret(Expr::global("b").load_byte_s())]),
            )
            .function(
                FunctionDef::new("g", [] as [&str; 0])
                    .body([Stmt::ret(Expr::global("b").load_half_s())]),
            )
            .function(
                FunctionDef::new("h", [] as [&str; 0])
                    .body([Stmt::ret(Expr::global("b").load_half_u())]),
            );
        let module = lower::lower(&p).unwrap();
        let mut i = Interpreter::new(&module);
        assert_eq!(i.call("f", &[]).unwrap(), Some(-1i32 as u32));
        assert_eq!(i.call("g", &[]).unwrap(), Some(-128i32 as u32));
        assert_eq!(i.call("h", &[]).unwrap(), Some(0xFF80));
    }

    #[test]
    fn misaligned_word_access_faults() {
        let f = FunctionDef::new("f", [] as [&str; 0])
            .body([Stmt::ret((Expr::global("buf") + Expr::lit(1)).load_word())]);
        let p = Program::new().global(Global::zeroed("buf", 8)).function(f);
        let module = lower::lower(&p).unwrap();
        let mut i = Interpreter::new(&module);
        assert!(matches!(
            i.call("f", &[]),
            Err(IrError::MisalignedAccess { .. })
        ));
    }

    #[test]
    fn out_of_bounds_access_faults() {
        let f = FunctionDef::new("f", [] as [&str; 0])
            .body([Stmt::store_word(Expr::lit(0x7FFF_FFFC), Expr::lit(1))]);
        let module = lower::lower(&Program::new().function(f)).unwrap();
        let mut i = Interpreter::new(&module);
        assert!(matches!(
            i.call("f", &[]),
            Err(IrError::OutOfBoundsAccess { .. })
        ));
    }

    #[test]
    fn step_limit_catches_endless_loops() {
        let f = FunctionDef::new("spin", [] as [&str; 0]).body([Stmt::while_(Expr::lit(1), [])]);
        let module = lower::lower(&Program::new().function(f)).unwrap();
        let mut i = Interpreter::new(&module);
        i.set_step_limit(1000);
        assert!(matches!(
            i.call("spin", &[]),
            Err(IrError::StepLimit { .. })
        ));
    }

    #[test]
    fn stats_count_memory_traffic() {
        let f = FunctionDef::new("f", [] as [&str; 0]).body([
            Stmt::store_word(Expr::global("b"), Expr::lit(7)),
            Stmt::ret(Expr::global("b").load_word()),
        ]);
        let p = Program::new().global(Global::zeroed("b", 4)).function(f);
        let module = lower::lower(&p).unwrap();
        let mut i = Interpreter::new(&module);
        i.call("f", &[]).unwrap();
        assert_eq!(i.stats().loads, 1);
        assert_eq!(i.stats().stores, 1);
    }
}
