//! Modules, global data and memory layout.

use crate::error::IrError;
use crate::func::Function;
use std::collections::HashMap;
use std::fmt;

/// Byte address where global data begins.
///
/// Address 0 is deliberately unmapped data (reads return whatever is in
/// memory, but the compiler never places an object there), so stray null
/// pointers are easy to spot in traces.
pub const DATA_BASE: u32 = 64;

/// Bytes reserved for the call stack above the data segment.
pub const STACK_SIZE: u32 = 64 * 1024;

/// Bytes per machine word.
pub const WORD_BYTES: u32 = 4;

/// A statically allocated global object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name (unique within the module).
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents; shorter than `size` means zero-filled tail.
    pub init: Vec<u8>,
}

impl Global {
    /// A zero-initialised global of `size` bytes.
    #[must_use]
    pub fn zeroed(name: impl Into<String>, size: u32) -> Self {
        Global {
            name: name.into(),
            size,
            init: Vec::new(),
        }
    }

    /// A global initialised with `bytes`.
    #[must_use]
    pub fn with_bytes(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        Global {
            size: bytes.len() as u32,
            name: name.into(),
            init: bytes,
        }
    }

    /// A global initialised with big-endian 32-bit words.
    #[must_use]
    pub fn with_words(name: impl Into<String>, words: &[u32]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        Global::with_bytes(name, bytes)
    }
}

/// The memory layout computed for a module: where each global lives and
/// how much data memory a machine needs to run it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    addresses: HashMap<String, u32>,
    data_end: u32,
}

impl Layout {
    /// Byte address of a global.
    #[must_use]
    pub fn address_of(&self, name: &str) -> Option<u32> {
        self.addresses.get(name).copied()
    }

    /// First byte past the data segment.
    #[must_use]
    pub fn data_end(&self) -> u32 {
        self.data_end
    }

    /// Initial stack pointer (top of memory, word-aligned, grows down).
    #[must_use]
    pub fn initial_sp(&self) -> u32 {
        self.memory_size()
    }

    /// Total data-memory bytes required (globals + stack).
    #[must_use]
    pub fn memory_size(&self) -> u32 {
        (self.data_end + STACK_SIZE).div_ceil(WORD_BYTES) * WORD_BYTES
    }
}

/// A whole program: functions plus global data.
///
/// The module is the unit handed to each backend; its [`Layout`] fixes
/// global addresses identically for the interpreter, the EPIC toolchain
/// and the SA-110 baseline, so results can be compared byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// The functions, entry first by convention.
    pub functions: Vec<Function>,
    /// Global data objects.
    pub globals: Vec<Global>,
}

impl Module {
    /// An empty module.
    #[must_use]
    pub fn new() -> Self {
        Module {
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Computes the memory layout: globals packed from [`DATA_BASE`],
    /// each aligned to a word boundary.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateSymbol`] when two globals share a name.
    pub fn layout(&self) -> Result<Layout, IrError> {
        let mut addresses = HashMap::new();
        let mut cursor = DATA_BASE;
        for global in &self.globals {
            if addresses.contains_key(&global.name) {
                return Err(IrError::DuplicateSymbol {
                    name: global.name.clone(),
                });
            }
            addresses.insert(global.name.clone(), cursor);
            cursor = (cursor + global.size).div_ceil(WORD_BYTES) * WORD_BYTES;
        }
        Ok(Layout {
            addresses,
            data_end: cursor,
        })
    }

    /// Builds the initial data-memory image for the layout.
    #[must_use]
    pub fn initial_memory(&self, layout: &Layout) -> Vec<u8> {
        let mut memory = vec![0u8; layout.memory_size() as usize];
        for global in &self.globals {
            let base = layout
                .address_of(&global.name)
                .expect("layout covers every global") as usize;
            memory[base..base + global.init.len()].copy_from_slice(&global.init);
        }
        memory
    }

    /// Basic structural validation: unique function names, call targets
    /// that exist, block targets and register indices in range.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IrError> {
        for (i, f) in self.functions.iter().enumerate() {
            if self.functions[..i].iter().any(|g| g.name == f.name) {
                return Err(IrError::DuplicateSymbol {
                    name: f.name.clone(),
                });
            }
        }
        for f in &self.functions {
            for block in &f.blocks {
                for op in &block.ops {
                    if let Some(d) = op.def() {
                        if d.0 >= f.vreg_count {
                            return Err(IrError::BadVReg {
                                function: f.name.clone(),
                                vreg: d.0,
                            });
                        }
                    }
                    for u in op.uses() {
                        if u.0 >= f.vreg_count {
                            return Err(IrError::BadVReg {
                                function: f.name.clone(),
                                vreg: u.0,
                            });
                        }
                    }
                    if let crate::IrOp::Call { callee, args, .. } = op {
                        let Some(target) = self.function(callee) else {
                            return Err(IrError::UnknownFunction {
                                name: callee.clone(),
                            });
                        };
                        if target.params.len() != args.len() {
                            return Err(IrError::ArityMismatch {
                                function: callee.clone(),
                                expected: target.params.len(),
                                found: args.len(),
                            });
                        }
                    }
                }
                for succ in block.term.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return Err(IrError::BadBlock {
                            function: f.name.clone(),
                            block: succ.0,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for Module {
    fn default() -> Self {
        Module::new()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} [{} bytes]", g.name, g.size)?;
        }
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FunctionBuilder, Terminator};
    use crate::ops::IrOp;

    #[test]
    fn layout_packs_and_aligns_globals() {
        let mut m = Module::new();
        m.globals.push(Global::zeroed("a", 5));
        m.globals.push(Global::zeroed("b", 8));
        let layout = m.layout().unwrap();
        assert_eq!(layout.address_of("a"), Some(DATA_BASE));
        assert_eq!(layout.address_of("b"), Some(DATA_BASE + 8), "5 rounds to 8");
        assert_eq!(layout.data_end(), DATA_BASE + 16);
        assert!(layout.memory_size() >= layout.data_end() + STACK_SIZE);
        assert_eq!(layout.initial_sp() % WORD_BYTES, 0);
    }

    #[test]
    fn initial_memory_places_init_data() {
        let mut m = Module::new();
        m.globals.push(Global::with_words("w", &[0x11223344]));
        let layout = m.layout().unwrap();
        let mem = m.initial_memory(&layout);
        let base = layout.address_of("w").unwrap() as usize;
        assert_eq!(
            &mem[base..base + 4],
            &[0x11, 0x22, 0x33, 0x44],
            "big-endian"
        );
    }

    #[test]
    fn duplicate_globals_rejected() {
        let mut m = Module::new();
        m.globals.push(Global::zeroed("x", 4));
        m.globals.push(Global::zeroed("x", 4));
        assert!(matches!(m.layout(), Err(IrError::DuplicateSymbol { .. })));
    }

    #[test]
    fn validate_catches_unknown_callee_and_arity() {
        let mut b = FunctionBuilder::new("caller", 0);
        let d = b.new_vreg();
        b.push(IrOp::Call {
            callee: "missing".into(),
            args: vec![],
            dest: Some(d),
        });
        b.terminate(Terminator::Ret(None));
        let mut m = Module::new();
        m.functions.push(b.finish());
        assert!(matches!(m.validate(), Err(IrError::UnknownFunction { .. })));

        let mut b = FunctionBuilder::new("callee", 2);
        b.terminate(Terminator::Ret(None));
        let callee = b.finish();
        let mut b = FunctionBuilder::new("caller", 0);
        b.push(IrOp::Call {
            callee: "callee".into(),
            args: vec![],
            dest: None,
        });
        b.terminate(Terminator::Ret(None));
        let m = Module {
            functions: vec![b.finish(), callee],
            globals: vec![],
        };
        assert!(matches!(m.validate(), Err(IrError::ArityMismatch { .. })));
    }

    #[test]
    fn validate_accepts_well_formed_modules() {
        let mut b = FunctionBuilder::new("f", 1);
        let p = b.params()[0];
        b.terminate(Terminator::Ret(Some(p)));
        let m = Module {
            functions: vec![b.finish()],
            globals: vec![Global::zeroed("g", 16)],
        };
        m.validate().unwrap();
    }
}
