//! Error type for IR construction, validation and interpretation.

use std::error::Error;
use std::fmt;

/// Error raised while lowering, validating or interpreting IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// Two module-level symbols (functions or globals) share a name.
    DuplicateSymbol {
        /// The clashing name.
        name: String,
    },
    /// A call or lookup referenced a function the module does not define.
    UnknownFunction {
        /// The missing function name.
        name: String,
    },
    /// A call passed the wrong number of arguments.
    ArityMismatch {
        /// The called function.
        function: String,
        /// Its parameter count.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// An operation referenced a virtual register past `vreg_count`.
    BadVReg {
        /// The containing function.
        function: String,
        /// The out-of-range register number.
        vreg: u32,
    },
    /// A terminator referenced a block that does not exist.
    BadBlock {
        /// The containing function.
        function: String,
        /// The out-of-range block number.
        block: u32,
    },
    /// The AST referenced a variable that is not in scope.
    UnknownVariable {
        /// The variable name.
        name: String,
        /// The function being lowered.
        function: String,
    },
    /// The AST referenced a global that the program does not declare.
    UnknownGlobal {
        /// The global name.
        name: String,
    },
    /// A memory access fell outside the data memory.
    OutOfBoundsAccess {
        /// The faulting byte address.
        address: u32,
        /// Size of the data memory.
        memory_size: u32,
    },
    /// A word or half-word access was not naturally aligned.
    MisalignedAccess {
        /// The faulting byte address.
        address: u32,
        /// Required alignment in bytes.
        alignment: u32,
    },
    /// The interpreter exceeded its step budget (likely an endless loop).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateSymbol { name } => {
                write!(f, "symbol `{name}` is defined more than once")
            }
            IrError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            IrError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` takes {expected} arguments, {found} supplied"
            ),
            IrError::BadVReg { function, vreg } => {
                write!(
                    f,
                    "function `{function}` references unallocated register v{vreg}"
                )
            }
            IrError::BadBlock { function, block } => {
                write!(
                    f,
                    "function `{function}` references missing block bb{block}"
                )
            }
            IrError::UnknownVariable { name, function } => {
                write!(f, "variable `{name}` is not in scope in `{function}`")
            }
            IrError::UnknownGlobal { name } => write!(f, "unknown global `{name}`"),
            IrError::OutOfBoundsAccess {
                address,
                memory_size,
            } => write!(
                f,
                "memory access at {address:#x} is outside the {memory_size}-byte data memory"
            ),
            IrError::MisalignedAccess { address, alignment } => write!(
                f,
                "memory access at {address:#x} violates {alignment}-byte alignment"
            ),
            IrError::StepLimit { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
