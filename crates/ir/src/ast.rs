//! A small structured frontend: the role of the C sources the paper feeds
//! to Trimaran's IMPACT module.
//!
//! Programs are built as Rust values — expressions with operator
//! overloading, statements with combinator helpers — and lowered to IR by
//! [`lower`](crate::lower::lower). The benchmark suite (`epic-workloads`)
//! writes SHA, AES, DCT and Dijkstra in this AST exactly once; both the
//! EPIC compiler and the SA-110 baseline then consume the same IR, as one
//! C source fed both toolchains in the paper.
//!
//! # Examples
//!
//! ```
//! use epic_ir::ast::{Expr, FunctionDef, Program, Stmt};
//!
//! // sum of 0..n
//! let f = FunctionDef::new("sum", ["n"]).body([
//!     Stmt::let_("acc", Expr::lit(0)),
//!     Stmt::for_("i", Expr::lit(0), Expr::var("n"), [
//!         Stmt::assign("acc", Expr::var("acc") + Expr::var("i")),
//!     ]),
//!     Stmt::ret(Expr::var("acc")),
//! ]);
//! let program = Program::new().function(f);
//! assert_eq!(program.functions.len(), 1);
//! ```

use crate::module::Global;
use crate::ops::{BinOp, LoadKind, StoreKind, UnOp};

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Expr {
    /// A 32-bit constant.
    Lit(i64),
    /// A local variable or parameter.
    Var(String),
    /// The byte address of a global object.
    GlobalAddr(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A memory load from a computed address.
    Load(LoadKind, Box<Expr>),
    /// A call to a named function.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// A constant.
    #[must_use]
    pub fn lit(value: i64) -> Expr {
        Expr::Lit(value)
    }

    /// A local variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// The address of a global.
    #[must_use]
    pub fn global(name: impl Into<String>) -> Expr {
        Expr::GlobalAddr(name.into())
    }

    /// A function call expression.
    #[must_use]
    pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Call(name.into(), args.into_iter().collect())
    }

    /// Word load `*(u32*)(self)`.
    #[must_use]
    pub fn load_word(self) -> Expr {
        Expr::Load(LoadKind::Word, Box::new(self))
    }

    /// Zero-extending byte load.
    #[must_use]
    pub fn load_byte_u(self) -> Expr {
        Expr::Load(LoadKind::ByteU, Box::new(self))
    }

    /// Sign-extending byte load.
    #[must_use]
    pub fn load_byte_s(self) -> Expr {
        Expr::Load(LoadKind::Byte, Box::new(self))
    }

    /// Zero-extending half-word load.
    #[must_use]
    pub fn load_half_u(self) -> Expr {
        Expr::Load(LoadKind::HalfU, Box::new(self))
    }

    /// Sign-extending half-word load.
    #[must_use]
    pub fn load_half_s(self) -> Expr {
        Expr::Load(LoadKind::Half, Box::new(self))
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// Signed division (0 on division by zero).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder API over `Expr`, not arithmetic on values
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// Signed remainder (0 on division by zero).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder API over `Expr`, not arithmetic on values
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }

    /// Logical shift right.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder API over `Expr`, not arithmetic on values
    pub fn shr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shr, rhs)
    }

    /// Arithmetic shift right.
    #[must_use]
    pub fn sra(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sra, rhs)
    }

    /// Rotate right by `rhs` bits.
    #[must_use]
    pub fn rotr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rotr, rhs)
    }

    /// Signed minimum.
    #[must_use]
    pub fn min(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Min, rhs)
    }

    /// Signed maximum.
    #[must_use]
    pub fn max(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Max, rhs)
    }

    /// Equality test (0/1).
    #[must_use]
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpEq, rhs)
    }

    /// Inequality test (0/1).
    #[must_use]
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpNe, rhs)
    }

    /// Signed `<`.
    #[must_use]
    pub fn lt_s(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpLt, rhs)
    }

    /// Signed `<=`.
    #[must_use]
    pub fn le_s(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpLe, rhs)
    }

    /// Signed `>`.
    #[must_use]
    pub fn gt_s(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpGt, rhs)
    }

    /// Signed `>=`.
    #[must_use]
    pub fn ge_s(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpGe, rhs)
    }

    /// Unsigned `<`.
    #[must_use]
    pub fn lt_u(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpLtu, rhs)
    }

    /// Unsigned `<=`.
    #[must_use]
    pub fn le_u(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpLeu, rhs)
    }

    /// Unsigned `>`.
    #[must_use]
    pub fn gt_u(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpGtu, rhs)
    }

    /// Unsigned `>=`.
    #[must_use]
    pub fn ge_u(self, rhs: Expr) -> Expr {
        self.bin(BinOp::CmpGeu, rhs)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
}

impl std::ops::BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
}

impl std::ops::BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
}

impl std::ops::BitXor for Expr {
    type Output = Expr;
    fn bitxor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }
}

impl std::ops::Shl<Expr> for Expr {
    type Output = Expr;
    fn shl(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shl, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

impl std::ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }
}

impl From<i64> for Expr {
    fn from(value: i64) -> Expr {
        Expr::Lit(value)
    }
}

impl From<i32> for Expr {
    fn from(value: i32) -> Expr {
        Expr::Lit(i64::from(value))
    }
}

impl From<u32> for Expr {
    fn from(value: u32) -> Expr {
        Expr::Lit(i64::from(value))
    }
}

impl From<&str> for Expr {
    fn from(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Stmt {
    /// Declare a local and initialise it.
    Let(String, Expr),
    /// Assign to an existing local.
    Assign(String, Expr),
    /// Store `value` to the address `addr`.
    Store(StoreKind, Expr, Expr),
    /// Two-way conditional.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// Pre-tested loop.
    While(Expr, Vec<Stmt>),
    /// Return from the function.
    Return(Option<Expr>),
    /// Evaluate for side effects (calls).
    Expr(Expr),
    /// A nested statement sequence (no new scope; produced by `for_`).
    Block(Vec<Stmt>),
}

impl Stmt {
    /// `let name = value;`
    #[must_use]
    pub fn let_(name: impl Into<String>, value: impl Into<Expr>) -> Stmt {
        Stmt::Let(name.into(), value.into())
    }

    /// `name = value;`
    #[must_use]
    pub fn assign(name: impl Into<String>, value: impl Into<Expr>) -> Stmt {
        Stmt::Assign(name.into(), value.into())
    }

    /// `*(u32*)addr = value;`
    #[must_use]
    pub fn store_word(addr: impl Into<Expr>, value: impl Into<Expr>) -> Stmt {
        Stmt::Store(StoreKind::Word, addr.into(), value.into())
    }

    /// `*(u16*)addr = value;`
    #[must_use]
    pub fn store_half(addr: impl Into<Expr>, value: impl Into<Expr>) -> Stmt {
        Stmt::Store(StoreKind::Half, addr.into(), value.into())
    }

    /// `*(u8*)addr = value;`
    #[must_use]
    pub fn store_byte(addr: impl Into<Expr>, value: impl Into<Expr>) -> Stmt {
        Stmt::Store(StoreKind::Byte, addr.into(), value.into())
    }

    /// `if (cond) { then }` with no else branch.
    #[must_use]
    pub fn if_(cond: impl Into<Expr>, then: impl IntoIterator<Item = Stmt>) -> Stmt {
        Stmt::If(cond.into(), then.into_iter().collect(), Vec::new())
    }

    /// `if (cond) { then } else { els }`.
    #[must_use]
    pub fn if_else(
        cond: impl Into<Expr>,
        then: impl IntoIterator<Item = Stmt>,
        els: impl IntoIterator<Item = Stmt>,
    ) -> Stmt {
        Stmt::If(
            cond.into(),
            then.into_iter().collect(),
            els.into_iter().collect(),
        )
    }

    /// `while (cond) { body }`.
    #[must_use]
    pub fn while_(cond: impl Into<Expr>, body: impl IntoIterator<Item = Stmt>) -> Stmt {
        Stmt::While(cond.into(), body.into_iter().collect())
    }

    /// Counted loop sugar: `for (let var = start; var < end; var += 1)`.
    ///
    /// `end` is re-evaluated each iteration, like the C it imitates; hoist
    /// it into a local first when that matters.
    #[must_use]
    pub fn for_(
        var: impl Into<String>,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        body: impl IntoIterator<Item = Stmt>,
    ) -> Stmt {
        let var = var.into();
        let mut body: Vec<Stmt> = body.into_iter().collect();
        body.push(Stmt::assign(&var, Expr::var(&var) + Expr::lit(1)));
        Stmt::Block(vec![
            Stmt::let_(&var, start),
            Stmt::While(Expr::var(&var).lt_s(end.into()), body),
        ])
    }

    /// `return value;`
    #[must_use]
    pub fn ret(value: impl Into<Expr>) -> Stmt {
        Stmt::Return(Some(value.into()))
    }

    /// `return;`
    #[must_use]
    pub fn ret_void() -> Stmt {
        Stmt::Return(None)
    }

    /// A call evaluated for its side effects.
    #[must_use]
    pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Expr>) -> Stmt {
        Stmt::Expr(Expr::call(name, args))
    }
}

impl Stmt {
    /// A nested statement sequence (no new scope; C-style).
    #[must_use]
    pub fn block(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        Stmt::Block(stmts.into_iter().collect())
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionDef {
    /// The function's name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
    /// When true, the EPIC inliner may clone this function into callers.
    pub inline_hint: bool,
}

impl FunctionDef {
    /// Starts a function with the given parameters and empty body.
    #[must_use]
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        params: impl IntoIterator<Item = S>,
    ) -> Self {
        FunctionDef {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            body: Vec::new(),
            inline_hint: false,
        }
    }

    /// Sets the body.
    #[must_use]
    pub fn body(mut self, stmts: impl IntoIterator<Item = Stmt>) -> Self {
        self.body = stmts.into_iter().collect();
        self
    }

    /// Marks the function as an inlining candidate.
    #[must_use]
    pub fn inline(mut self) -> Self {
        self.inline_hint = true;
        self
    }
}

/// A whole program: functions plus global data declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Function definitions.
    pub functions: Vec<FunctionDef>,
    /// Global data objects (layout is computed at lowering).
    pub globals: Vec<Global>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a function.
    #[must_use]
    pub fn function(mut self, f: FunctionDef) -> Self {
        self.functions.push(f);
        self
    }

    /// Adds a global.
    #[must_use]
    pub fn global(mut self, g: Global) -> Self {
        self.globals.push(g);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_build_the_expected_tree() {
        let e = Expr::var("a") + Expr::lit(1) * Expr::var("b");
        match e {
            Expr::Bin(BinOp::Add, lhs, rhs) => {
                assert_eq!(*lhs, Expr::var("a"));
                assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected tree {other:?}"),
        }
    }

    #[test]
    fn for_sugar_expands_to_let_plus_while() {
        let s = Stmt::for_("i", Expr::lit(0), Expr::lit(10), [Stmt::ret_void()]);
        let Stmt::Block(stmts) = s else {
            panic!("for_ should expand to a block")
        };
        assert!(matches!(&stmts[0], Stmt::Let(name, _) if name == "i"));
        let Stmt::While(cond, body) = &stmts[1] else {
            panic!("second statement should be while")
        };
        assert!(matches!(cond, Expr::Bin(BinOp::CmpLt, _, _)));
        assert!(matches!(body.last(), Some(Stmt::Assign(name, _)) if name == "i"));
    }

    #[test]
    fn conversions_into_expr() {
        assert_eq!(Expr::from(5i32), Expr::Lit(5));
        assert_eq!(Expr::from(5u32), Expr::Lit(5));
        assert_eq!(Expr::from("x"), Expr::Var("x".into()));
    }
}
