//! AST → IR lowering.
//!
//! Lowering computes the module's global layout first (so
//! [`Expr::GlobalAddr`] becomes a plain constant) and then translates each
//! function body into a CFG of three-address operations. No optimisation
//! happens here; the output is deliberately naive so that the IMPACT-style
//! passes in `epic-compiler` have visible work to do.

use crate::ast::{Expr, FunctionDef, Program, Stmt};
use crate::error::IrError;
use crate::func::{FunctionBuilder, Terminator, VReg};
use crate::module::{Layout, Module};
use crate::ops::IrOp;
use std::collections::HashMap;

/// Lowers a program to an IR module.
///
/// # Errors
///
/// Returns [`IrError::UnknownVariable`] or [`IrError::UnknownGlobal`] for
/// dangling names, [`IrError::DuplicateSymbol`] for clashing globals, and
/// whatever [`Module::validate`] finds in the result.
pub fn lower(program: &Program) -> Result<Module, IrError> {
    let mut module = Module::new();
    module.globals = program.globals.clone();
    let layout = module.layout()?;
    for def in &program.functions {
        module.functions.push(lower_function(def, &layout)?);
    }
    module.validate()?;
    Ok(module)
}

/// Names of functions carrying the AST's inline hint.
///
/// The inliner pass in `epic-compiler` consumes this; the hint cannot live
/// on [`crate::Function`] itself without polluting the IR with frontend
/// concerns, so it travels alongside.
#[must_use]
pub fn inline_hints(program: &Program) -> Vec<String> {
    program
        .functions
        .iter()
        .filter(|f| f.inline_hint)
        .map(|f| f.name.clone())
        .collect()
}

struct LowerCtx<'a> {
    builder: FunctionBuilder,
    scope: HashMap<String, VReg>,
    layout: &'a Layout,
    function: String,
}

fn lower_function(def: &FunctionDef, layout: &Layout) -> Result<crate::Function, IrError> {
    let builder = FunctionBuilder::new(def.name.clone(), def.params.len());
    let mut scope = HashMap::new();
    for (name, reg) in def.params.iter().zip(builder.params().to_vec()) {
        scope.insert(name.clone(), reg);
    }
    let mut ctx = LowerCtx {
        builder,
        scope,
        layout,
        function: def.name.clone(),
    };
    lower_stmts(&mut ctx, &def.body)?;
    if !ctx.builder.is_terminated() {
        ctx.builder.terminate(Terminator::Ret(None));
    }
    Ok(ctx.builder.finish())
}

fn lower_stmts(ctx: &mut LowerCtx<'_>, stmts: &[Stmt]) -> Result<(), IrError> {
    for stmt in stmts {
        if ctx.builder.is_terminated() {
            // Statements after a return are unreachable; drop them.
            return Ok(());
        }
        lower_stmt(ctx, stmt)?;
    }
    Ok(())
}

fn lower_stmt(ctx: &mut LowerCtx<'_>, stmt: &Stmt) -> Result<(), IrError> {
    match stmt {
        Stmt::Let(name, value) => {
            let v = lower_expr(ctx, value)?;
            // Bind to a dedicated register so later assignments cannot
            // alias an expression temporary.
            let slot = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Copy { dest: slot, src: v });
            ctx.scope.insert(name.clone(), slot);
        }
        Stmt::Assign(name, value) => {
            let v = lower_expr(ctx, value)?;
            let slot = *ctx
                .scope
                .get(name)
                .ok_or_else(|| IrError::UnknownVariable {
                    name: name.clone(),
                    function: ctx.function.clone(),
                })?;
            ctx.builder.push(IrOp::Copy { dest: slot, src: v });
        }
        Stmt::Store(kind, addr, value) => {
            let a = lower_expr(ctx, addr)?;
            let v = lower_expr(ctx, value)?;
            ctx.builder.push(IrOp::Store {
                kind: *kind,
                value: v,
                base: a,
                offset: 0,
            });
        }
        Stmt::If(cond, then_body, else_body) => {
            let c = lower_expr(ctx, cond)?;
            let then_block = ctx.builder.new_block();
            let else_block = ctx.builder.new_block();
            let join = ctx.builder.new_block();
            ctx.builder.terminate(Terminator::Branch {
                cond: c,
                then_block,
                else_block,
            });
            ctx.builder.switch_to(then_block);
            lower_stmts(ctx, then_body)?;
            ctx.builder.terminate(Terminator::Jump(join));
            ctx.builder.switch_to(else_block);
            lower_stmts(ctx, else_body)?;
            ctx.builder.terminate(Terminator::Jump(join));
            ctx.builder.switch_to(join);
        }
        Stmt::While(cond, body) => {
            let header = ctx.builder.new_block();
            let body_block = ctx.builder.new_block();
            let exit = ctx.builder.new_block();
            ctx.builder.terminate(Terminator::Jump(header));
            ctx.builder.switch_to(header);
            let c = lower_expr(ctx, cond)?;
            ctx.builder.terminate(Terminator::Branch {
                cond: c,
                then_block: body_block,
                else_block: exit,
            });
            ctx.builder.switch_to(body_block);
            lower_stmts(ctx, body)?;
            ctx.builder.terminate(Terminator::Jump(header));
            ctx.builder.switch_to(exit);
        }
        Stmt::Return(value) => {
            let v = value.as_ref().map(|e| lower_expr(ctx, e)).transpose()?;
            ctx.builder.terminate(Terminator::Ret(v));
        }
        Stmt::Expr(expr) => {
            lower_expr_for_effect(ctx, expr)?;
        }
        Stmt::Block(stmts) => lower_stmts(ctx, stmts)?,
    }
    Ok(())
}

fn lower_expr_for_effect(ctx: &mut LowerCtx<'_>, expr: &Expr) -> Result<(), IrError> {
    if let Expr::Call(name, args) = expr {
        let arg_regs = args
            .iter()
            .map(|a| lower_expr(ctx, a))
            .collect::<Result<Vec<_>, _>>()?;
        ctx.builder.push(IrOp::Call {
            callee: name.clone(),
            args: arg_regs,
            dest: None,
        });
        Ok(())
    } else {
        lower_expr(ctx, expr).map(|_| ())
    }
}

fn lower_expr(ctx: &mut LowerCtx<'_>, expr: &Expr) -> Result<VReg, IrError> {
    Ok(match expr {
        Expr::Lit(v) => {
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Const { dest, value: *v });
            dest
        }
        Expr::Var(name) => *ctx
            .scope
            .get(name)
            .ok_or_else(|| IrError::UnknownVariable {
                name: name.clone(),
                function: ctx.function.clone(),
            })?,
        Expr::GlobalAddr(name) => {
            let addr = ctx
                .layout
                .address_of(name)
                .ok_or_else(|| IrError::UnknownGlobal { name: name.clone() })?;
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Const {
                dest,
                value: i64::from(addr),
            });
            dest
        }
        Expr::Bin(op, lhs, rhs) => {
            let l = lower_expr(ctx, lhs)?;
            let r = lower_expr(ctx, rhs)?;
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Bin {
                op: *op,
                dest,
                lhs: l,
                rhs: r,
            });
            dest
        }
        Expr::Un(op, src) => {
            let s = lower_expr(ctx, src)?;
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Un {
                op: *op,
                dest,
                src: s,
            });
            dest
        }
        Expr::Load(kind, addr) => {
            let a = lower_expr(ctx, addr)?;
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Load {
                kind: *kind,
                dest,
                base: a,
                offset: 0,
            });
            dest
        }
        Expr::Call(name, args) => {
            let arg_regs = args
                .iter()
                .map(|a| lower_expr(ctx, a))
                .collect::<Result<Vec<_>, _>>()?;
            let dest = ctx.builder.new_vreg();
            ctx.builder.push(IrOp::Call {
                callee: name.clone(),
                args: arg_regs,
                dest: Some(dest),
            });
            dest
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::module::Global;

    use crate::ast::Program;

    fn one(f: ast::FunctionDef) -> Program {
        Program::new().function(f)
    }

    #[test]
    fn straight_line_function_lowers_to_one_block() {
        let f = ast::FunctionDef::new("f", ["a", "b"])
            .body([Stmt::ret(Expr::var("a") + Expr::var("b"))]);
        let m = lower(&one(f)).unwrap();
        assert_eq!(m.functions[0].blocks.len(), 1);
    }

    #[test]
    fn if_else_produces_a_diamond() {
        let f = ast::FunctionDef::new("f", ["x"]).body([
            Stmt::let_("r", Expr::lit(0)),
            Stmt::if_else(
                Expr::var("x").gt_s(Expr::lit(0)),
                [Stmt::assign("r", Expr::lit(1))],
                [Stmt::assign("r", Expr::lit(2))],
            ),
            Stmt::ret(Expr::var("r")),
        ]);
        let m = lower(&one(f)).unwrap();
        // entry + then + else + join
        assert_eq!(m.functions[0].blocks.len(), 4);
    }

    #[test]
    fn while_produces_header_body_exit() {
        let f = ast::FunctionDef::new("f", ["n"]).body([
            Stmt::let_("i", Expr::lit(0)),
            Stmt::while_(
                Expr::var("i").lt_s(Expr::var("n")),
                [Stmt::assign("i", Expr::var("i") + Expr::lit(1))],
            ),
            Stmt::ret(Expr::var("i")),
        ]);
        let m = lower(&one(f)).unwrap();
        assert_eq!(m.functions[0].blocks.len(), 4);
    }

    #[test]
    fn unknown_variable_is_reported() {
        let f = ast::FunctionDef::new("f", ["x"]).body([Stmt::ret(Expr::var("y"))]);
        let err = lower(&one(f)).unwrap_err();
        assert!(matches!(err, IrError::UnknownVariable { ref name, .. } if name == "y"));
    }

    #[test]
    fn unknown_global_is_reported() {
        let f =
            ast::FunctionDef::new("f", [] as [&str; 0]).body([Stmt::ret(Expr::global("table"))]);
        let err = lower(&one(f)).unwrap_err();
        assert!(matches!(err, IrError::UnknownGlobal { ref name } if name == "table"));
    }

    #[test]
    fn global_addresses_become_constants() {
        let program = Program::new().global(Global::zeroed("buf", 16)).function(
            ast::FunctionDef::new("f", [] as [&str; 0]).body([Stmt::ret(Expr::global("buf"))]),
        );
        let m = lower(&program).unwrap();
        let layout = m.layout().unwrap();
        let f = &m.functions[0];
        let found = f.blocks.iter().flat_map(|b| &b.ops).any(|op| {
            matches!(op, IrOp::Const { value, .. }
                if *value == i64::from(layout.address_of("buf").unwrap()))
        });
        assert!(found, "expected the global's address as a constant");
    }

    #[test]
    fn code_after_return_is_dropped() {
        let f = ast::FunctionDef::new("f", [] as [&str; 0])
            .body([Stmt::ret(Expr::lit(1)), Stmt::ret(Expr::lit(2))]);
        let m = lower(&one(f)).unwrap();
        let consts: Vec<i64> = m.functions[0]
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter_map(|op| match op {
                IrOp::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![1]);
    }

    #[test]
    fn inline_hints_are_collected() {
        let p = Program::new()
            .function(ast::FunctionDef::new("hot", [] as [&str; 0]).inline())
            .function(ast::FunctionDef::new("cold", [] as [&str; 0]));
        assert_eq!(inline_hints(&p), vec!["hot".to_owned()]);
    }
}
