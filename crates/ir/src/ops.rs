//! IR operations and operators.

use crate::func::VReg;
use std::fmt;

/// Binary operators.
///
/// All arithmetic is 32-bit wrapping; comparisons produce 0 or 1. Shift
/// and rotate amounts are taken modulo 32, and division by zero yields 0
/// (the datapath's convention, so every backend agrees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division (0 when dividing by zero).
    Div,
    /// Signed remainder (0 when dividing by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Rotate right (recognised by the custom-instruction matcher; lowered
    /// to shifts and an or when the target has no rotate).
    Rotr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// `lhs == rhs`.
    CmpEq,
    /// `lhs != rhs`.
    CmpNe,
    /// Signed `lhs < rhs`.
    CmpLt,
    /// Signed `lhs <= rhs`.
    CmpLe,
    /// Signed `lhs > rhs`.
    CmpGt,
    /// Signed `lhs >= rhs`.
    CmpGe,
    /// Unsigned `lhs < rhs`.
    CmpLtu,
    /// Unsigned `lhs <= rhs`.
    CmpLeu,
    /// Unsigned `lhs > rhs`.
    CmpGtu,
    /// Unsigned `lhs >= rhs`.
    CmpGeu,
}

impl BinOp {
    /// Whether this operator yields a 0/1 truth value.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq
                | BinOp::CmpNe
                | BinOp::CmpLt
                | BinOp::CmpLe
                | BinOp::CmpGt
                | BinOp::CmpGe
                | BinOp::CmpLtu
                | BinOp::CmpLeu
                | BinOp::CmpGtu
                | BinOp::CmpGeu
        )
    }

    /// Whether `a op b == b op a` for all operands.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Min
                | BinOp::Max
                | BinOp::CmpEq
                | BinOp::CmpNe
        )
    }

    /// The comparison testing the opposite outcome, if this is one.
    #[must_use]
    pub fn negate_comparison(self) -> Option<BinOp> {
        Some(match self {
            BinOp::CmpEq => BinOp::CmpNe,
            BinOp::CmpNe => BinOp::CmpEq,
            BinOp::CmpLt => BinOp::CmpGe,
            BinOp::CmpLe => BinOp::CmpGt,
            BinOp::CmpGt => BinOp::CmpLe,
            BinOp::CmpGe => BinOp::CmpLt,
            BinOp::CmpLtu => BinOp::CmpGeu,
            BinOp::CmpLeu => BinOp::CmpGtu,
            BinOp::CmpGtu => BinOp::CmpLeu,
            BinOp::CmpGeu => BinOp::CmpLtu,
            _ => return None,
        })
    }

    /// Evaluates the operator on two 32-bit values (the single source of
    /// truth for constant folding, the interpreter and differential tests).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let sa = a as i32;
        let sb = b as i32;
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u32
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u32
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b),
            BinOp::Shr => a.wrapping_shr(b),
            BinOp::Sra => (sa.wrapping_shr(b)) as u32,
            BinOp::Rotr => a.rotate_right(b % 32),
            BinOp::Min => sa.min(sb) as u32,
            BinOp::Max => sa.max(sb) as u32,
            BinOp::CmpEq => u32::from(a == b),
            BinOp::CmpNe => u32::from(a != b),
            BinOp::CmpLt => u32::from(sa < sb),
            BinOp::CmpLe => u32::from(sa <= sb),
            BinOp::CmpGt => u32::from(sa > sb),
            BinOp::CmpGe => u32::from(sa >= sb),
            BinOp::CmpLtu => u32::from(a < b),
            BinOp::CmpLeu => u32::from(a <= b),
            BinOp::CmpGtu => u32::from(a > b),
            BinOp::CmpGeu => u32::from(a >= b),
        }
    }

    /// Lower-case name used by the IR printer.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sra => "sra",
            BinOp::Rotr => "rotr",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpNe => "cmpne",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
            BinOp::CmpGt => "cmpgt",
            BinOp::CmpGe => "cmpge",
            BinOp::CmpLtu => "cmpltu",
            BinOp::CmpLeu => "cmpleu",
            BinOp::CmpGtu => "cmpgtu",
            BinOp::CmpGeu => "cmpgeu",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Evaluates the operator on a 32-bit value.
    #[must_use]
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Neg => (a as i32).wrapping_neg() as u32,
            UnOp::Not => !a,
        }
    }

    /// Lower-case name used by the IR printer.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory access widths and extensions for loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// 32-bit word (address must be 4-aligned).
    Word,
    /// 16-bit half-word, sign-extended (address must be 2-aligned).
    Half,
    /// 16-bit half-word, zero-extended.
    HalfU,
    /// 8-bit byte, sign-extended.
    Byte,
    /// 8-bit byte, zero-extended.
    ByteU,
}

impl LoadKind {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            LoadKind::Word => 4,
            LoadKind::Half | LoadKind::HalfU => 2,
            LoadKind::Byte | LoadKind::ByteU => 1,
        }
    }
}

/// Memory access widths for stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// 32-bit word.
    Word,
    /// Low 16 bits.
    Half,
    /// Low 8 bits.
    Byte,
}

impl StoreKind {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            StoreKind::Word => 4,
            StoreKind::Half => 2,
            StoreKind::Byte => 1,
        }
    }
}

/// One IR instruction (a block's non-terminator operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrOp {
    /// `dest = value` (a 32-bit constant, stored sign-extended).
    Const {
        /// Destination virtual register.
        dest: VReg,
        /// The constant, interpreted as a 32-bit pattern.
        value: i64,
    },
    /// `dest = lhs <op> rhs`.
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination virtual register.
        dest: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dest = <op> src`.
    Un {
        /// The operator.
        op: UnOp,
        /// Destination virtual register.
        dest: VReg,
        /// Operand.
        src: VReg,
    },
    /// `dest = src`.
    Copy {
        /// Destination virtual register.
        dest: VReg,
        /// Source virtual register.
        src: VReg,
    },
    /// `dest = mem[base + offset]`.
    Load {
        /// Width and extension.
        kind: LoadKind,
        /// Destination virtual register.
        dest: VReg,
        /// Base address register.
        base: VReg,
        /// Constant byte offset.
        offset: i32,
    },
    /// `mem[base + offset] = value`.
    Store {
        /// Width.
        kind: StoreKind,
        /// Register holding the value to store.
        value: VReg,
        /// Base address register.
        base: VReg,
        /// Constant byte offset.
        offset: i32,
    },
    /// `dest = callee(args…)` (direct call).
    Call {
        /// Name of the called function.
        callee: String,
        /// Argument registers, in order.
        args: Vec<VReg>,
        /// Register receiving the return value, if used.
        dest: Option<VReg>,
    },
}

impl IrOp {
    /// The virtual register defined by this operation, if any.
    #[must_use]
    pub fn def(&self) -> Option<VReg> {
        match self {
            IrOp::Const { dest, .. }
            | IrOp::Bin { dest, .. }
            | IrOp::Un { dest, .. }
            | IrOp::Copy { dest, .. }
            | IrOp::Load { dest, .. } => Some(*dest),
            IrOp::Call { dest, .. } => *dest,
            IrOp::Store { .. } => None,
        }
    }

    /// The virtual registers read by this operation.
    #[must_use]
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            IrOp::Const { .. } => vec![],
            IrOp::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            IrOp::Un { src, .. } | IrOp::Copy { src, .. } => vec![*src],
            IrOp::Load { base, .. } => vec![*base],
            IrOp::Store { value, base, .. } => vec![*value, *base],
            IrOp::Call { args, .. } => args.clone(),
        }
    }

    /// Rewrites every used register through `f` (definition unchanged).
    pub fn map_uses(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        match self {
            IrOp::Const { .. } => {}
            IrOp::Bin { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            IrOp::Un { src, .. } | IrOp::Copy { src, .. } => *src = f(*src),
            IrOp::Load { base, .. } => *base = f(*base),
            IrOp::Store { value, base, .. } => {
                *value = f(*value);
                *base = f(*base);
            }
            IrOp::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }

    /// Whether the operation touches memory or transfers control — i.e.
    /// must not be removed even when its result is unused.
    #[must_use]
    pub fn has_side_effects(&self) -> bool {
        matches!(self, IrOp::Store { .. } | IrOp::Call { .. })
    }
}

impl fmt::Display for IrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrOp::Const { dest, value } => write!(f, "{dest} = const {value}"),
            IrOp::Bin { op, dest, lhs, rhs } => write!(f, "{dest} = {op} {lhs}, {rhs}"),
            IrOp::Un { op, dest, src } => write!(f, "{dest} = {op} {src}"),
            IrOp::Copy { dest, src } => write!(f, "{dest} = {src}"),
            IrOp::Load {
                kind,
                dest,
                base,
                offset,
            } => write!(f, "{dest} = load.{} {base}+{offset}", kind.bytes()),
            IrOp::Store {
                kind,
                value,
                base,
                offset,
            } => write!(f, "store.{} {value} -> {base}+{offset}", kind.bytes()),
            IrOp::Call { callee, args, dest } => {
                if let Some(d) = dest {
                    write!(f, "{d} = call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_two_complement_semantics() {
        assert_eq!(BinOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(BinOp::Mul.eval(0x8000_0000, 2), 0);
        assert_eq!(BinOp::Div.eval(7u32, (-2i32) as u32), (-3i32) as u32);
        assert_eq!(BinOp::Div.eval(5, 0), 0, "divide by zero yields 0");
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
        assert_eq!(BinOp::Div.eval(i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(BinOp::Sra.eval((-8i32) as u32, 1), (-4i32) as u32);
        assert_eq!(BinOp::Shr.eval((-8i32) as u32, 1), 0x7FFF_FFFC);
        assert_eq!(BinOp::Shl.eval(1, 33), 2, "shift modulo 32");
        assert_eq!(BinOp::Rotr.eval(1, 1), 0x8000_0000);
        assert_eq!(BinOp::Min.eval((-1i32) as u32, 1), (-1i32) as u32);
        assert_eq!(BinOp::CmpLtu.eval((-1i32) as u32, 1), 0);
        assert_eq!(BinOp::CmpLt.eval((-1i32) as u32, 1), 1);
    }

    #[test]
    fn negated_comparisons_partition_outcomes() {
        for op in [
            BinOp::CmpEq,
            BinOp::CmpNe,
            BinOp::CmpLt,
            BinOp::CmpLe,
            BinOp::CmpGt,
            BinOp::CmpGe,
            BinOp::CmpLtu,
            BinOp::CmpLeu,
            BinOp::CmpGtu,
            BinOp::CmpGeu,
        ] {
            let neg = op.negate_comparison().unwrap();
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 1), (5, 5)] {
                assert_eq!(
                    op.eval(a, b) ^ neg.eval(a, b),
                    1,
                    "{op} vs {neg} on ({a},{b})"
                );
            }
        }
        assert_eq!(BinOp::Add.negate_comparison(), None);
    }

    #[test]
    fn commutativity_claims_hold() {
        let samples = [(3u32, 9u32), (u32::MAX, 0), (0x8000_0000, 7)];
        for op in [
            BinOp::Add,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Min,
            BinOp::Max,
        ] {
            assert!(op.is_commutative());
            for (a, b) in samples {
                assert_eq!(op.eval(a, b), op.eval(b, a), "{op}");
            }
        }
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    fn defs_and_uses_are_consistent() {
        let v = |n| VReg(n);
        let op = IrOp::Bin {
            op: BinOp::Add,
            dest: v(0),
            lhs: v(1),
            rhs: v(2),
        };
        assert_eq!(op.def(), Some(v(0)));
        assert_eq!(op.uses(), vec![v(1), v(2)]);

        let st = IrOp::Store {
            kind: StoreKind::Word,
            value: v(3),
            base: v(4),
            offset: 8,
        };
        assert_eq!(st.def(), None);
        assert!(st.has_side_effects());

        let mut call = IrOp::Call {
            callee: "f".into(),
            args: vec![v(1), v(2)],
            dest: Some(v(5)),
        };
        call.map_uses(|r| VReg(r.0 + 10));
        assert_eq!(call.uses(), vec![v(11), v(12)]);
        assert_eq!(call.def(), Some(v(5)));
    }

    #[test]
    fn unops_eval() {
        assert_eq!(UnOp::Neg.eval(1), u32::MAX);
        assert_eq!(UnOp::Not.eval(0), u32::MAX);
        assert_eq!(UnOp::Neg.eval(i32::MIN as u32), i32::MIN as u32);
    }
}
