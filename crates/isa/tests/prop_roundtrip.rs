//! Property tests: every valid instruction round-trips through the
//! machine-code codec and the disassembler, across randomly customised
//! instruction formats.

use epic_config::Config;
use epic_isa::{decode, encode, Btr, CmpCond, Gpr, Instruction, Opcode, Operand, PredReg};
use proptest::prelude::*;

/// A strategy over valid configurations (register counts drive the
/// derived field widths, so this exercises widened formats too).
fn config_strategy() -> impl Strategy<Value = Config> {
    (
        1usize..=8, // ALUs
        prop::sample::select(vec![32usize, 64, 128, 256]),
        prop::sample::select(vec![8usize, 32, 64]),
        prop::sample::select(vec![4usize, 16, 32]),
        1usize..=4, // issue width
    )
        .prop_map(|(alus, gprs, preds, btrs, issue)| {
            Config::builder()
                .num_alus(alus)
                .num_gprs(gprs)
                .num_pred_regs(preds)
                .num_btrs(btrs)
                .issue_width(issue)
                .build()
                .expect("strategy yields valid configurations")
        })
}

/// A strategy over instructions valid for the given configuration.
fn instruction_strategy(config: &Config) -> BoxedStrategy<Instruction> {
    let gprs = config.num_gprs() as u16;
    let preds = config.num_pred_regs() as u16;
    let btrs = config.num_btrs() as u16;
    let (lit_min, lit_max) = config.instruction_format().short_literal_range();
    let gpr = (0..gprs).prop_map(Gpr);
    let pred = (0..preds).prop_map(PredReg);
    let btr = (0..btrs).prop_map(Btr);
    let src = prop_oneof![
        (0..gprs).prop_map(|i| Operand::Gpr(Gpr(i))),
        (lit_min..=lit_max).prop_map(Operand::Lit),
    ];
    let guard = (0..preds).prop_map(PredReg);

    let alu3 = {
        let ops = prop::sample::select(vec![
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mull,
            Opcode::Div,
            Opcode::Rem,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Shl,
            Opcode::Shr,
            Opcode::Shra,
            Opcode::Min,
            Opcode::Max,
        ]);
        (ops, gpr.clone(), src.clone(), src.clone(), guard.clone())
            .prop_map(|(op, d, a, b, g)| Instruction::alu3(op, d, a, b).with_pred(g))
    };
    let alu2 = {
        let ops = prop::sample::select(vec![
            Opcode::Abs,
            Opcode::Sxtb,
            Opcode::Sxth,
            Opcode::Zxtb,
            Opcode::Zxth,
            Opcode::Move,
        ]);
        (ops, gpr.clone(), src.clone(), guard.clone())
            .prop_map(|(op, d, s, g)| Instruction::alu2(op, d, s).with_pred(g))
    };
    // Canonical (sign-extended) literals: the decoder always produces
    // this form, so round-trips are exact. The unsigned spelling of the
    // same bits is accepted by `validate` but not generated here.
    let width = config.datapath_width();
    let movil = (gpr.clone(), any::<i64>(), guard.clone()).prop_map(move |(d, raw, g)| {
        let min = -(1i64 << (width - 1));
        let max = (1i64 << (width - 1)) - 1;
        let span = (max - min) as u128 + 1;
        let value = min + (raw as u128 % span) as i64;
        Instruction::movil(d, value).with_pred(g)
    });
    let cmp = {
        let conds = prop::sample::select(CmpCond::ALL.to_vec());
        (
            conds,
            pred.clone(),
            pred.clone(),
            src.clone(),
            src.clone(),
            guard.clone(),
        )
            .prop_map(|(c, t, f, a, b, g)| Instruction::cmp(c, t, f, a, b).with_pred(g))
    };
    let mem = {
        let loads = prop::sample::select(vec![
            Opcode::Lw,
            Opcode::Lh,
            Opcode::Lhu,
            Opcode::Lb,
            Opcode::Lbu,
            Opcode::LwS,
        ]);
        let stores = prop::sample::select(vec![Opcode::Sw, Opcode::Sh, Opcode::Sb]);
        prop_oneof![
            (loads, gpr.clone(), src.clone(), src.clone(), guard.clone())
                .prop_map(|(op, d, b, o, g)| Instruction::load(op, d, b, o).with_pred(g)),
            (stores, gpr.clone(), src.clone(), src.clone(), guard.clone())
                .prop_map(|(op, v, b, o, g)| Instruction::store(op, v, b, o).with_pred(g)),
        ]
    };
    let branches = prop_oneof![
        (btr.clone(), 0i64..1000).prop_map(|(b, t)| Instruction::pbr(b, Operand::Lit(t))),
        btr.clone().prop_map(Instruction::br),
        (btr.clone(), pred.clone()).prop_map(|(b, p)| Instruction::brct(b, p)),
        (btr.clone(), pred.clone()).prop_map(|(b, p)| Instruction::brcf(b, p)),
        (gpr, btr).prop_map(|(l, b)| Instruction::brl(l, b)),
        Just(Instruction::halt()),
        Just(Instruction::nop()),
    ];
    prop_oneof![alu3, alu2, movil, cmp, mem, branches].boxed()
}

/// (configuration, instruction-valid-for-it) pairs.
fn pair_strategy() -> impl Strategy<Value = (Config, Instruction)> {
    config_strategy().prop_flat_map(|config| {
        let instrs = instruction_strategy(&config);
        instrs.prop_map(move |i| (config.clone(), i))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_round_trips((config, instr) in pair_strategy()) {
        prop_assert!(instr.validate(&config).is_ok(), "{} invalid", instr);
        let bytes = encode(&instr, &config).expect("valid instructions encode");
        prop_assert_eq!(bytes.len(), config.instruction_format().width_bytes());
        let back = decode(&bytes, &config).expect("encoded instructions decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn disassembly_is_stable_ascii((config, instr) in pair_strategy()) {
        let text = epic_isa::disassemble(&instr, &config);
        prop_assert!(!text.is_empty());
        prop_assert!(text.is_ascii());
        prop_assert_eq!(&text, &epic_isa::disassemble(&instr, &config));
    }

    #[test]
    fn machine_code_is_position_independent((config, instr) in pair_strategy()) {
        // Encoding the same instruction twice is byte-identical (no
        // hidden state in the codec).
        let a = encode(&instr, &config).expect("encodes");
        let b = encode(&instr, &config).expect("encodes");
        prop_assert_eq!(a, b);
    }
}
