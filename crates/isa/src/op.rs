//! The opcode space and per-opcode metadata.

use crate::error::IsaError;
use epic_config::{AluFeature, Config};
use std::fmt;

/// Functional unit classes of the datapath (paper Fig. 2).
///
/// "The architecture contains four main types of elements: a collection of
/// arithmetic and logic units (ALUs), a load/store unit (LSU), a comparison
/// unit (CMPU), and a branch unit (BRU)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// One of the N replicated arithmetic-logic units.
    Alu,
    /// The load/store unit (single instance, owns the data-memory port).
    Lsu,
    /// The comparison unit (single instance, owns the predicate file).
    Cmpu,
    /// The branch unit (single instance, owns the BTR file and the PC).
    Bru,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unit::Alu => "ALU",
            Unit::Lsu => "LSU",
            Unit::Cmpu => "CMPU",
            Unit::Bru => "BRU",
        })
    }
}

/// Comparison conditions of the `CMP_*` opcodes.
///
/// The comparison unit evaluates `src1 <cond> src2` and writes the boolean
/// outcome to predicate register `DEST1` and its complement to `DEST2`
/// (either may be the discarding predicate `p0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
    /// Unsigned less than.
    Ltu,
    /// Unsigned less than or equal.
    Leu,
    /// Unsigned greater than.
    Gtu,
    /// Unsigned greater than or equal.
    Geu,
}

impl CmpCond {
    /// All conditions in ordinal order.
    pub const ALL: [CmpCond; 10] = [
        CmpCond::Eq,
        CmpCond::Ne,
        CmpCond::Lt,
        CmpCond::Le,
        CmpCond::Gt,
        CmpCond::Ge,
        CmpCond::Ltu,
        CmpCond::Leu,
        CmpCond::Gtu,
        CmpCond::Geu,
    ];

    /// The condition testing the logically opposite outcome.
    #[must_use]
    pub fn negate(self) -> CmpCond {
        match self {
            CmpCond::Eq => CmpCond::Ne,
            CmpCond::Ne => CmpCond::Eq,
            CmpCond::Lt => CmpCond::Ge,
            CmpCond::Le => CmpCond::Gt,
            CmpCond::Gt => CmpCond::Le,
            CmpCond::Ge => CmpCond::Lt,
            CmpCond::Ltu => CmpCond::Geu,
            CmpCond::Leu => CmpCond::Gtu,
            CmpCond::Gtu => CmpCond::Leu,
            CmpCond::Geu => CmpCond::Ltu,
        }
    }

    /// The condition with its operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn swap_operands(self) -> CmpCond {
        match self {
            CmpCond::Eq => CmpCond::Eq,
            CmpCond::Ne => CmpCond::Ne,
            CmpCond::Lt => CmpCond::Gt,
            CmpCond::Le => CmpCond::Ge,
            CmpCond::Gt => CmpCond::Lt,
            CmpCond::Ge => CmpCond::Le,
            CmpCond::Ltu => CmpCond::Gtu,
            CmpCond::Leu => CmpCond::Geu,
            CmpCond::Gtu => CmpCond::Ltu,
            CmpCond::Geu => CmpCond::Leu,
        }
    }

    /// Mnemonic suffix (`CMP_<suffix>`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            CmpCond::Eq => "EQ",
            CmpCond::Ne => "NE",
            CmpCond::Lt => "LT",
            CmpCond::Le => "LE",
            CmpCond::Gt => "GT",
            CmpCond::Ge => "GE",
            CmpCond::Ltu => "LTU",
            CmpCond::Leu => "LEU",
            CmpCond::Gtu => "GTU",
            CmpCond::Geu => "GEU",
        }
    }
}

/// An operation of the EPIC instruction set.
///
/// The set follows HPL-PD's integer subset: ALU arithmetic and logic
/// (including multiply and divide), compare-to-predicate, loads and stores
/// of word/half/byte (plus a speculative word load), and the
/// prepare-to-branch family operating through branch target registers.
/// [`Opcode::Custom`] slots reference the configuration's custom-operation
/// registry (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Opcode {
    // --- ALU class -----------------------------------------------------
    /// `dest1 = src1 + src2` (wrapping).
    Add,
    /// `dest1 = src1 - src2` (wrapping).
    Sub,
    /// `dest1 = src1 * src2` (low half, wrapping).
    Mull,
    /// `dest1 = src1 / src2` (signed; result 0 when `src2 == 0`).
    Div,
    /// `dest1 = src1 % src2` (signed; result 0 when `src2 == 0`).
    Rem,
    /// `dest1 = src1 & src2`.
    And,
    /// `dest1 = src1 | src2`.
    Or,
    /// `dest1 = src1 ^ src2`.
    Xor,
    /// `dest1 = src1 << src2` (shift amount modulo datapath width).
    Shl,
    /// `dest1 = src1 >> src2` logical.
    Shr,
    /// `dest1 = src1 >> src2` arithmetic.
    Shra,
    /// `dest1 = min(src1, src2)` signed.
    Min,
    /// `dest1 = max(src1, src2)` signed.
    Max,
    /// `dest1 = |src1|` signed (src2 ignored).
    Abs,
    /// Sign-extend the low byte of `src1`.
    Sxtb,
    /// Sign-extend the low half-word of `src1`.
    Sxth,
    /// Zero-extend the low byte of `src1`.
    Zxtb,
    /// Zero-extend the low half-word of `src1`.
    Zxth,
    /// `dest1 = src1` (register move or short literal).
    Move,
    /// `dest1 = <long literal>`: the raw `SRC1:SRC2` fields hold one
    /// datapath-width constant.
    Movil,

    // --- CMPU class ----------------------------------------------------
    /// Compare-to-predicate: `dest1 = (src1 <cond> src2)`,
    /// `dest2 = !(src1 <cond> src2)`.
    Cmp(CmpCond),
    /// Set predicate `dest1` to 1.
    PredSet,
    /// Clear predicate `dest1` to 0.
    PredClr,
    /// `dest1(pred) = src1(gpr) != 0` — move GPR truth value to predicate.
    MovGp,
    /// `dest1(gpr) = src1(pred)` — move a predicate into a GPR as 0/1.
    MovPg,

    // --- LSU class -----------------------------------------------------
    /// Load word at `src1 + src2`.
    Lw,
    /// Load half-word (sign-extended).
    Lh,
    /// Load half-word (zero-extended).
    Lhu,
    /// Load byte (sign-extended).
    Lb,
    /// Load byte (zero-extended).
    Lbu,
    /// Speculative load word: like [`Opcode::Lw`] but out-of-range
    /// addresses yield 0 instead of a fault (HPL-PD dismissible load).
    LwS,
    /// Store word: register named by `DEST1` to `src1 + src2`.
    Sw,
    /// Store half-word.
    Sh,
    /// Store byte.
    Sb,

    // --- BRU class -----------------------------------------------------
    /// Prepare-to-branch: load branch target register `dest1` with the
    /// bundle address `src1` ("destination addresses … calculated in
    /// advance", paper §3.2).
    Pbr,
    /// Unconditional branch through BTR `src1`.
    Br,
    /// Branch through BTR `src1` when the guard predicate is true.
    ///
    /// For `BRCT` the `PRED` field *is* the tested condition, as in
    /// HPL-PD's branch-on-condition-true.
    Brct,
    /// Branch through BTR `src1` when the guard predicate is false.
    Brcf,
    /// Branch-and-link through BTR `src1`, writing the return bundle
    /// address to GPR `dest1` (procedure call).
    Brl,
    /// Stop the processor (end of program).
    Halt,

    // --- miscellaneous -------------------------------------------------
    /// No operation (issue-slot filler emitted by the assembler).
    Nop,

    // --- custom --------------------------------------------------------
    /// Custom ALU operation `n`, resolved through the configuration's
    /// custom-op registry.
    Custom(u16),
}

/// Operand kind accepted by a source field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcKind {
    /// Field unused (encoded as zero).
    None,
    /// A GPR index or a short literal, at the encoder's discretion.
    GprOrLit,
    /// A branch-target-register index.
    Btr,
    /// A predicate-register index.
    Pred,
    /// Half of a raw long literal (`MOVIL`).
    LongLit,
}

/// Operand kind carried by a destination field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestKind {
    /// Field unused (encoded as zero).
    None,
    /// A GPR that is written.
    Gpr,
    /// A predicate register that is written (`p0` discards).
    Pred,
    /// A branch target register that is written.
    Btr,
    /// A GPR that is *read* — the data source of a store. The fixed
    /// format has no third source field, so stores name their data
    /// register in `DEST1`, exactly as width-limited VLIW encodings do.
    GprRead,
}

/// The field signature of an opcode: which operand kinds its four operand
/// fields carry. Encoders, decoders, the assembler and the bundle checker
/// all consult this single table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSignature {
    /// Executing unit; `None` for `NOP`, which consumes only an issue slot.
    pub unit: Option<Unit>,
    /// Kind of the `DEST1` field.
    pub dest1: DestKind,
    /// Kind of the `DEST2` field.
    pub dest2: DestKind,
    /// Kind of the `SRC1` field.
    pub src1: SrcKind,
    /// Kind of the `SRC2` field.
    pub src2: SrcKind,
}

const ALU_ORDINALS: [Opcode; 20] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mull,
    Opcode::Div,
    Opcode::Rem,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Shra,
    Opcode::Min,
    Opcode::Max,
    Opcode::Abs,
    Opcode::Sxtb,
    Opcode::Sxth,
    Opcode::Zxtb,
    Opcode::Zxth,
    Opcode::Move,
    Opcode::Movil,
];

const CMPU_EXTRA_ORDINALS: [Opcode; 4] = [
    Opcode::PredSet,
    Opcode::PredClr,
    Opcode::MovGp,
    Opcode::MovPg,
];

const LSU_ORDINALS: [Opcode; 9] = [
    Opcode::Lw,
    Opcode::Lh,
    Opcode::Lhu,
    Opcode::Lb,
    Opcode::Lbu,
    Opcode::LwS,
    Opcode::Sw,
    Opcode::Sh,
    Opcode::Sb,
];

const BRU_ORDINALS: [Opcode; 6] = [
    Opcode::Pbr,
    Opcode::Br,
    Opcode::Brct,
    Opcode::Brcf,
    Opcode::Brl,
    Opcode::Halt,
];

/// Opcode-class tags occupying the top 3 bits of the 15-bit opcode field.
const CLASS_ALU: u16 = 0;
const CLASS_CMPU: u16 = 1;
const CLASS_LSU: u16 = 2;
const CLASS_BRU: u16 = 3;
const CLASS_MISC: u16 = 4;
const CLASS_CUSTOM: u16 = 5;

fn to_gray(n: u16) -> u16 {
    n ^ (n >> 1)
}

fn from_gray(g: u16) -> u16 {
    let mut n = g;
    let mut shift = 1;
    while shift < 16 {
        n ^= n >> shift;
        shift <<= 1;
    }
    n
}

impl Opcode {
    /// Every non-custom opcode, in encoding order.
    #[must_use]
    pub fn all_fixed() -> Vec<Opcode> {
        let mut ops = Vec::new();
        ops.extend_from_slice(&ALU_ORDINALS);
        ops.extend(CmpCond::ALL.into_iter().map(Opcode::Cmp));
        ops.extend_from_slice(&CMPU_EXTRA_ORDINALS);
        ops.extend_from_slice(&LSU_ORDINALS);
        ops.extend_from_slice(&BRU_ORDINALS);
        ops.push(Opcode::Nop);
        ops
    }

    fn class_and_ordinal(self) -> (u16, u16) {
        match self {
            Opcode::Cmp(cond) => (
                CLASS_CMPU,
                CmpCond::ALL
                    .iter()
                    .position(|c| *c == cond)
                    .expect("known cond") as u16,
            ),
            Opcode::PredSet => (CLASS_CMPU, 10),
            Opcode::PredClr => (CLASS_CMPU, 11),
            Opcode::MovGp => (CLASS_CMPU, 12),
            Opcode::MovPg => (CLASS_CMPU, 13),
            Opcode::Nop => (CLASS_MISC, 0),
            Opcode::Custom(i) => (CLASS_CUSTOM, i),
            other => {
                if let Some(i) = ALU_ORDINALS.iter().position(|o| *o == other) {
                    (CLASS_ALU, i as u16)
                } else if let Some(i) = LSU_ORDINALS.iter().position(|o| *o == other) {
                    (CLASS_LSU, i as u16)
                } else if let Some(i) = BRU_ORDINALS.iter().position(|o| *o == other) {
                    (CLASS_BRU, i as u16)
                } else {
                    unreachable!("opcode {other:?} missing from ordinal tables")
                }
            }
        }
    }

    /// The binary value of the `OPCODE` field.
    ///
    /// The top 3 bits carry the functional-unit class and the low 12 bits
    /// the Gray-coded ordinal within the class, so that opcodes "of the
    /// same type" sit at Hamming distance 1 from their ordinal neighbours
    /// (paper §3.1).
    #[must_use]
    pub fn encoding(self) -> u16 {
        let (class, ordinal) = self.class_and_ordinal();
        (class << 12) | (to_gray(ordinal) & 0x0FFF)
    }

    /// Decodes an `OPCODE` field value.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownOpcode`] when the value names no
    /// operation (custom ordinals are validated against the configuration
    /// by the full instruction decoder, not here).
    pub fn from_encoding(value: u16) -> Result<Opcode, IsaError> {
        let class = value >> 12;
        let ordinal = from_gray(value & 0x0FFF);
        let unknown = || IsaError::UnknownOpcode { value };
        match class {
            CLASS_ALU => ALU_ORDINALS
                .get(ordinal as usize)
                .copied()
                .ok_or_else(unknown),
            CLASS_CMPU => match ordinal {
                0..=9 => Ok(Opcode::Cmp(CmpCond::ALL[ordinal as usize])),
                10..=13 => Ok(CMPU_EXTRA_ORDINALS[ordinal as usize - 10]),
                _ => Err(unknown()),
            },
            CLASS_LSU => LSU_ORDINALS
                .get(ordinal as usize)
                .copied()
                .ok_or_else(unknown),
            CLASS_BRU => BRU_ORDINALS
                .get(ordinal as usize)
                .copied()
                .ok_or_else(unknown),
            CLASS_MISC if ordinal == 0 => Ok(Opcode::Nop),
            CLASS_CUSTOM => Ok(Opcode::Custom(ordinal)),
            _ => Err(unknown()),
        }
    }

    /// The field signature of this opcode.
    #[must_use]
    pub fn signature(self) -> OpSignature {
        use DestKind as D;
        use SrcKind as S;
        let sig = |unit, dest1, dest2, src1, src2| OpSignature {
            unit,
            dest1,
            dest2,
            src1,
            src2,
        };
        match self {
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mull
            | Opcode::Div
            | Opcode::Rem
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Shra
            | Opcode::Min
            | Opcode::Max => sig(Some(Unit::Alu), D::Gpr, D::None, S::GprOrLit, S::GprOrLit),
            Opcode::Abs
            | Opcode::Sxtb
            | Opcode::Sxth
            | Opcode::Zxtb
            | Opcode::Zxth
            | Opcode::Move => sig(Some(Unit::Alu), D::Gpr, D::None, S::GprOrLit, S::None),
            Opcode::Movil => sig(Some(Unit::Alu), D::Gpr, D::None, S::LongLit, S::LongLit),
            Opcode::Cmp(_) => sig(Some(Unit::Cmpu), D::Pred, D::Pred, S::GprOrLit, S::GprOrLit),
            Opcode::PredSet | Opcode::PredClr => {
                sig(Some(Unit::Cmpu), D::Pred, D::None, S::None, S::None)
            }
            Opcode::MovGp => sig(Some(Unit::Cmpu), D::Pred, D::None, S::GprOrLit, S::None),
            Opcode::MovPg => sig(Some(Unit::Cmpu), D::Gpr, D::None, S::Pred, S::None),
            Opcode::Lw | Opcode::Lh | Opcode::Lhu | Opcode::Lb | Opcode::Lbu | Opcode::LwS => {
                sig(Some(Unit::Lsu), D::Gpr, D::None, S::GprOrLit, S::GprOrLit)
            }
            Opcode::Sw | Opcode::Sh | Opcode::Sb => sig(
                Some(Unit::Lsu),
                D::GprRead,
                D::None,
                S::GprOrLit,
                S::GprOrLit,
            ),
            Opcode::Pbr => sig(Some(Unit::Bru), D::Btr, D::None, S::GprOrLit, S::None),
            Opcode::Br | Opcode::Brct | Opcode::Brcf => {
                sig(Some(Unit::Bru), D::None, D::None, S::Btr, S::None)
            }
            Opcode::Brl => sig(Some(Unit::Bru), D::Gpr, D::None, S::Btr, S::None),
            Opcode::Halt => sig(Some(Unit::Bru), D::None, D::None, S::None, S::None),
            Opcode::Nop => sig(None, D::None, D::None, S::None, S::None),
            Opcode::Custom(_) => sig(Some(Unit::Alu), D::Gpr, D::None, S::GprOrLit, S::GprOrLit),
        }
    }

    /// The functional unit executing this opcode (`None` for `NOP`).
    #[must_use]
    pub fn unit(self) -> Option<Unit> {
        self.signature().unit
    }

    /// Whether this opcode redirects control flow when it commits.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Br | Opcode::Brct | Opcode::Brcf | Opcode::Brl)
    }

    /// Whether this opcode reads data memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Lw | Opcode::Lh | Opcode::Lhu | Opcode::Lb | Opcode::Lbu | Opcode::LwS
        )
    }

    /// Whether this opcode writes data memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Sw | Opcode::Sh | Opcode::Sb)
    }

    /// Result latency in processor cycles under the given configuration.
    ///
    /// Latency 1 means consumers may issue in the next bundle; loads,
    /// multiplies, divides and custom operations take their latencies from
    /// the configuration (and the machine description hands the same
    /// numbers to the scheduler).
    #[must_use]
    pub fn latency(self, config: &Config) -> u32 {
        match self {
            Opcode::Mull => config.mul_latency(),
            Opcode::Div | Opcode::Rem => config.div_latency(),
            op if op.is_load() => config.load_latency(),
            Opcode::Custom(i) => config
                .custom_ops()
                .get(i as usize)
                .map_or(1, |op| op.latency()),
            _ => 1,
        }
    }

    /// The optional ALU feature this opcode requires, if any.
    ///
    /// A configuration lacking the feature cannot execute the opcode; the
    /// assembler and compiler reject it up front (paper §3.3: unused
    /// functionality is excluded from customised ALUs).
    #[must_use]
    pub fn required_feature(self) -> Option<AluFeature> {
        match self {
            Opcode::Mull => Some(AluFeature::Multiply),
            Opcode::Div | Opcode::Rem => Some(AluFeature::Divide),
            Opcode::Shl | Opcode::Shr | Opcode::Shra => Some(AluFeature::Shifts),
            Opcode::Min | Opcode::Max | Opcode::Abs => Some(AluFeature::MinMax),
            Opcode::Sxtb | Opcode::Sxth | Opcode::Zxtb | Opcode::Zxth => Some(AluFeature::Extend),
            _ => None,
        }
    }

    /// The assembly mnemonic (custom opcodes resolve their configured
    /// name through [`Opcode::mnemonic_in`]).
    #[must_use]
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Add => "ADD".into(),
            Opcode::Sub => "SUB".into(),
            Opcode::Mull => "MULL".into(),
            Opcode::Div => "DIV".into(),
            Opcode::Rem => "REM".into(),
            Opcode::And => "AND".into(),
            Opcode::Or => "OR".into(),
            Opcode::Xor => "XOR".into(),
            Opcode::Shl => "SHL".into(),
            Opcode::Shr => "SHR".into(),
            Opcode::Shra => "SHRA".into(),
            Opcode::Min => "MIN".into(),
            Opcode::Max => "MAX".into(),
            Opcode::Abs => "ABS".into(),
            Opcode::Sxtb => "SXTB".into(),
            Opcode::Sxth => "SXTH".into(),
            Opcode::Zxtb => "ZXTB".into(),
            Opcode::Zxth => "ZXTH".into(),
            Opcode::Move => "MOVE".into(),
            Opcode::Movil => "MOVIL".into(),
            Opcode::Cmp(c) => format!("CMP_{}", c.suffix()),
            Opcode::PredSet => "PSET".into(),
            Opcode::PredClr => "PCLR".into(),
            Opcode::MovGp => "MOVGP".into(),
            Opcode::MovPg => "MOVPG".into(),
            Opcode::Lw => "LW".into(),
            Opcode::Lh => "LH".into(),
            Opcode::Lhu => "LHU".into(),
            Opcode::Lb => "LB".into(),
            Opcode::Lbu => "LBU".into(),
            Opcode::LwS => "LWS".into(),
            Opcode::Sw => "SW".into(),
            Opcode::Sh => "SH".into(),
            Opcode::Sb => "SB".into(),
            Opcode::Pbr => "PBR".into(),
            Opcode::Br => "BR".into(),
            Opcode::Brct => "BRCT".into(),
            Opcode::Brcf => "BRCF".into(),
            Opcode::Brl => "BRL".into(),
            Opcode::Halt => "HALT".into(),
            Opcode::Nop => "NOP".into(),
            Opcode::Custom(i) => format!("CUSTOM_{i}"),
        }
    }

    /// The assembly mnemonic, resolving custom slots to their configured
    /// names (e.g. `Custom(0)` → `sha_rotr`).
    #[must_use]
    pub fn mnemonic_in(self, config: &Config) -> String {
        match self {
            Opcode::Custom(i) => config
                .custom_ops()
                .get(i as usize)
                .map_or_else(|| format!("CUSTOM_{i}"), |op| op.name().to_owned()),
            other => other.mnemonic(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Hamming distance between two opcode-field encodings.
#[must_use]
pub fn opcode_hamming_distance(a: Opcode, b: Opcode) -> u32 {
    (a.encoding() ^ b.encoding()).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_unique() {
        let ops = Opcode::all_fixed();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a.encoding(), b.encoding(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn encoding_round_trips() {
        for op in Opcode::all_fixed() {
            assert_eq!(Opcode::from_encoding(op.encoding()).unwrap(), op);
        }
        for i in [0u16, 1, 5, 100] {
            let op = Opcode::Custom(i);
            assert_eq!(Opcode::from_encoding(op.encoding()).unwrap(), op);
        }
    }

    #[test]
    fn unknown_encodings_are_rejected() {
        assert!(Opcode::from_encoding(0x7FFF).is_err());
        assert!(Opcode::from_encoding((CLASS_MISC << 12) | to_gray(7)).is_err());
    }

    #[test]
    fn gray_code_gives_unit_hamming_distance_within_class() {
        // The paper: "the opcode has been designed to minimise the Hamming
        // distance between two instructions of the same type". Adjacent
        // ordinals within a class must differ in exactly one bit.
        let classes: [&[Opcode]; 3] = [&ALU_ORDINALS, &LSU_ORDINALS, &BRU_ORDINALS];
        for class in classes {
            for pair in class.windows(2) {
                assert_eq!(
                    opcode_hamming_distance(pair[0], pair[1]),
                    1,
                    "{:?} -> {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
        for pair in CmpCond::ALL.windows(2) {
            assert_eq!(
                opcode_hamming_distance(Opcode::Cmp(pair[0]), Opcode::Cmp(pair[1])),
                1
            );
        }
    }

    #[test]
    fn gray_round_trip() {
        for n in 0..4096u16 {
            assert_eq!(from_gray(to_gray(n)), n);
        }
    }

    #[test]
    fn cond_negate_is_involutive_and_correct() {
        for c in CmpCond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
        assert_eq!(CmpCond::Lt.negate(), CmpCond::Ge);
        assert_eq!(CmpCond::Ltu.swap_operands(), CmpCond::Gtu);
    }

    #[test]
    fn units_match_the_datapath() {
        assert_eq!(Opcode::Add.unit(), Some(Unit::Alu));
        assert_eq!(Opcode::Cmp(CmpCond::Eq).unit(), Some(Unit::Cmpu));
        assert_eq!(Opcode::Lw.unit(), Some(Unit::Lsu));
        assert_eq!(Opcode::Br.unit(), Some(Unit::Bru));
        assert_eq!(Opcode::Nop.unit(), None);
        assert_eq!(Opcode::Custom(0).unit(), Some(Unit::Alu));
    }

    #[test]
    fn latencies_follow_configuration() {
        let config = Config::builder()
            .load_latency(3)
            .mul_latency(2)
            .div_latency(10)
            .build()
            .unwrap();
        assert_eq!(Opcode::Add.latency(&config), 1);
        assert_eq!(Opcode::Lw.latency(&config), 3);
        assert_eq!(Opcode::Mull.latency(&config), 2);
        assert_eq!(Opcode::Rem.latency(&config), 10);
    }

    #[test]
    fn required_features_cover_optional_ops() {
        assert_eq!(Opcode::Div.required_feature(), Some(AluFeature::Divide));
        assert_eq!(Opcode::Add.required_feature(), None);
        assert_eq!(Opcode::Shl.required_feature(), Some(AluFeature::Shifts));
    }

    #[test]
    fn store_signature_reads_dest1() {
        assert_eq!(Opcode::Sw.signature().dest1, DestKind::GprRead);
        assert_eq!(Opcode::Lw.signature().dest1, DestKind::Gpr);
    }

    #[test]
    fn mnemonics_are_unique() {
        let ops = Opcode::all_fixed();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }
}
