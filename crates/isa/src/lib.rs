//! The instruction set of the customisable EPIC processor.
//!
//! The ISA is "a proper subset of operations specified in the HPL-PD
//! architecture … focus[ed] on integer operations, including multiplication
//! and division, which can be implemented efficiently on FPGAs" (paper
//! §3.1). This crate defines:
//!
//! * [`Opcode`] — the operation space, organised by functional-unit class
//!   (ALU / CMPU / LSU / BRU / miscellaneous / custom) with a Gray-coded
//!   numbering that "minimise[s] the Hamming distance between two
//!   instructions of the same type";
//! * [`Instruction`] — the six-field instruction of Fig. 1
//!   (`OPCODE, DEST1, DEST2, SRC1, SRC2, PRED`) with typed operands;
//! * [`encode`]/[`decode`] — the fixed-width big-endian machine-code form,
//!   parameterised by the [`InstructionFormat`](epic_config::InstructionFormat)
//!   derived from a processor configuration;
//! * a disassembler producing the assembly syntax accepted by `epic-asm`.
//!
//! # Examples
//!
//! ```
//! use epic_config::Config;
//! use epic_isa::{decode, encode, Gpr, Instruction, Opcode, Operand};
//!
//! let config = Config::default();
//! let add = Instruction::alu3(Opcode::Add, Gpr(1), Operand::Gpr(Gpr(2)), Operand::Lit(5));
//! let bytes = encode(&add, &config)?;
//! assert_eq!(bytes.len(), 8); // one 64-bit word, big-endian
//! assert_eq!(decode(&bytes, &config)?, add);
//! # Ok::<(), epic_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod disasm;
mod error;
mod instr;
mod op;

pub use codec::{decode, encode, encode_into};
pub use disasm::disassemble;
pub use error::IsaError;
pub use instr::{Btr, Dest, Gpr, Instruction, Operand, PredReg};
pub use op::{opcode_hamming_distance, CmpCond, DestKind, OpSignature, Opcode, SrcKind, Unit};

/// The always-true predicate register.
///
/// Predicate register 0 is hard-wired to 1: instructions guarded by it
/// always commit, and predicate writes targeting it are discarded. This is
/// the convention HPL-PD implementations use to express "unpredicated".
pub const TRUE_PRED: PredReg = PredReg(0);
