//! Machine-code encoding and decoding.
//!
//! Instructions serialise to fixed-width big-endian words ("a big-endian
//! architecture is adopted … each individual instruction has a fixed width
//! of 64 bits, regardless of its type", paper §3.1). The field layout is
//! taken from the configuration's [`InstructionFormat`], so widened formats
//! (more registers, wider datapath) encode and decode with the same code
//! path.
//!
//! Source fields use their most significant bit as a literal flag
//! (1 = sign-extended literal payload, 0 = register index), except for
//! `MOVIL`, whose two raw source fields concatenate into one
//! datapath-width constant.

use crate::error::IsaError;
use crate::instr::{Btr, Dest, Gpr, Instruction, Operand, PredReg};
use crate::op::{DestKind, Opcode, SrcKind};
use epic_config::{Config, InstructionFormat};

/// Encodes an instruction into freshly allocated big-endian bytes.
///
/// The length equals `config.instruction_format().width_bytes()`.
///
/// # Errors
///
/// Returns any [`IsaError`] raised by [`Instruction::validate`]; an
/// instruction that validates always encodes.
///
/// # Examples
///
/// ```
/// use epic_config::Config;
/// use epic_isa::{encode, Instruction};
///
/// let config = Config::default();
/// let bytes = encode(&Instruction::halt(), &config)?;
/// assert_eq!(bytes.len(), 8);
/// # Ok::<(), epic_isa::IsaError>(())
/// ```
pub fn encode(instr: &Instruction, config: &Config) -> Result<Vec<u8>, IsaError> {
    let mut buf = vec![0u8; config.instruction_format().width_bytes()];
    encode_into(instr, config, &mut buf)?;
    Ok(buf)
}

/// Encodes an instruction into a caller-provided buffer.
///
/// # Errors
///
/// Returns [`IsaError::BufferSize`] when `buf` is not exactly the
/// configured instruction width, or any validation error.
pub fn encode_into(instr: &Instruction, config: &Config, buf: &mut [u8]) -> Result<(), IsaError> {
    let format = config.instruction_format();
    if buf.len() != format.width_bytes() {
        return Err(IsaError::BufferSize {
            expected: format.width_bytes(),
            found: buf.len(),
        });
    }
    instr.validate(config)?;

    let mut word: u128 = 0;
    let [o_off, d1_off, d2_off, s1_off, s2_off, p_off] = format.field_offsets();

    put(
        &mut word,
        format,
        o_off,
        format.opcode_bits(),
        u128::from(instr.opcode.encoding()),
    );
    put(
        &mut word,
        format,
        d1_off,
        format.dest_bits(),
        u128::from(dest_index(instr.dest1)),
    );
    put(
        &mut word,
        format,
        d2_off,
        format.dest_bits(),
        u128::from(dest_index(instr.dest2)),
    );

    if instr.opcode == Opcode::Movil {
        // The raw SRC1:SRC2 fields hold one datapath-width constant,
        // left-padded with zeros, SRC1 carrying the high part.
        let width = config.datapath_width();
        let value = (instr.src1_literal() as u128) & mask(width as usize);
        let total = 2 * format.src_bits();
        let combined = value; // already < 2^total by validation
        put(
            &mut word,
            format,
            s1_off,
            format.src_bits(),
            combined >> format.src_bits(),
        );
        put(
            &mut word,
            format,
            s2_off,
            format.src_bits(),
            combined & mask(format.src_bits()),
        );
        debug_assert!(total >= width as usize);
    } else {
        put(
            &mut word,
            format,
            s1_off,
            format.src_bits(),
            src_field(instr.src1, format),
        );
        put(
            &mut word,
            format,
            s2_off,
            format.src_bits(),
            src_field(instr.src2, format),
        );
    }
    put(
        &mut word,
        format,
        p_off,
        format.pred_bits(),
        u128::from(instr.pred.0),
    );

    for (i, byte) in buf.iter_mut().enumerate() {
        let shift = (format.width_bytes() - 1 - i) * 8;
        *byte = ((word >> shift) & 0xFF) as u8;
    }
    Ok(())
}

/// Decodes one big-endian instruction word.
///
/// Decoding is structural: operand kinds are reconstructed from the opcode
/// signature, but feature availability is not checked (use
/// [`Instruction::validate`] for that).
///
/// # Errors
///
/// Returns [`IsaError::BufferSize`] for a wrong-length buffer,
/// [`IsaError::UnknownOpcode`] for an unassigned opcode value, and
/// [`IsaError::OperandKind`] when a register-kind source field carries a
/// literal flag.
pub fn decode(bytes: &[u8], config: &Config) -> Result<Instruction, IsaError> {
    let format = config.instruction_format();
    if bytes.len() != format.width_bytes() {
        return Err(IsaError::BufferSize {
            expected: format.width_bytes(),
            found: bytes.len(),
        });
    }
    let mut word: u128 = 0;
    for &b in bytes {
        word = (word << 8) | u128::from(b);
    }

    let [o_off, d1_off, d2_off, s1_off, s2_off, p_off] = format.field_offsets();
    let opcode_val = get(word, format, o_off, format.opcode_bits()) as u16;
    let opcode = Opcode::from_encoding(opcode_val)?;
    let sig = opcode.signature();

    let d1 = get(word, format, d1_off, format.dest_bits()) as u16;
    let d2 = get(word, format, d2_off, format.dest_bits()) as u16;
    let s1 = get(word, format, s1_off, format.src_bits());
    let s2 = get(word, format, s2_off, format.src_bits());
    let pred = get(word, format, p_off, format.pred_bits()) as u16;

    let (src1, src2) = if opcode == Opcode::Movil {
        let combined = (s1 << format.src_bits()) | s2;
        let width = config.datapath_width() as usize;
        let raw = combined & mask(width);
        // Sign-extend from the datapath width to i64.
        let signed = if width < 64 && raw & (1 << (width - 1)) != 0 {
            (raw as i128 - (1i128 << width)) as i64
        } else {
            raw as i64
        };
        (Operand::Lit(signed), Operand::None)
    } else {
        (
            decode_src(s1, sig.src1, opcode, "SRC1", format)?,
            decode_src(s2, sig.src2, opcode, "SRC2", format)?,
        )
    };

    Ok(Instruction {
        opcode,
        dest1: decode_dest(d1, sig.dest1),
        dest2: decode_dest(d2, sig.dest2),
        src1,
        src2,
        pred: PredReg(pred),
    })
}

impl Instruction {
    fn src1_literal(&self) -> i64 {
        match self.src1 {
            Operand::Lit(v) => v,
            _ => 0,
        }
    }
}

fn mask(bits: usize) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

fn put(word: &mut u128, format: &InstructionFormat, offset: usize, bits: usize, value: u128) {
    debug_assert!(
        value <= mask(bits),
        "field value {value:#x} exceeds {bits} bits"
    );
    let shift = format.width_bits() - offset - bits;
    *word |= (value & mask(bits)) << shift;
}

fn get(word: u128, format: &InstructionFormat, offset: usize, bits: usize) -> u128 {
    let shift = format.width_bits() - offset - bits;
    (word >> shift) & mask(bits)
}

fn dest_index(dest: Dest) -> u16 {
    match dest {
        Dest::None => 0,
        Dest::Gpr(Gpr(i)) => i,
        Dest::Pred(PredReg(i)) => i,
        Dest::Btr(Btr(i)) => i,
    }
}

fn src_field(src: Operand, format: &InstructionFormat) -> u128 {
    let literal_flag = 1u128 << format.src_payload_bits();
    match src {
        Operand::None => 0,
        Operand::Gpr(Gpr(i)) => u128::from(i),
        Operand::Btr(Btr(i)) => u128::from(i),
        Operand::Pred(PredReg(i)) => u128::from(i),
        Operand::Lit(v) => {
            let payload = (v as i128 as u128) & mask(format.src_payload_bits());
            literal_flag | payload
        }
    }
}

fn decode_src(
    field: u128,
    kind: SrcKind,
    opcode: Opcode,
    name: &'static str,
    format: &InstructionFormat,
) -> Result<Operand, IsaError> {
    let payload_bits = format.src_payload_bits();
    let is_literal = field >> payload_bits != 0;
    let payload = field & mask(payload_bits);
    let reg_only = || {
        if is_literal {
            Err(IsaError::OperandKind {
                opcode: opcode.mnemonic(),
                field: name,
            })
        } else {
            Ok(payload as u16)
        }
    };
    Ok(match kind {
        SrcKind::None => Operand::None,
        SrcKind::GprOrLit => {
            if is_literal {
                // Sign-extend the payload.
                let signed = if payload & (1 << (payload_bits - 1)) != 0 {
                    (payload as i128 - (1i128 << payload_bits)) as i64
                } else {
                    payload as i64
                };
                Operand::Lit(signed)
            } else {
                Operand::Gpr(Gpr(payload as u16))
            }
        }
        SrcKind::Btr => Operand::Btr(Btr(reg_only()?)),
        SrcKind::Pred => Operand::Pred(PredReg(reg_only()?)),
        SrcKind::LongLit => unreachable!("MOVIL is decoded separately"),
    })
}

fn decode_dest(index: u16, kind: DestKind) -> Dest {
    match kind {
        DestKind::None => Dest::None,
        DestKind::Gpr | DestKind::GprRead => Dest::Gpr(Gpr(index)),
        DestKind::Pred => Dest::Pred(PredReg(index)),
        DestKind::Btr => Dest::Btr(Btr(index)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpCond;

    fn round_trip(instr: Instruction, config: &Config) {
        let bytes = encode(&instr, config).unwrap_or_else(|e| panic!("{instr}: {e}"));
        assert_eq!(bytes.len(), config.instruction_format().width_bytes());
        let back = decode(&bytes, config).unwrap_or_else(|e| panic!("{instr}: {e}"));
        assert_eq!(back, instr, "round trip mismatch for {instr}");
    }

    #[test]
    fn representative_instructions_round_trip() {
        let config = Config::default();
        let cases = [
            Instruction::alu3(
                Opcode::Add,
                Gpr(1),
                Operand::Gpr(Gpr(2)),
                Operand::Gpr(Gpr(3)),
            ),
            Instruction::alu3(Opcode::Sub, Gpr(63), Operand::Gpr(Gpr(0)), Operand::Lit(-1)),
            Instruction::alu3(Opcode::Shl, Gpr(5), Operand::Gpr(Gpr(5)), Operand::Lit(31))
                .with_pred(PredReg(7)),
            Instruction::alu2(Opcode::Move, Gpr(9), Operand::Lit(16383)),
            Instruction::alu2(Opcode::Abs, Gpr(9), Operand::Gpr(Gpr(4))),
            Instruction::movil(Gpr(3), -1),
            Instruction::movil(Gpr(3), 0x7FFF_FFFF),
            Instruction::movil(Gpr(3), i32::MIN as i64),
            Instruction::cmp(
                CmpCond::Geu,
                PredReg(1),
                PredReg(31),
                Operand::Gpr(Gpr(10)),
                Operand::Lit(42),
            ),
            Instruction::new(
                Opcode::PredSet,
                Dest::Pred(PredReg(4)),
                Dest::None,
                Operand::None,
                Operand::None,
            ),
            Instruction::load(Opcode::Lbu, Gpr(8), Operand::Gpr(Gpr(9)), Operand::Lit(-4)),
            Instruction::store(
                Opcode::Sh,
                Gpr(8),
                Operand::Gpr(Gpr(9)),
                Operand::Gpr(Gpr(10)),
            ),
            Instruction::pbr(Btr(15), Operand::Lit(12345)),
            Instruction::br(Btr(3)),
            Instruction::brct(Btr(3), PredReg(9)),
            Instruction::brcf(Btr(3), PredReg(9)),
            Instruction::brl(Gpr(1), Btr(2)),
            Instruction::nop(),
            Instruction::halt(),
        ];
        for instr in cases {
            round_trip(instr, &config);
        }
    }

    #[test]
    fn custom_ops_round_trip() {
        use epic_config::{CustomOp, CustomSemantics};
        let config = Config::builder()
            .custom_op(CustomOp::new("rotr", CustomSemantics::RotateRight))
            .build()
            .unwrap();
        round_trip(
            Instruction::alu3(
                Opcode::Custom(0),
                Gpr(1),
                Operand::Gpr(Gpr(2)),
                Operand::Lit(7),
            ),
            &config,
        );
    }

    #[test]
    fn widened_format_round_trips() {
        let config = Config::builder()
            .num_gprs(256)
            .num_pred_regs(64)
            .num_btrs(32)
            .build()
            .unwrap();
        assert!(config.instruction_format().width_bits() > 64);
        round_trip(
            Instruction::alu3(
                Opcode::Add,
                Gpr(255),
                Operand::Gpr(Gpr(128)),
                Operand::Lit(-100),
            ),
            &config,
        );
        round_trip(Instruction::movil(Gpr(200), -12345), &config);
    }

    #[test]
    fn sixteen_bit_datapath_movil_round_trips() {
        let config = Config::builder().datapath_width(16).build().unwrap();
        round_trip(Instruction::movil(Gpr(1), -32768), &config);
        round_trip(Instruction::movil(Gpr(1), 0x7FFF), &config);
    }

    #[test]
    fn big_endian_layout_is_stable() {
        // The opcode field occupies the most significant bits, so the ADD
        // encoding (class 0, ordinal 0) starts with a zero byte.
        let config = Config::default();
        let add = Instruction::alu3(
            Opcode::Add,
            Gpr(0),
            Operand::Gpr(Gpr(0)),
            Operand::Gpr(Gpr(0)),
        );
        let bytes = encode(&add, &config).unwrap();
        assert_eq!(bytes[0], 0);
        // HALT is BRU class (3) ordinal 5 -> gray(5)=7; top 15 bits are
        // 011_0000_0000_0111 followed by zeros.
        let halt = encode(&Instruction::halt(), &config).unwrap();
        assert_eq!(halt[0], 0b0110_0000);
        assert_eq!(halt[1], 0b0000_1110);
    }

    #[test]
    fn wrong_buffer_sizes_are_rejected() {
        let config = Config::default();
        let mut short = [0u8; 4];
        assert!(matches!(
            encode_into(&Instruction::nop(), &config, &mut short),
            Err(IsaError::BufferSize {
                expected: 8,
                found: 4
            })
        ));
        assert!(matches!(
            decode(&[0u8; 7], &config),
            Err(IsaError::BufferSize {
                expected: 8,
                found: 7
            })
        ));
    }

    #[test]
    fn invalid_instruction_does_not_encode() {
        let config = Config::default();
        let bad = Instruction::alu3(Opcode::Add, Gpr(200), Operand::Lit(0), Operand::Lit(0));
        assert!(encode(&bad, &config).is_err());
    }

    #[test]
    fn literal_flag_on_register_kind_is_rejected() {
        let config = Config::default();
        // Hand-craft a BR whose SRC1 field carries a literal flag.
        let mut bytes = encode(&Instruction::br(Btr(1)), &config).unwrap();
        // SRC1 starts at bit offset 27; its flag bit is the MSB of the
        // field -> bit position 27 from the top = byte 3, bit 4 (0x10).
        bytes[3] |= 0x10;
        assert!(matches!(
            decode(&bytes, &config),
            Err(IsaError::OperandKind { .. })
        ));
    }
}
