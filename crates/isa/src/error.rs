//! Error type for instruction validation, encoding and decoding.

use epic_config::AluFeature;
use std::error::Error;
use std::fmt;

/// Error raised while validating, encoding or decoding an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The `OPCODE` field value names no operation.
    UnknownOpcode {
        /// The raw field value.
        value: u16,
    },
    /// A custom opcode slot has no entry in the configuration registry.
    UnknownCustomOp {
        /// The custom slot index.
        index: u16,
    },
    /// The opcode needs an ALU feature the configuration excludes.
    FeatureDisabled {
        /// Mnemonic of the rejected opcode.
        opcode: String,
        /// The missing feature.
        feature: AluFeature,
    },
    /// An operand has the wrong kind for its field.
    OperandKind {
        /// Mnemonic of the offending opcode.
        opcode: String,
        /// Field name (`DEST1`, `SRC2`, …).
        field: &'static str,
    },
    /// A register index exceeds the configured register count.
    RegisterOutOfRange {
        /// Register-file kind.
        kind: &'static str,
        /// The rejected index.
        index: u16,
        /// Configured register count.
        count: usize,
    },
    /// A literal does not fit its field.
    LiteralOutOfRange {
        /// The rejected literal.
        value: i64,
        /// Smallest representable literal.
        min: i64,
        /// Largest representable literal.
        max: i64,
    },
    /// The instruction names more registers than the configuration's
    /// `registers_per_instruction` parameter allows.
    TooManyRegisters {
        /// Registers named by the instruction's operand fields.
        named: usize,
        /// The configured limit.
        allowed: usize,
    },
    /// The byte buffer does not match the configured instruction width.
    BufferSize {
        /// Bytes expected (the configured instruction width).
        expected: usize,
        /// Bytes provided.
        found: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownOpcode { value } => {
                write!(f, "opcode field value {value:#06x} names no operation")
            }
            IsaError::UnknownCustomOp { index } => write!(
                f,
                "custom opcode slot {index} is not registered in the configuration"
            ),
            IsaError::FeatureDisabled { opcode, feature } => write!(
                f,
                "opcode `{opcode}` requires ALU feature {feature}, which this configuration excludes"
            ),
            IsaError::OperandKind { opcode, field } => {
                write!(f, "opcode `{opcode}` was given the wrong operand kind in {field}")
            }
            IsaError::RegisterOutOfRange { kind, index, count } => write!(
                f,
                "{kind} index {index} exceeds the configured count of {count}"
            ),
            IsaError::LiteralOutOfRange { value, min, max } => {
                write!(f, "literal {value} is outside the representable range {min}..={max}")
            }
            IsaError::TooManyRegisters { named, allowed } => write!(
                f,
                "instruction names {named} registers but the configuration allows {allowed} per instruction"
            ),
            IsaError::BufferSize { expected, found } => write!(
                f,
                "instruction buffer holds {found} bytes, expected {expected}"
            ),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }

    #[test]
    fn messages_name_the_violation() {
        let e = IsaError::RegisterOutOfRange {
            kind: "general-purpose register",
            index: 99,
            count: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }
}
